"""Record types stored in the ReplayDB."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ReplayDBError
from repro.features.throughput import BYTES_PER_GB, access_throughput


@dataclass(frozen=True)
class AccessRecord:
    """One file interaction, open to close (the EOS access-log granularity).

    Field names follow the paper: ``rb``/``wb`` bytes read/written,
    ``ots``/``otms`` the open timestamp's second/millisecond parts,
    ``cts``/``ctms`` the close timestamp's, ``fid`` the file id and
    ``fsid`` the storage-device id.  ``device`` and ``path`` carry the
    human-readable location for monitoring output.
    """

    fid: int
    fsid: int
    device: str
    path: str
    rb: int
    wb: int
    ots: int
    otms: int
    cts: int
    ctms: int
    #: extra telemetry (rt, wt, nrc, ... for EOS-style records)
    extra: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rb < 0 or self.wb < 0:
            raise ReplayDBError(
                f"byte counts must be non-negative (rb={self.rb}, wb={self.wb})"
            )
        if not 0 <= self.otms < 1000 or not 0 <= self.ctms < 1000:
            raise ReplayDBError(
                f"millisecond parts must be in [0, 1000): "
                f"otms={self.otms}, ctms={self.ctms}"
            )
        if self.close_time <= self.open_time:
            raise ReplayDBError(
                f"close time {self.close_time} must be after open time "
                f"{self.open_time}"
            )

    @classmethod
    def _trusted(cls, state: dict) -> "AccessRecord":
        """Construct from a pre-validated field dict, skipping ``__init__``.

        The batched access pipeline builds records whose invariants hold
        by construction (clamped millisecond parts, close strictly after
        open), so it pays neither field-by-field frozen assignment nor
        ``__post_init__`` re-validation.  ``state`` must contain every
        dataclass field (including ``extra``) and may pre-seed the cached
        ``throughput``/``throughput_gbps`` properties.  Populates the
        instance ``__dict__`` directly -- the same route
        ``cached_property`` uses -- which the frozen ``__setattr__``
        cannot intercept.
        """
        record = cls.__new__(cls)
        record.__dict__.update(state)
        return record

    @property
    def open_time(self) -> float:
        """Open timestamp in fractional seconds."""
        return self.ots + self.otms / 1000.0

    @property
    def close_time(self) -> float:
        """Close timestamp in fractional seconds."""
        return self.cts + self.ctms / 1000.0

    @property
    def duration(self) -> float:
        """Access duration in seconds."""
        return self.close_time - self.open_time

    @property
    def total_bytes(self) -> int:
        return self.rb + self.wb

    @cached_property
    def throughput(self) -> float:
        """Throughput of this access in bytes/second (paper's Tp_i).

        Cached per record; the batched access pipeline pre-seeds the
        cache from one vectorized :func:`access_throughput` call (whose
        elementwise result is bit-identical to this scalar evaluation).
        """
        return float(
            access_throughput(self.rb, self.wb, self.ots, self.otms,
                              self.cts, self.ctms)
        )

    @cached_property
    def throughput_gbps(self) -> float:
        """Throughput in GB/s, the unit of Fig. 5 and Table IV."""
        return self.throughput / BYTES_PER_GB


@dataclass(frozen=True)
class MovementRecord:
    """One file migration commanded by Geomancy (or a baseline policy).

    ``succeeded`` is False for moves a fault aborted mid-transfer: the
    file stayed on ``src_device`` and ``bytes_moved``/``duration`` record
    the traffic wasted before the abort.
    """

    timestamp: float
    fid: int
    src_device: str
    dst_device: str
    bytes_moved: int
    duration: float
    succeeded: bool = True
    #: trace id of the LayoutCommand that caused the move (None for
    #: baseline policies or a plane without causal tracing)
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.bytes_moved < 0:
            raise ReplayDBError(
                f"bytes_moved must be non-negative, got {self.bytes_moved}"
            )
        if self.duration < 0:
            raise ReplayDBError(
                f"duration must be non-negative, got {self.duration}"
            )
        if self.src_device == self.dst_device:
            raise ReplayDBError(
                f"movement must change device (src == dst == {self.src_device!r})"
            )
