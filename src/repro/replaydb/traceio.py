"""Trace serialization: JSONL and CSV access-log files.

The paper's methodology starts from access traces ("Traces are used as a
proof of concept...").  These helpers let users persist synthetic traces,
exchange them between runs, and feed externally captured EOS-style logs
into the ReplayDB.

* **JSONL** round-trips everything, including each record's ``extra``
  telemetry dict.
* **CSV** writes the fixed schema columns plus a stable, sorted union of
  extra keys -- convenient for spreadsheets and plotting tools.
"""

from __future__ import annotations

import csv
import json
import os
from collections.abc import Iterable, Sequence

from repro.errors import ReplayDBError
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import AccessRecord

#: fixed schema columns, in file order
_FIXED_FIELDS = (
    "fid", "fsid", "device", "path", "rb", "wb",
    "ots", "otms", "cts", "ctms",
)


def save_trace_jsonl(
    records: Iterable[AccessRecord], path: str | os.PathLike
) -> int:
    """Write records to a JSONL file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            row = {name: getattr(record, name) for name in _FIXED_FIELDS}
            if record.extra:
                row["extra"] = record.extra
            fh.write(json.dumps(row) + "\n")
            count += 1
    return count


def load_trace_jsonl(path: str | os.PathLike) -> list[AccessRecord]:
    """Read records written by :func:`save_trace_jsonl`."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReplayDBError(
                    f"{path}:{lineno}: invalid JSON ({exc})"
                ) from None
            try:
                records.append(
                    AccessRecord(
                        **{name: row[name] for name in _FIXED_FIELDS},
                        extra=row.get("extra", {}),
                    )
                )
            except (KeyError, TypeError) as exc:
                raise ReplayDBError(
                    f"{path}:{lineno}: malformed record ({exc})"
                ) from None
    return records


def save_trace_csv(
    records: Sequence[AccessRecord], path: str | os.PathLike
) -> int:
    """Write records to CSV with a stable header.

    Extra-telemetry keys become additional columns (the sorted union over
    all records); records missing a key get an empty cell.
    """
    extra_keys = sorted({key for r in records for key in r.extra})
    header = list(_FIXED_FIELDS) + extra_keys
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for record in records:
            row = [getattr(record, name) for name in _FIXED_FIELDS]
            row.extend(record.extra.get(key, "") for key in extra_keys)
            writer.writerow(row)
    return len(records)


def load_trace_csv(path: str | os.PathLike) -> list[AccessRecord]:
    """Read records written by :func:`save_trace_csv`."""
    records = []
    with open(path, encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ReplayDBError(f"{path}: empty CSV trace")
        missing = set(_FIXED_FIELDS) - set(reader.fieldnames)
        if missing:
            raise ReplayDBError(
                f"{path}: missing required columns {sorted(missing)}"
            )
        extra_keys = [
            name for name in reader.fieldnames if name not in _FIXED_FIELDS
        ]
        for lineno, row in enumerate(reader, start=2):
            try:
                extra = {
                    key: float(row[key])
                    for key in extra_keys
                    if row[key] not in ("", None)
                }
                records.append(
                    AccessRecord(
                        fid=int(row["fid"]),
                        fsid=int(row["fsid"]),
                        device=row["device"],
                        path=row["path"],
                        rb=int(row["rb"]),
                        wb=int(row["wb"]),
                        ots=int(row["ots"]),
                        otms=int(row["otms"]),
                        cts=int(row["cts"]),
                        ctms=int(row["ctms"]),
                        extra=extra,
                    )
                )
            except (KeyError, ValueError) as exc:
                raise ReplayDBError(
                    f"{path}:{lineno}: malformed record ({exc})"
                ) from None
    return records


def export_db(db: ReplayDB, path: str | os.PathLike) -> int:
    """Dump a ReplayDB's full access log to JSONL (chronological)."""
    total = db.access_count()
    if total == 0:
        raise ReplayDBError("replay database holds no accesses to export")
    return save_trace_jsonl(db.recent_accesses(total), path)


def import_db(db: ReplayDB, path: str | os.PathLike) -> int:
    """Load a JSONL trace into a ReplayDB; returns rows inserted."""
    return db.insert_accesses(load_trace_jsonl(path))
