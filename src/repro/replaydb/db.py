"""SQLite-backed ReplayDB.

The DRL engine trains on "the most recent X accesses for each of the storage
devices" (paper section V-E), so the query surface is built around
most-recent-N retrieval per device and per file, plus the movement log used
to cluster file migrations for the Fig. 5 bar charts.
"""

from __future__ import annotations

import json
import os
import sqlite3
from collections.abc import Iterable
from pathlib import Path

import numpy as np

from repro.errors import ReplayDBError
from repro.observability import get_observability
from repro.replaydb.records import AccessRecord, MovementRecord

#: the documented default: a private in-memory database (fast, unshared,
#: gone when the process exits -- simulation runs that need durability
#: pass a real path or use :meth:`ReplayDB.snapshot_to`)
MEMORY = ":memory:"

#: numeric access fields served by the columnar probe query, in SELECT order
PROBE_FIELDS: tuple[str, ...] = (
    "fid", "fsid", "rb", "wb", "ots", "otms", "cts", "ctms",
)

#: SQL shared by the eager single-row and deferred bulk insert paths
_INSERT_ACCESS_SQL = (
    "INSERT INTO accesses (fid, fsid, device, path, rb, wb, ots, "
    "otms, cts, ctms, throughput, extra) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS accesses (
    id      INTEGER PRIMARY KEY,
    fid     INTEGER NOT NULL,
    fsid    INTEGER NOT NULL,
    device  TEXT    NOT NULL,
    path    TEXT    NOT NULL,
    rb      INTEGER NOT NULL,
    wb      INTEGER NOT NULL,
    ots     INTEGER NOT NULL,
    otms    INTEGER NOT NULL,
    cts     INTEGER NOT NULL,
    ctms    INTEGER NOT NULL,
    throughput REAL NOT NULL,
    extra   TEXT    NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_accesses_device ON accesses(device, id);
CREATE INDEX IF NOT EXISTS idx_accesses_fid    ON accesses(fid, id);
CREATE TABLE IF NOT EXISTS movements (
    id         INTEGER PRIMARY KEY,
    timestamp  REAL    NOT NULL,
    fid        INTEGER NOT NULL,
    src_device TEXT    NOT NULL,
    dst_device TEXT    NOT NULL,
    bytes_moved INTEGER NOT NULL,
    duration   REAL    NOT NULL,
    succeeded  INTEGER NOT NULL DEFAULT 1,
    trace_id   TEXT
);
CREATE INDEX IF NOT EXISTS idx_movements_ts ON movements(timestamp);
"""


class ReplayDB:
    """Access/movement telemetry store.

    Defaults to :data:`MEMORY` -- a private in-memory database, the common
    case for simulation runs, which costs nothing to create and vanishes
    with the process.  Pass a filesystem path (``str`` or
    :class:`~pathlib.Path`) for persistence across processes; on-disk
    databases run in WAL mode so readers never block the writer and a
    crash can roll back at most the last uncommitted transaction.  Usable
    as a context manager; :meth:`close` releases the file handle (and is
    idempotent), after which any further operation raises
    :class:`~repro.errors.ReplayDBError`.

    ``max_pending_accesses`` bounds the write-behind buffer: a bulk
    insert that would grow it past the threshold lands the buffered rows
    in sqlite immediately, so long fused runs with no intervening reads
    cannot grow the buffer without limit.
    """

    #: default write-behind buffer bound (rows)
    DEFAULT_MAX_PENDING_ACCESSES = 50_000

    def __init__(
        self,
        path: str | os.PathLike = MEMORY,
        *,
        max_pending_accesses: int | None = None,
    ) -> None:
        if isinstance(path, os.PathLike):
            path = os.fspath(path)
        if not isinstance(path, str) or not path:
            raise ReplayDBError(
                f"path must be a non-empty string or Path (or the "
                f"{MEMORY!r} default), got {path!r}"
            )
        if max_pending_accesses is None:
            max_pending_accesses = self.DEFAULT_MAX_PENDING_ACCESSES
        if max_pending_accesses < 1:
            raise ReplayDBError(
                "max_pending_accesses must be >= 1, "
                f"got {max_pending_accesses}"
            )
        self.max_pending_accesses = int(max_pending_accesses)
        self.path = path
        self._closed = False
        #: write-behind buffer for bulk access inserts: rows wait here
        #: until a reader (or snapshot/close) needs the table, so the
        #: sqlite work happens once per read boundary instead of once per
        #: workload run.  Observationally identical to eager writes --
        #: every query path flushes first.
        self._pending_accesses: list[tuple] = []
        self._raw_conn = sqlite3.connect(path)
        if not self.in_memory:
            # WAL survives crashes with at most the last transaction lost
            # and lets checkpoint readers run alongside the writer;
            # synchronous=NORMAL is WAL's intended durability pairing.
            self._raw_conn.execute("PRAGMA journal_mode=WAL")
            self._raw_conn.execute("PRAGMA synchronous=NORMAL")
        self._raw_conn.executescript(_SCHEMA)
        self._raw_conn.commit()
        metrics = get_observability().metrics
        self._m_rows_written = metrics.counter(
            "repro_replaydb_rows_written_total",
            "access and movement rows inserted",
        )
        self._m_queries = metrics.counter(
            "repro_replaydb_queries_total", "read queries served"
        )

    # -- lifecycle -----------------------------------------------------------
    @property
    def in_memory(self) -> bool:
        """Whether this database lives only in process memory."""
        return self.path == MEMORY or self.path.startswith("file::memory:")

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def _conn(self) -> sqlite3.Connection:
        if self._closed:
            raise ReplayDBError("ReplayDB is closed")
        return self._raw_conn

    def _flush_accesses(self) -> None:
        """Land buffered access rows in sqlite (in arrival order)."""
        if self._pending_accesses:
            rows = self._pending_accesses
            self._pending_accesses = []
            self._conn.executemany(_INSERT_ACCESS_SQL, rows)
            self._conn.commit()

    def close(self) -> None:
        if not self._closed:
            self._flush_accesses()
            self._raw_conn.close()
            self._closed = True

    def __enter__(self) -> "ReplayDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- snapshots -----------------------------------------------------------
    def snapshot_to(self, path: str | os.PathLike) -> Path:
        """Export a consistent point-in-time copy of the whole database.

        Uses sqlite's online backup API, so it works for in-memory
        databases and does not block other readers; the copy is staged
        beside ``path`` and renamed into place, so a crash mid-export
        never leaves a torn snapshot at the destination.
        """
        self._flush_accesses()
        dest = Path(path)
        tmp = dest.with_name(f".{dest.name}.tmp")
        if tmp.exists():
            tmp.unlink()
        try:
            target = sqlite3.connect(tmp)
            try:
                self._conn.backup(target)
            finally:
                target.close()
            os.replace(tmp, dest)
        except sqlite3.Error as exc:
            raise ReplayDBError(f"snapshot to {dest} failed: {exc}") from exc
        finally:
            if tmp.exists():
                tmp.unlink()
        return dest

    def load_snapshot(self, path: str | os.PathLike) -> "ReplayDB":
        """Replace this database's entire contents with a snapshot's."""
        self._flush_accesses()
        source_path = os.fspath(path)
        if not os.path.exists(source_path):
            raise ReplayDBError(f"no snapshot at {source_path!r}")
        try:
            source = sqlite3.connect(source_path)
            try:
                source.backup(self._conn)
            finally:
                source.close()
        except sqlite3.Error as exc:
            raise ReplayDBError(
                f"restoring snapshot {source_path!r} failed: {exc}"
            ) from exc
        return self

    @classmethod
    def from_snapshot(
        cls, snapshot: str | os.PathLike, path: str | os.PathLike = MEMORY
    ) -> "ReplayDB":
        """A new database (in-memory by default) filled from a snapshot."""
        return cls(path).load_snapshot(snapshot)

    # -- writes ----------------------------------------------------------
    def insert_access(self, record: AccessRecord) -> int:
        """Store one access immediately; returns its row id."""
        self._flush_accesses()  # keep arrival order with buffered rows
        cur = self._conn.execute(
            _INSERT_ACCESS_SQL,
            (
                record.fid, record.fsid, record.device, record.path,
                record.rb, record.wb, record.ots, record.otms,
                record.cts, record.ctms, record.throughput,
                json.dumps(record.extra),
            ),
        )
        self._conn.commit()
        self._m_rows_written.inc()
        return int(cur.lastrowid)

    def insert_accesses(self, records: Iterable[AccessRecord]) -> int:
        """Bulk insert; returns the number of rows accepted.

        Rows are staged in the write-behind buffer and land in sqlite at
        the next read boundary (any query, snapshot, or close), so
        back-to-back workload runs pay one ``executemany`` per boundary
        instead of one per run.  When the buffer reaches
        ``max_pending_accesses`` rows it is flushed immediately, bounding
        the memory held between read boundaries.
        """
        if self._closed:
            raise ReplayDBError("ReplayDB is closed")
        dumps = json.dumps
        rows = [
            (
                r.fid, r.fsid, r.device, r.path, r.rb, r.wb, r.ots, r.otms,
                r.cts, r.ctms, r.throughput,
                dumps(r.extra) if r.extra else "{}",
            )
            for r in records
        ]
        self._pending_accesses.extend(rows)
        if len(self._pending_accesses) >= self.max_pending_accesses:
            self._flush_accesses()
        self._m_rows_written.inc(len(rows))
        return len(rows)

    def insert_movements(self, records: Iterable[MovementRecord]) -> int:
        """Bulk insert movements; returns the number of rows written."""
        rows = [
            (
                r.timestamp, r.fid, r.src_device, r.dst_device,
                r.bytes_moved, r.duration, int(r.succeeded), r.trace_id,
            )
            for r in records
        ]
        self._conn.executemany(
            "INSERT INTO movements (timestamp, fid, src_device, dst_device, "
            "bytes_moved, duration, succeeded, trace_id) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()
        self._m_rows_written.inc(len(rows))
        return len(rows)

    def insert_movement(self, record: MovementRecord) -> int:
        cur = self._conn.execute(
            "INSERT INTO movements (timestamp, fid, src_device, dst_device, "
            "bytes_moved, duration, succeeded, trace_id) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.timestamp, record.fid, record.src_device,
                record.dst_device, record.bytes_moved, record.duration,
                int(record.succeeded), record.trace_id,
            ),
        )
        self._conn.commit()
        self._m_rows_written.inc()
        return int(cur.lastrowid)

    # -- reads -----------------------------------------------------------
    @staticmethod
    def _to_record(row: tuple) -> AccessRecord:
        return AccessRecord(
            fid=row[1], fsid=row[2], device=row[3], path=row[4],
            rb=row[5], wb=row[6], ots=row[7], otms=row[8],
            cts=row[9], ctms=row[10], extra=json.loads(row[12]),
        )

    def recent_accesses(
        self,
        limit: int,
        *,
        device: str | None = None,
        fid: int | None = None,
    ) -> list[AccessRecord]:
        """The most recent ``limit`` accesses, in chronological order.

        Optionally restricted to one device or one file.
        """
        if limit <= 0:
            raise ReplayDBError(f"limit must be positive, got {limit}")
        self._flush_accesses()
        self._m_queries.inc()
        clauses, params = [], []
        if device is not None:
            clauses.append("device = ?")
            params.append(device)
        if fid is not None:
            clauses.append("fid = ?")
            params.append(fid)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            f"SELECT * FROM (SELECT * FROM accesses {where} "
            f"ORDER BY id DESC LIMIT ?) ORDER BY id ASC",
            (*params, limit),
        ).fetchall()
        return [self._to_record(row) for row in rows]

    def max_rowid(self) -> int:
        """The largest access row id written so far (0 when empty).

        Row ids are assigned in arrival order, so this is the
        high-water-mark cursor the online-learning engine keeps between
        decision points.
        """
        self._flush_accesses()
        row = self._conn.execute("SELECT MAX(id) FROM accesses").fetchone()
        return int(row[0]) if row[0] is not None else 0

    def accesses_since(
        self, rowid: int, *, limit: int | None = None
    ) -> tuple[list[int], list[AccessRecord]]:
        """Accesses appended after the ``rowid`` cursor, chronological.

        The incremental-training query: rides the primary key, so the
        cost is O(new rows) regardless of how large the table has grown.
        Returns ``(ids, records)`` aligned element for element; the last
        id is the caller's next cursor.  ``limit`` keeps only the most
        recent ``limit`` of the new rows (a burst-bound for the online
        path), still returned in chronological order.
        """
        if rowid < 0:
            raise ReplayDBError(f"rowid must be non-negative, got {rowid}")
        if limit is not None and limit <= 0:
            raise ReplayDBError(f"limit must be positive, got {limit}")
        self._flush_accesses()
        self._m_queries.inc()
        if limit is None:
            rows = self._conn.execute(
                "SELECT * FROM accesses WHERE id > ? ORDER BY id ASC",
                (rowid,),
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM (SELECT * FROM accesses WHERE id > ? "
                "ORDER BY id DESC LIMIT ?) ORDER BY id ASC",
                (rowid, limit),
            ).fetchall()
        ids = [int(row[0]) for row in rows]
        return ids, [self._to_record(row) for row in rows]

    def accesses_by_id(self, ids: Iterable[int]) -> list[AccessRecord]:
        """Fetch specific access rows by id, in ascending-id order.

        Serves the prioritized replay buffer: sampled row ids come back
        as records in chronological order (duplicates collapse; unknown
        ids are silently absent).  Point lookups on the primary key, so
        the cost is O(k log n) for k ids.
        """
        wanted = sorted(set(int(i) for i in ids))
        if not wanted:
            return []
        self._flush_accesses()
        self._m_queries.inc()
        placeholders = ", ".join("?" for _ in wanted)
        rows = self._conn.execute(
            f"SELECT * FROM accesses WHERE id IN ({placeholders}) "
            "ORDER BY id ASC",
            wanted,
        ).fetchall()
        return [self._to_record(row) for row in rows]

    def recent_per_device(
        self, limit: int, *, fids: Iterable[int] | None = None
    ) -> dict[str, list[AccessRecord]]:
        """Most recent ``limit`` accesses for each device seen so far.

        This is the paper's training-batch request: "All requests for data
        contain the X most recent accesses for each of the storage devices."
        One window-function query (riding ``idx_accesses_device``) replaces
        the former one-query-per-device loop; devices are keyed in sorted
        order with each device's records chronological, exactly as before.

        ``fids`` restricts the window to accesses of the given files --
        the shard-slice view: a shard asking for its devices' recent
        history never ranks (or returns) other shards' rows.
        """
        if limit <= 0:
            raise ReplayDBError(f"limit must be positive, got {limit}")
        self._flush_accesses()
        self._m_queries.inc()
        where, params = "", []
        if fids is not None:
            wanted = sorted(set(fids))
            if not wanted:
                return {}
            placeholders = ", ".join("?" for _ in wanted)
            where = f"WHERE fid IN ({placeholders})"
            params = wanted
        rows = self._conn.execute(
            "SELECT * FROM ("
            "  SELECT a.*, ROW_NUMBER() OVER "
            "    (PARTITION BY device ORDER BY id DESC) AS rn"
            f"  FROM accesses AS a {where}"
            ") WHERE rn <= ? ORDER BY device ASC, id ASC",
            (*params, limit),
        ).fetchall()
        out: dict[str, list[AccessRecord]] = {}
        for row in rows:
            out.setdefault(row[3], []).append(self._to_record(row))
        return out

    def _fids_with_rows(self, wanted: list[int]) -> list[int]:
        """The subset of ``wanted`` (sorted) that has access rows at all.

        The sharded decision path asks for *every* file in its shard,
        most of which may have no telemetry yet; one loose index scan
        over the distinct fids beats probing thousands of absent files
        one query at a time.  Small requests skip the scan -- the probes
        themselves are cheaper than reading the distinct list.
        """
        if len(wanted) <= 64:
            return wanted
        rows = self._conn.execute("SELECT DISTINCT fid FROM accesses")
        present = {int(row[0]) for row in rows}
        return [fid for fid in wanted if fid in present]

    def recent_accesses_per_file(
        self, limit: int, fids: Iterable[int] | None = None
    ) -> dict[int, list[AccessRecord]]:
        """Most recent ``limit`` accesses for each file, in one query.

        The batched decision path's telemetry request: instead of issuing
        one ``recent_accesses(fid=...)`` query per probed file, a single
        window-function scan (riding ``idx_accesses_fid``) ranks every
        file's accesses newest-first and keeps the top ``limit`` per file.
        Each file's list is chronological; files without telemetry are
        absent from the result (the engine skips them).

        ``fids`` narrows the result to the given ids and switches to one
        indexed top-N probe per present file, so a shard slice costs
        O(shard files x limit) however large the access log has grown --
        no full-window pass over other shards' rows.
        """
        if limit <= 0:
            raise ReplayDBError(f"limit must be positive, got {limit}")
        self._flush_accesses()
        self._m_queries.inc()
        out: dict[int, list[AccessRecord]] = {}
        if fids is not None:
            wanted = sorted(set(fids))
            if not wanted:
                return out
            execute = self._conn.execute
            for fid in self._fids_with_rows(wanted):
                rows = execute(
                    "SELECT * FROM accesses WHERE fid = ? "
                    "ORDER BY id DESC LIMIT ?",
                    (fid, limit),
                ).fetchall()
                if rows:
                    out[fid] = [
                        self._to_record(row) for row in reversed(rows)
                    ]
            return out
        rows = self._conn.execute(
            "SELECT * FROM ("
            "  SELECT a.*, ROW_NUMBER() OVER "
            "    (PARTITION BY fid ORDER BY id DESC) AS rn"
            "  FROM accesses AS a"
            ") WHERE rn <= ? ORDER BY fid ASC, id ASC",
            (limit,),
        ).fetchall()
        for row in rows:
            out.setdefault(int(row[1]), []).append(self._to_record(row))
        return out

    def recent_access_columns_per_file(
        self, limit: int, fids: Iterable[int] | None = None
    ) -> tuple[list[tuple[int, int, int]], dict[str, np.ndarray]]:
        """Columnar variant of :meth:`recent_accesses_per_file`.

        The decision path only consumes the numeric access fields, so this
        skips AccessRecord materialization entirely (no JSON decode, no
        dataclass validation) and returns flat float64 arrays ready for
        the feature pipeline.  Returns ``(spans, columns)`` where
        ``spans`` lists ``(fid, start, stop)`` row ranges in fid-ascending
        order (each file's rows chronological) and ``columns`` maps every
        :data:`PROBE_FIELDS` name to one array over all rows.
        """
        if limit <= 0:
            raise ReplayDBError(f"limit must be positive, got {limit}")
        self._flush_accesses()
        self._m_queries.inc()
        fields = ", ".join(PROBE_FIELDS)
        if fids is not None:
            # Explicit fid list: one indexed top-N probe per file
            # (``idx_accesses_fid``, ORDER BY id DESC LIMIT k) instead of
            # the whole-table window scan, so the decision epoch's
            # telemetry read costs O(files x limit) however large the
            # access log has grown.  The distinct-fid prefilter keeps a
            # shard asking about its whole (mostly untouched) file slice
            # at O(files with telemetry) probes.  Row content and
            # ordering are identical to the window query below.
            wanted = sorted(set(fids))
            if not wanted:
                return [], {}
            rows = []
            execute = self._conn.execute
            for fid in self._fids_with_rows(wanted):
                per_fid = execute(
                    f"SELECT {fields} FROM accesses WHERE fid = ? "
                    "ORDER BY id DESC LIMIT ?",
                    (fid, limit),
                ).fetchall()
                rows.extend(reversed(per_fid))
        else:
            rows = self._conn.execute(
                f"SELECT {fields} FROM ("
                f"  SELECT id, {fields}, ROW_NUMBER() OVER "
                "    (PARTITION BY fid ORDER BY id DESC) AS rn"
                "  FROM accesses"
                ") WHERE rn <= ? ORDER BY fid ASC, id ASC",
                (limit,),
            ).fetchall()
        if not rows:
            return [], {}
        data = np.array(rows, dtype=np.float64)
        columns = {
            name: data[:, i] for i, name in enumerate(PROBE_FIELDS)
        }
        fid_col = data[:, 0]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(fid_col)) + 1)
        )
        stops = np.concatenate((starts[1:], [len(fid_col)]))
        spans = [
            (int(fid_col[start]), int(start), int(stop))
            for start, stop in zip(starts, stops)
        ]
        return spans, columns

    def devices(self) -> list[str]:
        """Distinct device names present in the access log."""
        self._flush_accesses()
        rows = self._conn.execute(
            "SELECT DISTINCT device FROM accesses ORDER BY device"
        ).fetchall()
        return [row[0] for row in rows]

    def files(self) -> list[int]:
        """Distinct file ids present in the access log."""
        self._flush_accesses()
        rows = self._conn.execute(
            "SELECT DISTINCT fid FROM accesses ORDER BY fid"
        ).fetchall()
        return [row[0] for row in rows]

    def access_count(self, *, device: str | None = None) -> int:
        self._flush_accesses()
        self._m_queries.inc()
        if device is None:
            row = self._conn.execute("SELECT COUNT(*) FROM accesses").fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM accesses WHERE device = ?", (device,)
            ).fetchone()
        return int(row[0])

    def access_count_per_file(self) -> dict[int, int]:
        """Access frequency by file id (drives the LFU baseline)."""
        self._flush_accesses()
        rows = self._conn.execute(
            "SELECT fid, COUNT(*) FROM accesses GROUP BY fid"
        ).fetchall()
        return {int(fid): int(count) for fid, count in rows}

    def last_access_time_per_file(self) -> dict[int, float]:
        """Most recent close time by file id (drives LRU/MRU baselines)."""
        self._flush_accesses()
        rows = self._conn.execute(
            "SELECT fid, MAX(cts + ctms / 1000.0) FROM accesses GROUP BY fid"
        ).fetchall()
        return {int(fid): float(t) for fid, t in rows}

    def average_throughput(self, *, device: str | None = None) -> float:
        """Mean per-access throughput (bytes/s), optionally for one device."""
        self._flush_accesses()
        self._m_queries.inc()
        if device is None:
            row = self._conn.execute(
                "SELECT AVG(throughput) FROM accesses"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT AVG(throughput) FROM accesses WHERE device = ?",
                (device,),
            ).fetchone()
        if row[0] is None:
            raise ReplayDBError(
                "no accesses recorded"
                + (f" for device {device!r}" if device else "")
            )
        return float(row[0])

    def device_throughput_ranking(self) -> list[tuple[str, float]]:
        """Devices ordered fastest-first by mean observed throughput.

        The heuristic baselines (LRU/MRU/LFU) "start by taking the current
        total average throughput at each storage device using data collected
        in the ReplayDB" (section VI).
        """
        self._flush_accesses()
        rows = self._conn.execute(
            "SELECT device, AVG(throughput) FROM accesses "
            "GROUP BY device ORDER BY AVG(throughput) DESC"
        ).fetchall()
        return [(row[0], float(row[1])) for row in rows]

    # -- movement log ------------------------------------------------------
    def movements(
        self,
        *,
        since: float | None = None,
        until: float | None = None,
        succeeded_only: bool = False,
    ) -> list[MovementRecord]:
        clauses, params = [], []
        if since is not None:
            clauses.append("timestamp >= ?")
            params.append(since)
        if until is not None:
            clauses.append("timestamp < ?")
            params.append(until)
        if succeeded_only:
            clauses.append("succeeded = 1")
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            f"SELECT timestamp, fid, src_device, dst_device, bytes_moved, "
            f"duration, succeeded, trace_id FROM movements {where} "
            f"ORDER BY id ASC",
            params,
        ).fetchall()
        return [
            MovementRecord(*row[:6], succeeded=bool(row[6]), trace_id=row[7])
            for row in rows
        ]

    def movement_clusters(self, gap: float = 1.0) -> list[tuple[float, int]]:
        """Group movements into bursts separated by more than ``gap`` seconds.

        Returns ``(cluster start timestamp, files moved)`` pairs -- the data
        behind the bar charts under the Fig. 5 performance curves.
        """
        if gap <= 0:
            raise ReplayDBError(f"gap must be positive, got {gap}")
        clusters: list[list[float]] = []  # [start, last_seen, count]
        for move in self.movements(succeeded_only=True):
            if clusters and move.timestamp - clusters[-1][1] <= gap:
                clusters[-1][1] = move.timestamp
                clusters[-1][2] += 1
            else:
                clusters.append([move.timestamp, move.timestamp, 1])
        return [(start, int(count)) for start, _, count in clusters]
