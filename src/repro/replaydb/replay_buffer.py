"""Prioritized experience replay over ReplayDB row ids.

The online engine trains each cycle on the telemetry appended since the
last decision point *plus* a sample of history, so the model keeps its
grip on regimes the fresh batch does not cover (continual learning's
catastrophic-forgetting guard).  Following prioritized experience replay
(Schaul et al., referenced via the Sibyl/HDFS-RL lineage in PAPERS.md),
history is not sampled uniformly: each stored row carries a priority
derived from the model's last prediction error on it, sharpened by
``alpha`` and multiplied by an exponential recency decay, so surprising
and recent telemetry is replayed more often.  The induced sampling bias
is corrected with importance-sampling weights ``(1 / (N * P(i)))**beta``
(normalized by the batch maximum) that the trainer applies per-row in the
loss.

Only row *ids* and priorities live here -- the rows themselves stay in
ReplayDB and are fetched by id at sample time -- so the buffer is O(capacity)
memory regardless of how much history the database accumulates.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReplayDBError


class PrioritizedReplay:
    """Fixed-capacity priority/recency-weighted sampler of ReplayDB rows.

    A ring buffer over ``(rowid, priority, insertion index)`` triples:
    when full, the oldest entry is evicted.  New rows enter at the
    current maximum priority (every experience is replayed at least with
    top odds once, per Schaul et al.), and ``update_priorities`` re-scores
    rows after each training step from their fresh prediction errors.
    Sampling is deterministic given the seed.
    """

    def __init__(
        self,
        capacity: int,
        *,
        alpha: float = 0.6,
        beta: float = 0.4,
        recency_half_life: float = 10_000.0,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ReplayDBError(f"capacity must be >= 1, got {capacity}")
        if alpha < 0:
            raise ReplayDBError(f"alpha must be non-negative, got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ReplayDBError(f"beta must be in [0, 1], got {beta}")
        if recency_half_life <= 0:
            raise ReplayDBError(
                f"recency_half_life must be positive, got {recency_half_life}"
            )
        self.capacity = int(capacity)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.recency_half_life = float(recency_half_life)
        self._ids = np.zeros(self.capacity, dtype=np.int64)
        self._priorities = np.zeros(self.capacity, dtype=np.float64)
        self._inserted = np.zeros(self.capacity, dtype=np.int64)
        self._slot_by_id: dict[int, int] = {}
        self._size = 0
        self._next_slot = 0
        self._counter = 0  # monotone insertion clock (drives recency)
        self._max_priority = 1.0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self._size

    @property
    def max_priority(self) -> float:
        return self._max_priority

    def add(self, ids: list[int] | np.ndarray) -> None:
        """Admit new rows at maximum priority (oldest entries evicted)."""
        for rowid in ids:
            rowid = int(rowid)
            slot = self._slot_by_id.get(rowid)
            if slot is None:
                slot = self._next_slot
                evicted = self._ids[slot]
                if self._size == self.capacity and evicted != rowid:
                    self._slot_by_id.pop(int(evicted), None)
                self._next_slot = (slot + 1) % self.capacity
                if self._size < self.capacity:
                    self._size += 1
                self._slot_by_id[rowid] = slot
                self._ids[slot] = rowid
            self._priorities[slot] = self._max_priority
            self._inserted[slot] = self._counter
            self._counter += 1

    def _sampling_probabilities(self) -> np.ndarray:
        priorities = self._priorities[: self._size]
        age = self._counter - self._inserted[: self._size]
        recency = np.exp2(-age / self.recency_half_life)
        weights = np.power(priorities, self.alpha) * recency
        total = weights.sum()
        if not np.isfinite(total) or total <= 0.0:
            return np.full(self._size, 1.0 / self._size)
        return weights / total

    def sample(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw up to ``k`` distinct rows; returns ``(ids, is_weights)``.

        ``is_weights`` are the importance-sampling corrections, already
        normalized so the largest weight in the batch is 1.0 (only the
        *relative* scale matters to SGD, and capping at 1 keeps weighted
        updates no larger than unweighted ones, per Schaul et al.).
        """
        if k < 1:
            raise ReplayDBError(f"sample size must be >= 1, got {k}")
        if self._size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        k = min(k, self._size)
        probs = self._sampling_probabilities()
        chosen = self._rng.choice(self._size, size=k, replace=False, p=probs)
        ids = self._ids[chosen].copy()
        weights = np.power(self._size * probs[chosen], -self.beta)
        weights /= weights.max()
        return ids, weights

    def update_priorities(
        self,
        ids: list[int] | np.ndarray,
        errors: list[float] | np.ndarray,
        *,
        epsilon: float = 1e-6,
    ) -> None:
        """Re-score rows from fresh prediction errors.

        ``priority = |error| + epsilon`` -- the TD-style magnitude; the
        ``alpha`` sharpening happens at sample time so stored priorities
        remain raw errors.  Rows evicted since sampling are skipped.
        """
        if len(ids) != len(errors):
            raise ReplayDBError(
                f"{len(ids)} ids but {len(errors)} errors"
            )
        for rowid, error in zip(ids, errors):
            slot = self._slot_by_id.get(int(rowid))
            if slot is None:
                continue
            priority = abs(float(error)) + epsilon
            if not np.isfinite(priority):
                priority = self._max_priority
            self._priorities[slot] = priority
            if priority > self._max_priority:
                self._max_priority = priority

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "ids": self._ids[: self._size].tolist(),
            "priorities": self._priorities[: self._size].tolist(),
            "inserted": self._inserted[: self._size].tolist(),
            "next_slot": self._next_slot,
            "counter": self._counter,
            "max_priority": self._max_priority,
            "rng": self._rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        ids = state["ids"]
        if len(ids) > self.capacity:
            raise ReplayDBError(
                f"checkpoint holds {len(ids)} entries but capacity is "
                f"{self.capacity}; rebuild with the checkpoint's config"
            )
        self._size = len(ids)
        self._ids[: self._size] = ids
        self._priorities[: self._size] = state["priorities"]
        self._inserted[: self._size] = state["inserted"]
        self._slot_by_id = {int(rowid): i for i, rowid in enumerate(ids)}
        self._next_slot = int(state["next_slot"])
        self._counter = int(state["counter"])
        self._max_priority = float(state["max_priority"])
        self._rng.bit_generator.state = state["rng"]
