"""The ReplayDB: Geomancy's telemetry store (paper section V-A).

"the Interface Daemon stores the raw performance data into the ReplayDB, a
SQLite database located outside the target system. ... The ReplayDB stores
new performance data at each action taken by Geomancy, and each action is
indexed by a timestamp representing the time when Geomancy changed the data
layout to show an evolution of the data layout and corresponding
performance."
"""

from repro.replaydb.db import ReplayDB
from repro.replaydb.records import AccessRecord, MovementRecord

__all__ = ["ReplayDB", "AccessRecord", "MovementRecord"]
