"""Multi-tenant arrival processes over the existing trace generators.

The saturation study (and any soak test) needs *offered load* that looks
like several independent sites sharing one Geomancy control plane: each
tenant ships telemetry batches at its own rate, some smoothly (Poisson
arrivals), some in on/off bursts (the overload case the QoS plane exists
for).  :class:`TenantMix` assigns each :class:`TenantSpec` an arrival
process over discrete time slots and materializes real
:class:`~repro.agents.messages.TelemetryBatch` payloads by slicing a
per-tenant record stream from the existing generators (EOS synthetic
trace by default, BELLE II ops converted to records when a file set is
given).

Everything is a pure function of ``(seed, slot)``: two sweeps at the same
seed offer byte-identical load, so bounded-vs-unbounded comparisons see
the exact same flood.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from repro.agents.messages import TelemetryBatch
from repro.errors import ConfigurationError
from repro.replaydb.records import AccessRecord
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.eos import EOSTraceSynthesizer
from repro.workloads.files import FileSpec

#: supported arrival patterns
ARRIVAL_PATTERNS = ("poisson", "bursty")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's arrival process.

    ``rate_records_s`` is the *mean* offered load; a bursty tenant
    concentrates the same mean into on-windows covering ``duty_cycle`` of
    each ``burst_period_s``, so its instantaneous rate during a burst is
    ``rate_records_s / duty_cycle``.
    """

    name: str
    rate_records_s: float
    pattern: str = "poisson"
    records_per_batch: int = 32
    #: fraction of each burst period the tenant is "on" (bursty only)
    duty_cycle: float = 0.25
    #: seconds per on/off cycle (bursty only)
    burst_period_s: float = 2.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.rate_records_s <= 0:
            raise ConfigurationError(
                f"rate_records_s must be positive, got {self.rate_records_s}"
            )
        if self.pattern not in ARRIVAL_PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {ARRIVAL_PATTERNS}, "
                f"got {self.pattern!r}"
            )
        if self.records_per_batch < 1:
            raise ConfigurationError(
                f"records_per_batch must be >= 1, "
                f"got {self.records_per_batch}"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError(
                f"duty_cycle must be in (0, 1], got {self.duty_cycle}"
            )
        if self.burst_period_s <= 0:
            raise ConfigurationError(
                f"burst_period_s must be positive, got {self.burst_period_s}"
            )


def _belle2_records(
    files: list[FileSpec], seed: int, count: int
) -> list[AccessRecord]:
    """Materialize BELLE II ops as access records without a cluster.

    Timing is synthesized at a nominal device throughput -- the QoS layer
    cares about batch sizes and tenancy, not the simulated transfer
    physics -- but the op stream (fids, byte counts, burst structure) is
    the real generator's.
    """
    workload = Belle2Workload(files, seed=seed)
    by_fid = {spec.fid: spec for spec in files}
    nominal_bps = 1.2e9
    records: list[AccessRecord] = []
    t = 0.0
    run_index = 0
    while len(records) < count:
        for op in workload.run(run_index):
            spec = by_fid[op.fid]
            duration = max((op.rb + op.wb) / nominal_bps, 0.002)
            close = t + duration
            ots, cts = int(t), int(close)
            otms = int((t - ots) * 1000)
            ctms = int((close - cts) * 1000)
            if cts == ots and ctms <= otms:
                ctms = min(otms + 1, 999)
            records.append(
                AccessRecord(
                    fid=op.fid, fsid=op.fid % 8,
                    device=f"dev{op.fid % 8}", path=spec.path,
                    rb=op.rb, wb=op.wb,
                    ots=ots, otms=otms, cts=cts, ctms=ctms,
                )
            )
            t = close + 0.01
            if len(records) >= count:
                break
        run_index += 1
    return records


class TenantMix:
    """Deterministic multi-tenant offered-load generator over time slots."""

    #: records pre-materialized per tenant and recycled (the QoS layer
    #: never inspects record contents beyond their count)
    POOL_RECORDS = 2_048

    def __init__(
        self,
        tenants: list[TenantSpec],
        *,
        seed: int = 0,
        slot_s: float = 0.05,
        files: list[FileSpec] | None = None,
    ) -> None:
        if not tenants:
            raise ConfigurationError("TenantMix needs at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")
        if slot_s <= 0:
            raise ConfigurationError(f"slot_s must be positive, got {slot_s}")
        self.tenants = list(tenants)
        self.seed = int(seed)
        self.slot_s = float(slot_s)
        self.files = list(files) if files is not None else None
        self._pools: dict[str, list[AccessRecord]] = {}
        self._cursors: dict[str, int] = {spec.name: 0 for spec in tenants}
        self.offered_batches = 0
        self.offered_records = 0

    @property
    def total_rate_records_s(self) -> float:
        """Mean offered load across all tenants (records per second)."""
        return sum(spec.rate_records_s for spec in self.tenants)

    @staticmethod
    def _tenant_key(name: str) -> int:
        """Stable per-tenant seed component (``hash(str)`` is salted)."""
        return zlib.crc32(name.encode("utf-8"))

    def _pool(self, spec: TenantSpec) -> list[AccessRecord]:
        pool = self._pools.get(spec.name)
        if pool is None:
            tenant_seed = self._tenant_key(spec.name) ^ self.seed
            if self.files is not None:
                pool = _belle2_records(
                    self.files, tenant_seed, self.POOL_RECORDS
                )
            else:
                synth = EOSTraceSynthesizer(seed=tenant_seed, n_files=64)
                pool = synth.records(self.POOL_RECORDS)
            # A telemetry batch is per-device (one monitoring agent sent
            # it), so the tenant's whole stream reports from one mount.
            device = f"{spec.name}-dev"
            pool = [replace(record, device=device) for record in pool]
            self._pools[spec.name] = pool
        return pool

    def _take(self, spec: TenantSpec, count: int) -> tuple[AccessRecord, ...]:
        pool = self._pool(spec)
        cursor = self._cursors[spec.name]
        taken: list[AccessRecord] = []
        while len(taken) < count:
            chunk = pool[cursor : cursor + count - len(taken)]
            if not chunk:
                cursor = 0
                continue
            taken.extend(chunk)
            cursor = (cursor + len(chunk)) % len(pool)
        self._cursors[spec.name] = cursor
        return tuple(taken)

    def _arrivals(self, spec: TenantSpec, slot: int) -> int:
        """How many batches this tenant offers during slot ``slot``."""
        rate_batches_s = spec.rate_records_s / spec.records_per_batch
        if spec.pattern == "bursty":
            period_slots = max(1, round(spec.burst_period_s / self.slot_s))
            on_slots = max(1, round(spec.duty_cycle * period_slots))
            if slot % period_slots >= on_slots:
                return 0
            # Concentrate the mean rate into the on-window.
            rate_batches_s *= period_slots / on_slots
        rng = np.random.default_rng(
            (self.seed, self._tenant_key(spec.name), slot)
        )
        return int(rng.poisson(rate_batches_s * self.slot_s))

    def batches(self, slot: int) -> list[TelemetryBatch]:
        """The telemetry batches offered during slot ``slot``.

        Batch ``sent_at`` timestamps are spread uniformly (and
        deterministically) across the slot, interleaved across tenants in
        send order, so a shared transport sees a realistic arrival mix
        rather than per-tenant clumps.
        """
        if slot < 0:
            raise ConfigurationError(f"slot must be >= 0, got {slot}")
        start = slot * self.slot_s
        offered: list[TelemetryBatch] = []
        for spec in self.tenants:
            count = self._arrivals(spec, slot)
            for k in range(count):
                records = self._take(spec, spec.records_per_batch)
                offered.append(
                    TelemetryBatch(
                        device=records[0].device,
                        records=records,
                        sent_at=start + self.slot_s * (k + 0.5) / (count + 1),
                        tenant=spec.name,
                    )
                )
        offered.sort(key=lambda batch: batch.sent_at)
        self.offered_batches += len(offered)
        self.offered_records += sum(len(b.records) for b in offered)
        return offered
