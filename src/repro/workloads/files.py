"""The BELLE II file population.

"A Monte Carlo simulation provided to us utilizes 24 ROOT files of size from
583 KB to 1.1 GB" (section IV).  Sizes are drawn log-uniformly between those
bounds (a plausible shape for ROOT event files, where a few large files
dominate the bytes) with the extremes pinned so the population always spans
the paper's exact range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

KB = 1000
GB = 10**9

#: the paper's size bounds
MIN_FILE_BYTES = 583 * KB
MAX_FILE_BYTES = 1_100_000_000
DEFAULT_FILE_COUNT = 24


@dataclass(frozen=True)
class FileSpec:
    """One workload file."""

    fid: int
    path: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"file {self.fid} needs positive size, got {self.size_bytes}"
            )


def belle2_file_population(
    count: int = DEFAULT_FILE_COUNT,
    *,
    seed: int = 0,
    min_bytes: int = MIN_FILE_BYTES,
    max_bytes: int = MAX_FILE_BYTES,
    path_prefix: str = "belle2/mc",
) -> list[FileSpec]:
    """Build the workload's file set.

    The smallest and largest files are pinned to the bounds; the rest are
    log-uniform in between, deterministically for a given ``seed``.
    """
    if count < 2:
        raise ConfigurationError(f"need at least 2 files, got {count}")
    if not 0 < min_bytes < max_bytes:
        raise ConfigurationError(
            f"need 0 < min_bytes < max_bytes, got ({min_bytes}, {max_bytes})"
        )
    rng = np.random.default_rng(seed)
    sizes = np.exp(
        rng.uniform(np.log(min_bytes), np.log(max_bytes), size=count)
    ).astype(np.int64)
    sizes[0] = min_bytes
    sizes[-1] = max_bytes
    return [
        FileSpec(
            fid=i,
            path=f"{path_prefix}/evtgen_{i:02d}.root",
            size_bytes=int(size),
        )
        for i, size in enumerate(sizes)
    ]


def total_bytes(files: list[FileSpec]) -> int:
    """Total size of a file population."""
    return sum(f.size_bytes for f in files)
