"""The BELLE II Monte-Carlo workload (paper section IV).

"The workload acts as a suite of many applications reading and writing many
files individually, not as a singular application. ... In these read-heavy
simulations, each file is accessed 10-20 times in succession."

A *run* of the workload picks a handful of files (cycling through the
population so every file recurs), and reads each one 10-20 times in a row,
occasionally writing back a small result.  Run ``i`` is a pure function of
``(seed, i)``, so repeated experiments replay identical access streams no
matter which policy is steering placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.files import FileSpec


@dataclass(frozen=True)
class AccessOp:
    """One file operation the workload wants to perform."""

    fid: int
    rb: int
    wb: int

    def __post_init__(self) -> None:
        if self.rb < 0 or self.wb < 0:
            raise ConfigurationError(
                f"byte counts must be non-negative (rb={self.rb}, wb={self.wb})"
            )
        if self.rb == 0 and self.wb == 0:
            raise ConfigurationError("an access must read or write something")


class Belle2Workload:
    """Deterministic generator of BELLE II-style access runs."""

    def __init__(
        self,
        files: list[FileSpec],
        *,
        seed: int = 0,
        files_per_run: int = 4,
        burst_range: tuple[int, int] = (10, 20),
        read_fraction_range: tuple[float, float] = (0.25, 1.0),
        write_probability: float = 0.1,
        write_fraction: float = 0.02,
        selection: str = "random",
    ) -> None:
        if not files:
            raise ConfigurationError("workload needs at least one file")
        if files_per_run < 1:
            raise ConfigurationError(
                f"files_per_run must be >= 1, got {files_per_run}"
            )
        lo, hi = burst_range
        if not 1 <= lo <= hi:
            raise ConfigurationError(f"invalid burst_range {burst_range}")
        frac_lo, frac_hi = read_fraction_range
        if not 0.0 < frac_lo <= frac_hi <= 1.0:
            raise ConfigurationError(
                f"invalid read_fraction_range {read_fraction_range}"
            )
        if not 0.0 <= write_probability <= 1.0:
            raise ConfigurationError(
                f"write_probability must be in [0, 1], got {write_probability}"
            )
        if not 0.0 < write_fraction <= 1.0:
            raise ConfigurationError(
                f"write_fraction must be in (0, 1], got {write_fraction}"
            )
        if selection not in ("random", "cycle"):
            raise ConfigurationError(
                f"selection must be 'random' or 'cycle', got {selection!r}"
            )
        self.files = list(files)
        self.seed = int(seed)
        self.files_per_run = int(files_per_run)
        self.burst_range = (int(lo), int(hi))
        self.read_fraction_range = (float(frac_lo), float(frac_hi))
        self.write_probability = float(write_probability)
        self.write_fraction = float(write_fraction)
        self.selection = selection

    @property
    def fids(self) -> list[int]:
        return [f.fid for f in self.files]

    def _files_for_run(self, run_index: int) -> list[FileSpec]:
        """Pick the files this run works on.

        ``"random"`` (default) models the paper's "suite of many
        applications reading and writing many files individually": each run
        draws a random subset, so every file recurs but without a rigid
        period.  ``"cycle"`` walks the population in order -- the strict
        looping sequential scan under which MRU is near-optimal.
        """
        n = len(self.files)
        count = min(self.files_per_run, n)
        if self.selection == "cycle":
            start = (run_index * self.files_per_run) % n
            picked = [(start + k) % n for k in range(count)]
        else:
            rng = np.random.default_rng((self.seed, run_index, 7))
            picked = list(rng.choice(n, size=count, replace=False))
        return [self.files[i] for i in picked]

    def run(self, run_index: int) -> list[AccessOp]:
        """The access stream of run ``run_index`` (deterministic)."""
        if run_index < 0:
            raise ConfigurationError(f"run_index must be >= 0, got {run_index}")
        rng = np.random.default_rng((self.seed, run_index))
        lo, hi = self.burst_range
        frac_lo, frac_hi = self.read_fraction_range
        ops: list[AccessOp] = []
        for spec in self._files_for_run(run_index):
            burst = int(rng.integers(lo, hi + 1))
            for _ in range(burst):
                rb = max(1, int(spec.size_bytes * rng.uniform(frac_lo, frac_hi)))
                wb = 0
                if rng.random() < self.write_probability:
                    wb = max(1, int(spec.size_bytes * self.write_fraction))
                ops.append(AccessOp(fid=spec.fid, rb=rb, wb=wb))
        return ops

    def run_arrays(
        self, run_index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run ``run_index`` materialized as ``(fids, rb, wb)`` arrays.

        The batched runner's input format: byte-for-byte the same access
        stream :meth:`run` replays op by op, generated with vectorized
        draws.  The scalar loop interleaves one ``uniform`` and one
        ``random`` per op -- each consuming exactly one double from the
        stream -- so one ``random(2 * burst)`` call per file yields the
        identical doubles, and ``uniform(lo, hi)`` is reproduced exactly
        as ``lo + (hi - lo) * d`` (numpy's own formula).
        """
        if run_index < 0:
            raise ConfigurationError(f"run_index must be >= 0, got {run_index}")
        rng = np.random.default_rng((self.seed, run_index))
        lo, hi = self.burst_range
        frac_lo, frac_hi = self.read_fraction_range
        span = frac_hi - frac_lo
        fid_parts: list[np.ndarray] = []
        rb_parts: list[np.ndarray] = []
        wb_parts: list[np.ndarray] = []
        for spec in self._files_for_run(run_index):
            burst = int(rng.integers(lo, hi + 1))
            doubles = rng.random(2 * burst)
            rb = (spec.size_bytes * (frac_lo + span * doubles[0::2])).astype(
                np.int64
            )
            np.maximum(rb, 1, out=rb)
            write_bytes = max(1, int(spec.size_bytes * self.write_fraction))
            wb = np.where(
                doubles[1::2] < self.write_probability, write_bytes, 0
            )
            fid_parts.append(np.full(burst, spec.fid, dtype=np.int64))
            rb_parts.append(rb)
            wb_parts.append(wb)
        return (
            np.concatenate(fid_parts),
            np.concatenate(rb_parts),
            np.concatenate(wb_parts),
        )

    def runs(self, count: int, *, start: int = 0):
        """Yield ``count`` runs starting at index ``start``."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        for i in range(start, start + count):
            yield self.run(i)

    def expected_ops_per_run(self) -> float:
        """Mean number of accesses in one run (for sizing experiments)."""
        lo, hi = self.burst_range
        return min(self.files_per_run, len(self.files)) * (lo + hi) / 2.0
