"""Competing-workload construction for Experiment 3 (Fig. 6).

"The blue line indicates a duplicate workload (not tuned by Geomancy)
accessing a different set of data. ... The common part of both workloads is
the fact that they access common mounts, but they do not use the same data."
"""

from __future__ import annotations

from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import DEFAULT_FILE_COUNT, FileSpec, belle2_file_population

#: fid offset keeping the duplicate workload's files distinct in a shared
#: cluster namespace
COMPETING_FID_OFFSET = 1000


def make_competing_workload(
    *,
    seed: int = 99,
    count: int = DEFAULT_FILE_COUNT,
    fid_offset: int = COMPETING_FID_OFFSET,
) -> tuple[list[FileSpec], Belle2Workload]:
    """A duplicate BELLE II workload over its own file population.

    Returns ``(files, workload)``; the files carry offset fids and a
    distinct path prefix so both workloads can coexist in one cluster.
    """
    base = belle2_file_population(
        count, seed=seed, path_prefix="belle2_dup/mc"
    )
    files = [
        FileSpec(
            fid=f.fid + fid_offset, path=f.path, size_bytes=f.size_bytes
        )
        for f in base
    ]
    return files, Belle2Workload(files, seed=seed)
