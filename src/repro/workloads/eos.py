"""Synthetic CERN EOS access-log generator (paper sections IV and V-D).

The real EOS logs describe each file interaction with 32 values; the paper
correlates each field against measured throughput (Fig. 4) to pick modeling
features.  We cannot redistribute CERN's logs, so this synthesizer plants
the *same correlation structure* mechanically:

* ``rb``/``wb``/``osize``/``csize`` positively correlated (more bytes moved
  per access at healthy throughput);
* ``rt``/``wt``/``nrc``/``nwc`` strongly negatively correlated (slow
  accesses spend their time in read/write calls);
* ``ots``/``cts`` mildly positive (throughput drifts up across the trace,
  standing in for the diurnal effects the paper observes);
* ``otms``/``ctms``/``fid``/``day``/seek counters ~ uncorrelated;
* ``secgrps``/``secrole``/``secapp`` categorical.

Every record satisfies the Tp identity exactly: regenerating throughput from
(rb, wb, ots, otms, cts, ctms) reproduces the planted target.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.replaydb.records import AccessRecord

#: categorical vocabularies for the security fields
_SEC_GROUPS = ("atlas", "cms", "alice", "lhcb", "ops")
_SEC_ROLES = ("production", "analysis", "admin")
_SEC_APPS = ("root", "xrdcp", "fuse", "gridftp")


class EOSTraceSynthesizer:
    """Generates EOS-style access records with planted Fig. 4 correlations."""

    def __init__(
        self,
        *,
        seed: int = 0,
        n_files: int = 500,
        n_filesystems: int = 40,
        base_throughput: float = 1.2e9,
        drift_per_access: float = 6.0e4,
    ) -> None:
        if n_files < 1 or n_filesystems < 1:
            raise ConfigurationError(
                f"need n_files >= 1 and n_filesystems >= 1, got "
                f"({n_files}, {n_filesystems})"
            )
        if base_throughput <= 0:
            raise ConfigurationError(
                f"base_throughput must be positive, got {base_throughput}"
            )
        self.seed = int(seed)
        self.n_files = int(n_files)
        self.n_filesystems = int(n_filesystems)
        self.base_throughput = float(base_throughput)
        self.drift_per_access = float(drift_per_access)

    def records(self, n: int) -> list[AccessRecord]:
        """Generate ``n`` access records in chronological order."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        rng = np.random.default_rng(self.seed)
        records: list[AccessRecord] = []
        t = 1_500_000_000.0  # arbitrary epoch offset, EOS-style timestamps
        for i in range(n):
            # Latent per-access throughput: lognormal around a drifting base.
            tp = (self.base_throughput + self.drift_per_access * i) * rng.lognormal(
                0.0, 0.45
            )
            # Total bytes moved this access; read-dominated.  Coupled to the
            # latent throughput (big transfers run when the system is
            # healthy), which plants Fig. 4's positive rb/wb correlation.
            scale = tp / self.base_throughput
            nbytes = int(np.exp(rng.uniform(np.log(1e8), np.log(2e9))) * scale)
            nbytes = max(nbytes, 1000)
            read_share = rng.uniform(0.7, 1.0)
            rb = int(nbytes * read_share)
            wb = nbytes - rb
            duration = max(nbytes / tp, 0.002)
            ots = int(t)
            otms = int((t - ots) * 1000)
            close = t + duration
            cts = int(close)
            ctms = int((close - cts) * 1000)
            if cts == ots and ctms <= otms:
                ctms = min(otms + 1, 999)
            # rt/wt model per-call service time for a reference-sized
            # request: when the storage is slow they balloon, planting the
            # strongly negative Fig. 4 bars.  (They are not constrained to
            # sum below `duration`; the synthetic trace only guarantees the
            # Tp identity over rb/wb and the timestamps.)
            ref_bytes = 5e8
            rt = ref_bytes / tp * rng.uniform(0.8, 1.2) * read_share
            wt = ref_bytes / tp * rng.uniform(0.1, 0.3) * (1.0 - read_share)
            nrc = max(1, int(rt * rng.uniform(100, 300) + rng.uniform(0, 5)))
            nwc = max(0, int(wt * rng.uniform(50, 150)))
            fid = int(rng.integers(0, self.n_files))
            fsid = int(rng.integers(0, self.n_filesystems))
            osize = int(nbytes * rng.uniform(1.0, 3.0))
            csize = osize + wb
            records.append(
                AccessRecord(
                    fid=fid,
                    fsid=fsid,
                    device=f"fst{fsid:03d}",
                    path=f"eos/lhc/data{fid % 20}/f{fid:05d}.root",
                    rb=rb,
                    wb=wb,
                    ots=ots,
                    otms=otms,
                    cts=cts,
                    ctms=ctms,
                    extra={
                        "rt": rt,
                        "wt": wt,
                        "nrc": float(nrc),
                        "nwc": float(nwc),
                        "osize": float(osize),
                        "csize": float(csize),
                        "sfwdb": float(rng.integers(0, nbytes + 1)),
                        "sbwdb": float(rng.integers(0, nbytes // 4 + 1)),
                        "nfwds": float(rng.integers(0, 100)),
                        "nbwds": float(rng.integers(0, 30)),
                        "day": float(int(t / 86_400) % 7),
                        "secgrps": float(rng.integers(0, len(_SEC_GROUPS))),
                        "secrole": float(rng.integers(0, len(_SEC_ROLES))),
                        "secapp": float(rng.integers(0, len(_SEC_APPS))),
                    },
                )
            )
            # Inter-arrival gap; accesses overlap in reality but the trace
            # is ordered by open time.
            t += rng.exponential(0.8)
        return records

    def table(self, n: int) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Feature table + measured throughput target for Fig. 4.

        Returns ``(columns, throughput)`` where ``columns`` maps every raw
        field name to a numeric column.
        """
        records = self.records(n)
        throughput = np.array([r.throughput for r in records])
        columns: dict[str, np.ndarray] = {
            "rb": np.array([r.rb for r in records], dtype=np.float64),
            "wb": np.array([r.wb for r in records], dtype=np.float64),
            "ots": np.array([r.ots for r in records], dtype=np.float64),
            "otms": np.array([r.otms for r in records], dtype=np.float64),
            "cts": np.array([r.cts for r in records], dtype=np.float64),
            "ctms": np.array([r.ctms for r in records], dtype=np.float64),
            "fid": np.array([r.fid for r in records], dtype=np.float64),
            "fsid": np.array([r.fsid for r in records], dtype=np.float64),
        }
        for key in records[0].extra:
            columns[key] = np.array(
                [r.extra[key] for r in records], dtype=np.float64
            )
        return columns, throughput
