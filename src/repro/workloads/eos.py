"""Synthetic CERN EOS access-log generator (paper sections IV and V-D).

The real EOS logs describe each file interaction with 32 values; the paper
correlates each field against measured throughput (Fig. 4) to pick modeling
features.  We cannot redistribute CERN's logs, so this synthesizer plants
the *same correlation structure* mechanically:

* ``rb``/``wb``/``osize``/``csize`` positively correlated (more bytes moved
  per access at healthy throughput);
* ``rt``/``wt``/``nrc``/``nwc`` strongly negatively correlated (slow
  accesses spend their time in read/write calls);
* ``ots``/``cts`` mildly positive (throughput drifts up across the trace,
  standing in for the diurnal effects the paper observes);
* ``otms``/``ctms``/``fid``/``day``/seek counters ~ uncorrelated;
* ``secgrps``/``secrole``/``secapp`` categorical.

Every record satisfies the Tp identity exactly: regenerating throughput from
(rb, wb, ots, otms, cts, ctms) reproduces the planted target.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.features.throughput import access_throughput
from repro.replaydb.records import AccessRecord

#: categorical vocabularies for the security fields
_SEC_GROUPS = ("atlas", "cms", "alice", "lhcb", "ops")
_SEC_ROLES = ("production", "analysis", "admin")
_SEC_APPS = ("root", "xrdcp", "fuse", "gridftp")


class EOSTraceSynthesizer:
    """Generates EOS-style access records with planted Fig. 4 correlations."""

    def __init__(
        self,
        *,
        seed: int = 0,
        n_files: int = 500,
        n_filesystems: int = 40,
        base_throughput: float = 1.2e9,
        drift_per_access: float = 6.0e4,
    ) -> None:
        if n_files < 1 or n_filesystems < 1:
            raise ConfigurationError(
                f"need n_files >= 1 and n_filesystems >= 1, got "
                f"({n_files}, {n_filesystems})"
            )
        if base_throughput <= 0:
            raise ConfigurationError(
                f"base_throughput must be positive, got {base_throughput}"
            )
        self.seed = int(seed)
        self.n_files = int(n_files)
        self.n_filesystems = int(n_filesystems)
        self.base_throughput = float(base_throughput)
        self.drift_per_access = float(drift_per_access)

    #: order of the ``extra`` telemetry fields on every record
    _EXTRA_KEYS = (
        "rt", "wt", "nrc", "nwc", "osize", "csize", "sfwdb", "sbwdb",
        "nfwds", "nbwds", "day", "secgrps", "secrole", "secapp",
    )

    def _columns(self, n: int) -> dict[str, np.ndarray]:
        """Draw the whole trace as columns (one vectorized pass).

        All randomness is drawn column by column in a fixed documented
        order, so a trace is still a pure function of ``(seed, n)``.
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        rng = np.random.default_rng(self.seed)
        # Latent per-access throughput: lognormal around a drifting base.
        tp = (
            self.base_throughput + self.drift_per_access * np.arange(n)
        ) * rng.lognormal(0.0, 0.45, n)
        # Total bytes moved this access; read-dominated.  Coupled to the
        # latent throughput (big transfers run when the system is
        # healthy), which plants Fig. 4's positive rb/wb correlation.
        scale = tp / self.base_throughput
        nbytes = (
            np.exp(rng.uniform(np.log(1e8), np.log(2e9), n)) * scale
        ).astype(np.int64)
        nbytes = np.maximum(nbytes, 1000)
        read_share = rng.uniform(0.7, 1.0, n)
        rb = (nbytes * read_share).astype(np.int64)
        wb = nbytes - rb
        # rt/wt model per-call service time for a reference-sized
        # request: when the storage is slow they balloon, planting the
        # strongly negative Fig. 4 bars.  (They are not constrained to
        # sum below the duration; the synthetic trace only guarantees the
        # Tp identity over rb/wb and the timestamps.)
        ref_bytes = 5e8
        rt = ref_bytes / tp * rng.uniform(0.8, 1.2, n) * read_share
        wt = ref_bytes / tp * rng.uniform(0.1, 0.3, n) * (1.0 - read_share)
        nrc = np.maximum(
            1, (rt * rng.uniform(100, 300, n) + rng.uniform(0, 5, n)).astype(np.int64)
        )
        nwc = np.maximum(0, (wt * rng.uniform(50, 150, n)).astype(np.int64))
        fid = rng.integers(0, self.n_files, n)
        fsid = rng.integers(0, self.n_filesystems, n)
        osize = (nbytes * rng.uniform(1.0, 3.0, n)).astype(np.int64)
        csize = osize + wb
        sfwdb = rng.integers(0, nbytes + 1)
        sbwdb = rng.integers(0, nbytes // 4 + 1)
        nfwds = rng.integers(0, 100, n)
        nbwds = rng.integers(0, 30, n)
        secgrps = rng.integers(0, len(_SEC_GROUPS), n)
        secrole = rng.integers(0, len(_SEC_ROLES), n)
        secapp = rng.integers(0, len(_SEC_APPS), n)
        # Open times: arbitrary epoch offset (EOS-style timestamps) plus
        # cumulative inter-arrival gaps; accesses overlap in reality but
        # the trace is ordered by open time.
        gaps = rng.exponential(0.8, n)
        t = 1_500_000_000.0 + np.concatenate(([0.0], np.cumsum(gaps[:-1])))
        duration = np.maximum(nbytes / tp, 0.002)
        ots = t.astype(np.int64)
        otms = ((t - ots) * 1000).astype(np.int64)
        close = t + duration
        cts = close.astype(np.int64)
        ctms = ((close - cts) * 1000).astype(np.int64)
        # Guarantee close lands strictly after open despite ms truncation.
        degenerate = (cts == ots) & (ctms <= otms)
        ctms = np.where(degenerate, np.minimum(otms + 1, 999), ctms)
        return {
            "fid": fid, "fsid": fsid, "rb": rb, "wb": wb,
            "ots": ots, "otms": otms, "cts": cts, "ctms": ctms,
            "rt": rt, "wt": wt, "nrc": nrc, "nwc": nwc,
            "osize": osize, "csize": csize,
            "sfwdb": sfwdb, "sbwdb": sbwdb, "nfwds": nfwds, "nbwds": nbwds,
            "day": (t / 86_400).astype(np.int64) % 7,
            "secgrps": secgrps, "secrole": secrole, "secapp": secapp,
        }

    def records(self, n: int) -> list[AccessRecord]:
        """Generate ``n`` access records in chronological order."""
        cols = self._columns(n)
        lists = {key: col.tolist() for key, col in cols.items()}
        extra_lists = [lists[key] for key in self._EXTRA_KEYS]
        records: list[AccessRecord] = []
        for i in range(n):
            fid = lists["fid"][i]
            fsid = lists["fsid"][i]
            records.append(
                AccessRecord(
                    fid=fid,
                    fsid=fsid,
                    device=f"fst{fsid:03d}",
                    path=f"eos/lhc/data{fid % 20}/f{fid:05d}.root",
                    rb=lists["rb"][i],
                    wb=lists["wb"][i],
                    ots=lists["ots"][i],
                    otms=lists["otms"][i],
                    cts=lists["cts"][i],
                    ctms=lists["ctms"][i],
                    extra={
                        key: float(col[i])
                        for key, col in zip(self._EXTRA_KEYS, extra_lists)
                    },
                )
            )
        return records

    def table(self, n: int) -> tuple[dict[str, np.ndarray], np.ndarray]:
        """Feature table + measured throughput target for Fig. 4.

        Returns ``(columns, throughput)`` where ``columns`` maps every raw
        field name to a numeric column.  Built straight from the column
        pass -- no per-record objects -- but numerically identical to
        assembling it from :meth:`records`.
        """
        cols = self._columns(n)
        throughput = np.asarray(
            access_throughput(
                cols["rb"], cols["wb"], cols["ots"], cols["otms"],
                cols["cts"], cols["ctms"],
            ),
            dtype=np.float64,
        )
        order = (
            "rb", "wb", "ots", "otms", "cts", "ctms", "fid", "fsid",
        ) + self._EXTRA_KEYS
        columns = {
            key: cols[key].astype(np.float64) for key in order
        }
        return columns, throughput
