"""Executes workload runs against the simulated cluster.

"At the beginning of each run, the workload requests the current locations
of the files from a configuration file that Geomancy configures after any
data movement" (section VI) -- here, the cluster's namespace *is* that
configuration, so accesses always hit the file's current device.

The runner owns a clock shared with any co-running workloads, advances it by
each access's duration, mirrors every access into a ReplayDB, and reports
per-run summaries the experiment harness aggregates into Fig. 5/6 series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DeviceOfflineError
from repro.observability import get_observability
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import AccessRecord
from repro.simulation.clock import SimulationClock
from repro.simulation.cluster import StorageCluster
from repro.workloads.belle2 import Belle2Workload


@dataclass
class RunResult:
    """Summary of one workload run."""

    run_index: int
    records: list[AccessRecord] = field(default_factory=list)

    @property
    def access_count(self) -> int:
        return len(self.records)

    @property
    def mean_throughput_gbps(self) -> float:
        if not self.records:
            raise ConfigurationError("run produced no accesses")
        return sum(r.throughput_gbps for r in self.records) / len(self.records)


class WorkloadRunner:
    """Drives a :class:`Belle2Workload` through a cluster."""

    def __init__(
        self,
        cluster: StorageCluster,
        workload: Belle2Workload,
        db: ReplayDB | None = None,
        *,
        clock: SimulationClock | None = None,
        think_time_s: float = 0.01,
        tolerate_offline: bool = False,
        offline_penalty_s: float = 0.05,
        batched: bool = True,
    ) -> None:
        if think_time_s < 0:
            raise ConfigurationError(
                f"think_time_s must be non-negative, got {think_time_s}"
            )
        if offline_penalty_s < 0:
            raise ConfigurationError(
                f"offline_penalty_s must be non-negative, got {offline_penalty_s}"
            )
        self.cluster = cluster
        self.workload = workload
        self.db = db if db is not None else ReplayDB()
        self.clock = clock if clock is not None else SimulationClock()
        self.think_time_s = float(think_time_s)
        #: with ``tolerate_offline`` an access to a file stranded on an
        #: offline device is counted as failed (and charged a timeout)
        #: instead of raising -- the behaviour chaos runs need
        self.tolerate_offline = bool(tolerate_offline)
        self.offline_penalty_s = float(offline_penalty_s)
        #: serve whole runs through the batched fast path
        #: (:meth:`StorageCluster.access_batch`); equivalent bit-for-bit
        #: to the scalar reference loop
        self.batched = bool(batched)
        self.next_run_index = 0
        self.total_accesses = 0
        self.failed_accesses = 0
        metrics = get_observability().metrics
        self._m_runs = metrics.counter(
            "repro_workloads_runs_total", "workload runs started"
        )
        self._m_accesses = metrics.counter(
            "repro_workloads_accesses_total", "workload accesses completed"
        )
        self._m_failed = metrics.counter(
            "repro_workloads_failed_accesses_total",
            "accesses that timed out against offline devices",
        )

    def ensure_files_placed(self, layout: dict[int, str]) -> None:
        """Register workload files that are not yet in the cluster.

        ``layout`` maps fid -> device name for initial placement.
        """
        existing = {info.fid for info in self.cluster.files}
        for spec in self.workload.files:
            if spec.fid in existing:
                continue
            try:
                device = layout[spec.fid]
            except KeyError:
                raise ConfigurationError(
                    f"initial layout missing file {spec.fid}"
                ) from None
            self.cluster.add_file(spec.fid, spec.path, spec.size_bytes, device)

    def run_stream(self):
        """Start the next run; yields each access record as it completes.

        Consuming the generator drives the shared clock forward access by
        access, so two runners over one clock can interleave at access
        granularity (Experiment 3 runs a competing workload this way).
        """
        index = self.next_run_index
        self.next_run_index += 1
        self._m_runs.inc()
        for op in self.workload.run(index):
            try:
                record = self.cluster.access(
                    op.fid, self.clock.now, rb=op.rb, wb=op.wb
                )
            except DeviceOfflineError:
                if not self.tolerate_offline:
                    raise
                # The device timed out under us; charge the wait and
                # carry on with the rest of the run.
                self.failed_accesses += 1
                self._m_failed.inc()
                self.clock.advance(self.offline_penalty_s + self.think_time_s)
                continue
            self.clock.advance(record.duration + self.think_time_s)
            self.db.insert_access(record)
            self.total_accesses += 1
            self._m_accesses.inc()
            yield record

    def run_once(self, *, advance_hook=None) -> RunResult:
        """Execute the next run of the workload; returns its summary.

        ``advance_hook``, when given, is called with the simulated time
        after each completed access -- the seam fault injectors use to
        fire scheduled events mid-run.
        """
        if self.batched:
            return self._run_once_batched(advance_hook)
        index = self.next_run_index
        result = RunResult(run_index=index)
        for record in self.run_stream():
            result.records.append(record)
            if advance_hook is not None:
                advance_hook(self.clock.now)
        return result

    def _run_once_batched(self, advance_hook) -> RunResult:
        """One run through the vectorized access pipeline.

        Materializes the run's ops as arrays, drives
        :meth:`StorageCluster.access_batch`, ships the whole run's
        telemetry to the ReplayDB in one ``insert_accesses`` batch, and
        advances the shared clock to the batch's end time.  Produces
        bit-for-bit the records, clock position, device state, and DB
        rows of the scalar loop.
        """
        index = self.next_run_index
        self.next_run_index += 1
        self._m_runs.inc()
        workload = self.workload
        if hasattr(workload, "run_arrays"):
            fids, rb, wb = workload.run_arrays(index)
        else:
            ops = workload.run(index)
            fids = [op.fid for op in ops]
            rb = [op.rb for op in ops]
            wb = [op.wb for op in ops]
        batch = self.cluster.access_batch(
            fids,
            self.clock.now,
            rb,
            wb,
            think_time_s=self.think_time_s,
            tolerate_offline=self.tolerate_offline,
            offline_penalty_s=self.offline_penalty_s,
            advance_hook=advance_hook,
        )
        records = batch.records
        if records:
            self.db.insert_accesses(records)
            self.total_accesses += len(records)
            self._m_accesses.inc(len(records))
        if batch.failed:
            self.failed_accesses += batch.failed
            self._m_failed.inc(batch.failed)
        self.clock.advance_to(batch.end_time)
        if batch.pending_error is not None:
            raise batch.pending_error
        return RunResult(run_index=index, records=records)

    def run_many(self, count: int) -> list[RunResult]:
        """Execute ``count`` consecutive runs.

        On the batched path, consecutive runs are fused into one
        :meth:`StorageCluster.access_batch` call when nothing can happen
        between them -- no fault hook and every device online -- which
        amortizes the per-run setup (pre-draws, RNG snapshots, one DB
        insert) across the whole span.  Bit-for-bit identical to looping
        :meth:`run_once`: the op sequence, clock advances, RNG draw
        order, DB rows, and per-run record boundaries are all unchanged.
        """
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if (
            not self.batched
            or count <= 1
            or not hasattr(self.workload, "run_arrays")
            or any(
                not self.cluster.device(name).online
                for name in self.cluster.device_names
            )
        ):
            return [self.run_once() for _ in range(count)]
        start = self.next_run_index
        self.next_run_index += count
        self._m_runs.inc(count)
        counts: list[int] = []
        fid_parts, rb_parts, wb_parts = [], [], []
        for index in range(start, start + count):
            fids, rb, wb = self.workload.run_arrays(index)
            counts.append(len(fids))
            fid_parts.append(fids)
            rb_parts.append(rb)
            wb_parts.append(wb)
        batch = self.cluster.access_batch(
            np.concatenate(fid_parts),
            self.clock.now,
            np.concatenate(rb_parts),
            np.concatenate(wb_parts),
            think_time_s=self.think_time_s,
            tolerate_offline=self.tolerate_offline,
            offline_penalty_s=self.offline_penalty_s,
        )
        # Every device was online and nothing could flip one mid-batch
        # (no advance hook), so every op was served.
        records = batch.records
        if records:
            self.db.insert_accesses(records)
            self.total_accesses += len(records)
            self._m_accesses.inc(len(records))
        self.clock.advance_to(batch.end_time)
        if batch.pending_error is not None:  # pragma: no cover - see above
            raise batch.pending_error
        results = []
        pos = 0
        for offset, run_count in enumerate(counts):
            results.append(
                RunResult(
                    run_index=start + offset,
                    records=records[pos:pos + run_count],
                )
            )
            pos += run_count
        return results

    def warm_up(self, min_accesses: int) -> int:
        """Run the workload until the ReplayDB holds ``min_accesses`` rows.

        The paper primes every experiment this way: "BELLE 2 is run until
        Geomancy's monitoring agents can capture 10000 accesses" (VI).
        Returns the number of runs executed.
        """
        if min_accesses < 1:
            raise ConfigurationError(
                f"min_accesses must be >= 1, got {min_accesses}"
            )
        runs = 0
        while self.db.access_count() < min_accesses:
            self.run_once()
            runs += 1
        return runs
