"""Workload generators and the runner that drives them through the cluster.

* :mod:`repro.workloads.files` -- the BELLE II file population (24 ROOT
  files, 583 KB to 1.1 GB).
* :mod:`repro.workloads.belle2` -- the read-heavy Monte-Carlo workload
  ("each file is accessed 10-20 times in succession", section IV).
* :mod:`repro.workloads.eos` -- a CERN EOS access-log synthesizer with the
  Fig. 4 correlation structure planted.
* :mod:`repro.workloads.runner` -- executes access operations against a
  :class:`~repro.simulation.cluster.StorageCluster`, recording telemetry
  into a :class:`~repro.replaydb.db.ReplayDB`.
"""

from repro.workloads.belle2 import AccessOp, Belle2Workload
from repro.workloads.eos import EOSTraceSynthesizer
from repro.workloads.files import FileSpec, belle2_file_population
from repro.workloads.runner import WorkloadRunner

__all__ = [
    "AccessOp",
    "Belle2Workload",
    "EOSTraceSynthesizer",
    "FileSpec",
    "belle2_file_population",
    "WorkloadRunner",
]
