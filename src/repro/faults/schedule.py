"""Deterministic fault schedules for the simulated cluster.

A :class:`FaultSchedule` is a list of :class:`FaultEvent` entries -- device
outages (transient or permanent) and bandwidth degradations pinned to
simulated times.  Schedules can be written programmatically or parsed from
compact spec strings, the form the ``repro chaos`` CLI accepts::

    kill:file0@120          take file0 offline at t=120 s, permanently
    outage:pic@60+30        take pic offline at t=60 s for 30 s
    degrade:tmp@45*0.25     quarter tmp's bandwidth from t=45 s on
    degrade:var@45*0.5+60   halve var's bandwidth for 60 s

Times may also be written as percentages (``kill:file0@40%``), resolved
against a baseline run's duration with :meth:`FaultSchedule.resolved` --
handy because a chaos experiment rarely knows its simulated length upfront.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError

#: primitive actions a schedule expands into, applied by the injector
OFFLINE = "offline"
ONLINE = "online"
DEGRADE = "degrade"
RESTORE = "restore"

_SPEC_RE = re.compile(
    r"^(?P<kind>kill|outage|degrade):(?P<device>[^@]+)@(?P<at>[0-9.]+%?)"
    r"(?:\*(?P<factor>[0-9.]+))?(?:\+(?P<duration>[0-9.]+))?$"
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``kind`` is ``"outage"`` (device offline) or ``"degrade"`` (bandwidth
    multiplied by ``factor``); ``duration`` of ``None`` makes the fault
    permanent; ``at_is_fraction`` marks ``at`` as a share of a baseline
    run's duration, to be resolved before injection.
    """

    at: float
    kind: str
    device: str
    duration: float | None = None
    factor: float = 1.0
    at_is_fraction: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("outage", "degrade"):
            raise ConfigurationError(
                f"fault kind must be 'outage' or 'degrade', got {self.kind!r}"
            )
        if self.at < 0:
            raise ConfigurationError(
                f"fault time must be non-negative, got {self.at}"
            )
        if self.at_is_fraction and self.at > 1.0:
            raise ConfigurationError(
                f"fractional fault time must be <= 1, got {self.at}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError(
                f"fault duration must be positive, got {self.duration}"
            )
        if self.kind == "degrade" and not 0.0 < self.factor < 1.0:
            raise ConfigurationError(
                f"degrade factor must be in (0, 1), got {self.factor}"
            )
        if not self.device:
            raise ConfigurationError("fault event needs a device name")


def parse_fault_event(spec: str) -> FaultEvent:
    """Parse one spec string (see module docstring for the grammar)."""
    match = _SPEC_RE.match(spec.strip())
    if match is None:
        raise ConfigurationError(
            f"unparseable fault spec {spec!r}; expected e.g. 'kill:file0@120', "
            f"'outage:pic@60+30', 'degrade:tmp@45*0.25'"
        )
    kind = match.group("kind")
    at_text = match.group("at")
    at_is_fraction = at_text.endswith("%")
    at = float(at_text.rstrip("%")) / (100.0 if at_is_fraction else 1.0)
    duration = match.group("duration")
    factor = match.group("factor")
    if kind == "degrade":
        if factor is None:
            raise ConfigurationError(
                f"degrade spec {spec!r} needs a '*factor' clause"
            )
        return FaultEvent(
            at=at, kind="degrade", device=match.group("device"),
            factor=float(factor),
            duration=float(duration) if duration else None,
            at_is_fraction=at_is_fraction,
        )
    if factor is not None:
        raise ConfigurationError(
            f"'*factor' only applies to degrade specs, got {spec!r}"
        )
    if kind == "kill" and duration is not None:
        raise ConfigurationError(
            f"kill is permanent; use 'outage:...+duration' instead of {spec!r}"
        )
    return FaultEvent(
        at=at, kind="outage", device=match.group("device"),
        duration=float(duration) if duration else None,
        at_is_fraction=at_is_fraction,
    )


class FaultSchedule:
    """An ordered collection of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self.events: list[FaultEvent] = sorted(events, key=lambda e: e.at)

    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultSchedule":
        return cls(parse_fault_event(spec) for spec in specs)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def has_fractional_times(self) -> bool:
        return any(e.at_is_fraction for e in self.events)

    def resolved(self, baseline_duration: float) -> "FaultSchedule":
        """Turn fractional times into simulated seconds."""
        if baseline_duration <= 0:
            raise ConfigurationError(
                f"baseline duration must be positive, got {baseline_duration}"
            )
        events = []
        for event in self.events:
            if event.at_is_fraction:
                event = replace(
                    event, at=event.at * baseline_duration,
                    at_is_fraction=False,
                )
            events.append(event)
        return FaultSchedule(events)

    def devices(self) -> set[str]:
        return {event.device for event in self.events}

    def primitives(self) -> list[tuple[float, str, str, float]]:
        """Expand events into timed primitive actions for the injector.

        Returns ``(time, action, device, factor)`` tuples sorted by time;
        transient faults contribute both their begin action and the
        matching recovery (``online``/``restore``) action.
        """
        if self.has_fractional_times:
            raise ConfigurationError(
                "schedule has unresolved fractional times; call .resolved() "
                "with the baseline duration first"
            )
        actions: list[tuple[float, str, str, float]] = []
        for event in self.events:
            if event.kind == "outage":
                actions.append((event.at, OFFLINE, event.device, 0.0))
                if event.duration is not None:
                    actions.append(
                        (event.at + event.duration, ONLINE, event.device, 0.0)
                    )
            else:
                actions.append(
                    (event.at, DEGRADE, event.device, event.factor)
                )
                if event.duration is not None:
                    actions.append(
                        (event.at + event.duration, RESTORE, event.device, 0.0)
                    )
        actions.sort(key=lambda a: (a[0], a[2], a[1]))
        return actions
