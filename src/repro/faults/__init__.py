"""Deterministic fault injection for the simulated cluster.

The paper motivates the Action Checker with "permissions or availability
changes in the system" (section V-H); this package supplies the changes.
A :class:`FaultSchedule` scripts device outages and degradations at
simulated times, a :class:`FaultInjector` applies them (and makes
migrations abort mid-transfer with a seeded probability), a
:class:`ChaosTransport` loses/delays/reorders/corrupts telemetry batches,
and a :class:`HealthTracker` gives the control plane a circuit breaker
over repeatedly failing placement targets.  Everything draws from seeded
generators so chaos runs are exactly reproducible.
"""

from repro.faults.chaos_transport import ChaosTransport, CorruptMessage
from repro.faults.health import HealthTracker
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    assert_cluster_invariants,
    cluster_invariant_violations,
)
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    parse_fault_event,
)

__all__ = [
    "ChaosTransport",
    "CorruptMessage",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "HealthTracker",
    "assert_cluster_invariants",
    "cluster_invariant_violations",
    "parse_fault_event",
]
