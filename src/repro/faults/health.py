"""Device health tracking: a circuit breaker for placement targets.

When moves toward a device keep failing -- it went offline between
proposal and execution, migrations abort mid-transfer, capacity checks
bounce -- the engine should stop proposing it rather than burn a retry
budget every cycle.  The tracker counts consecutive per-device failures
and *quarantines* a device once they cross a threshold; quarantine expires
after a configurable period, after which the device gets one probe move
(half-open circuit): a success closes the circuit, another failure
re-opens it immediately.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.observability import get_observability


class HealthTracker:
    """Per-device failure counting with threshold quarantine."""

    def __init__(
        self,
        *,
        quarantine_threshold: int = 3,
        quarantine_duration_s: float = 600.0,
    ) -> None:
        if quarantine_threshold < 1:
            raise ConfigurationError(
                f"quarantine_threshold must be >= 1, got {quarantine_threshold}"
            )
        if quarantine_duration_s <= 0:
            raise ConfigurationError(
                f"quarantine_duration_s must be positive, "
                f"got {quarantine_duration_s}"
            )
        self.quarantine_threshold = int(quarantine_threshold)
        self.quarantine_duration_s = float(quarantine_duration_s)
        self._consecutive: dict[str, int] = {}
        self._quarantined_until: dict[str, float] = {}
        self.successes = 0
        self.failures = 0
        self.quarantines_opened = 0
        self.obs = get_observability()
        self._m_quarantines = self.obs.metrics.counter(
            "repro_faults_quarantines_opened_total",
            "circuit-breaker quarantines opened against devices",
        )

    def record_success(self, device: str, t: float = 0.0) -> None:
        """A move toward ``device`` completed; close its circuit."""
        self.successes += 1
        was_open = device in self._quarantined_until
        self._consecutive[device] = 0
        self._quarantined_until.pop(device, None)
        if was_open and self.obs.enabled:
            self.obs.emit("circuit-closed", t=t, step=0, device=device)

    def record_failure(self, device: str, t: float) -> None:
        """A move toward ``device`` failed at time ``t``."""
        self.failures += 1
        count = self._consecutive.get(device, 0) + 1
        self._consecutive[device] = count
        if count >= self.quarantine_threshold:
            if device not in self._quarantined_until:
                self.quarantines_opened += 1
                self._m_quarantines.inc()
                if self.obs.enabled:
                    self.obs.emit(
                        "circuit-open",
                        t=t,
                        step=0,
                        device=device,
                        consecutive_failures=count,
                    )
            self._quarantined_until[device] = t + self.quarantine_duration_s

    def is_quarantined(self, device: str, t: float) -> bool:
        """Whether ``device`` should receive no placements at time ``t``.

        An expired quarantine flips to *half-open*: the device is
        reported healthy so it can receive one probe move, but its
        failure count sits one below the threshold so a single new
        failure re-quarantines it.
        """
        until = self._quarantined_until.get(device)
        if until is None:
            return False
        if t >= until:
            del self._quarantined_until[device]
            self._consecutive[device] = self.quarantine_threshold - 1
            if self.obs.enabled:
                self.obs.emit("circuit-half-open", t=t, step=0, device=device)
            return False
        return True

    def healthy(self, devices: list[str], t: float) -> list[str]:
        """Filter ``devices`` down to the non-quarantined ones."""
        return [d for d in devices if not self.is_quarantined(d, t)]

    def quarantined_devices(self, t: float) -> list[str]:
        return sorted(
            d for d in list(self._quarantined_until)
            if self.is_quarantined(d, t)
        )

    def consecutive_failures(self, device: str) -> int:
        return self._consecutive.get(device, 0)

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable circuit-breaker state."""
        return {
            "consecutive": dict(self._consecutive),
            "quarantined_until": dict(self._quarantined_until),
            "successes": self.successes,
            "failures": self.failures,
            "quarantines_opened": self.quarantines_opened,
        }

    def load_state_dict(self, state: dict) -> None:
        self._consecutive = {
            str(k): int(v) for k, v in state["consecutive"].items()
        }
        self._quarantined_until = {
            str(k): float(v) for k, v in state["quarantined_until"].items()
        }
        self.successes = int(state["successes"])
        self.failures = int(state["failures"])
        self.quarantines_opened = int(state["quarantines_opened"])
