"""The fault injector: applies a schedule to a live cluster.

The injector is clock-driven like everything else in the simulation:
callers pump :meth:`FaultInjector.advance` with the current simulated time
and every scheduled action whose time has come is applied to the cluster.
Independently, an injector installed as the cluster's migration
interceptor makes migrations abort mid-transfer with a configured
probability -- drawn from its own seeded generator, so a fixed seed yields
an identical fault sequence run after run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.schedule import (
    DEGRADE,
    OFFLINE,
    ONLINE,
    RESTORE,
    FaultSchedule,
)
from repro.observability import get_observability
from repro.simulation.cluster import StorageCluster

#: bus event kind per scheduled fault primitive
_EVENT_KINDS = {
    OFFLINE: "fault-outage",
    ONLINE: "fault-online",
    DEGRADE: "fault-degrade",
    RESTORE: "fault-restore",
}


class FaultInjector:
    """Applies scheduled faults and probabilistic migration failures."""

    def __init__(
        self,
        cluster: StorageCluster,
        schedule: FaultSchedule | None = None,
        *,
        migration_failure_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= migration_failure_rate <= 1.0:
            raise ConfigurationError(
                f"migration_failure_rate must be in [0, 1], "
                f"got {migration_failure_rate}"
            )
        self.cluster = cluster
        self.schedule = schedule if schedule is not None else FaultSchedule()
        known = set(cluster.device_names)
        unknown = self.schedule.devices() - known
        if unknown:
            raise ConfigurationError(
                f"fault schedule names unknown devices {sorted(unknown)}; "
                f"cluster has {sorted(known)}"
            )
        self.migration_failure_rate = float(migration_failure_rate)
        self._rng = np.random.default_rng(seed)
        self._actions = self.schedule.primitives()
        self._cursor = 0
        self.outages_applied = 0
        self.recoveries_applied = 0
        self.degradations_applied = 0
        self.migration_attempts = 0
        self.migration_faults_injected = 0
        #: (time, device) for every offline action, for recovery reporting
        self.outage_log: list[tuple[float, str]] = []
        self.obs = get_observability()
        metrics = self.obs.metrics
        self._m_faults = metrics.counter(
            "repro_faults_injected_total", "scheduled fault actions applied"
        )
        self._m_migration_faults = metrics.counter(
            "repro_faults_migration_aborts_total",
            "migration failures injected mid-transfer",
        )

    # -- wiring ----------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Hook migration-failure injection into the cluster."""
        self.cluster.migration_interceptor = self.intercept_migration
        return self

    def uninstall(self) -> None:
        # Bound-method equality (not identity): each attribute access
        # creates a fresh bound method object.
        if self.cluster.migration_interceptor == self.intercept_migration:
            self.cluster.migration_interceptor = None

    # -- scheduled faults ------------------------------------------------
    @property
    def pending_actions(self) -> int:
        return len(self._actions) - self._cursor

    def advance(self, t: float) -> int:
        """Apply every scheduled action due at or before ``t``.

        Returns the number of actions applied.  Idempotent per action:
        each fires exactly once no matter how often ``advance`` is called.
        """
        applied = 0
        while self._cursor < len(self._actions):
            at, action, device, factor = self._actions[self._cursor]
            if at > t:
                break
            self._cursor += 1
            applied += 1
            if action == OFFLINE:
                self.cluster.set_device_online(device, False)
                self.outages_applied += 1
                self.outage_log.append((at, device))
            elif action == ONLINE:
                self.cluster.set_device_online(device, True)
                self.recoveries_applied += 1
            elif action == DEGRADE:
                self.cluster.device(device).degradation = factor
                self.degradations_applied += 1
            elif action == RESTORE:
                self.cluster.device(device).degradation = 1.0
                self.recoveries_applied += 1
            self._m_faults.inc()
            if self.obs.enabled:
                self.obs.emit(
                    _EVENT_KINDS[action],
                    t=at,
                    step=self._cursor - 1,
                    device=device,
                    factor=factor,
                )
        return applied

    # -- persistence -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable progress through the schedule.

        The schedule itself is not serialized -- the owner reconstructs
        the injector from the same (resolved) schedule and seed, then
        restores the cursor so already-applied actions never re-fire.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "cursor": self._cursor,
            "outages_applied": self.outages_applied,
            "recoveries_applied": self.recoveries_applied,
            "degradations_applied": self.degradations_applied,
            "migration_attempts": self.migration_attempts,
            "migration_faults_injected": self.migration_faults_injected,
            "outage_log": [[t, device] for t, device in self.outage_log],
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self._cursor = int(state["cursor"])
        if self._cursor > len(self._actions):
            raise ConfigurationError(
                f"injector cursor {self._cursor} exceeds the "
                f"{len(self._actions)} scheduled actions"
            )
        self.outages_applied = int(state["outages_applied"])
        self.recoveries_applied = int(state["recoveries_applied"])
        self.degradations_applied = int(state["degradations_applied"])
        self.migration_attempts = int(state["migration_attempts"])
        self.migration_faults_injected = int(state["migration_faults_injected"])
        self.outage_log = [
            (float(t), str(device)) for t, device in state["outage_log"]
        ]

    # -- migration failures ----------------------------------------------
    def intercept_migration(
        self, fid: int, src: str, dst: str, t: float, size_bytes: int
    ) -> float | None:
        """Decide whether this migration fails mid-transfer.

        Returns the fraction of bytes transferred before the abort, or
        ``None`` to let the move complete.  One RNG draw happens per
        attempt regardless of outcome, so the fault sequence depends only
        on the seed and the order of migration attempts.
        """
        self.migration_attempts += 1
        roll = self._rng.random()
        if self.migration_failure_rate and roll < self.migration_failure_rate:
            self.migration_faults_injected += 1
            self._m_migration_faults.inc()
            # Fail somewhere in the middle of the transfer: the wasted
            # traffic is real, but the file never reaches the target.
            return float(0.05 + 0.90 * self._rng.random())
        return None
