"""A lossy, reordering, corrupting transport for chaos runs.

Drop-in replacement for :class:`~repro.agents.transport.InMemoryTransport`
that makes the telemetry path unreliable the way a real network is: batches
can be dropped outright, delayed past the next drain, delivered out of
order, or corrupted into garbage the Interface Daemon must survive.  All
randomness comes from one seeded generator keyed to the send/drain
sequence, so a fixed seed reproduces the exact same loss pattern.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.agents.transport import InMemoryTransport
from repro.errors import TransportError


@dataclass(frozen=True)
class CorruptMessage:
    """What a mangled message decodes to at the receiver."""

    reason: str = "corrupted in transit"


class ChaosTransport(InMemoryTransport):
    """FIFO channel with seeded drop/delay/reorder/corrupt faults."""

    def __init__(
        self,
        latency_s: float = 0.003,
        *,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        reorder_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        seed: int = 0,
        maxsize: int | None = None,
        policy: str = "drop-oldest",
    ) -> None:
        super().__init__(latency_s, maxsize=maxsize, policy=policy)
        for name, rate in (
            ("drop_rate", drop_rate),
            ("delay_rate", delay_rate),
            ("reorder_rate", reorder_rate),
            ("corrupt_rate", corrupt_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise TransportError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        self.drop_rate = float(drop_rate)
        self.delay_rate = float(delay_rate)
        self.reorder_rate = float(reorder_rate)
        self.corrupt_rate = float(corrupt_rate)
        self._rng = np.random.default_rng(seed)
        self._held: deque = deque()
        self.dropped = 0
        self.delayed = 0
        self.reordered_drains = 0
        self.corrupted = 0

    def send(self, message) -> bool:
        """Send, possibly losing/mangling the message on the way.

        Returns ``False`` only when a bounded queue refused the message
        (backpressure); chaos drops are silent network loss, so the
        sender still sees ``True`` for them.
        """
        # The network charged for the message whether or not it arrives.
        self.messages_sent += 1
        self.total_latency_s += self.latency_s
        if self._rng.random() < self.drop_rate:
            self.dropped += 1
            self._resolve_causal(message, "chaos-drop")
            return True
        if self._rng.random() < self.corrupt_rate:
            self.corrupted += 1
            # The original payload is gone; its causal chain ends here
            # (the garbage the daemon receives carries no trace id).
            self._resolve_causal(message, "chaos-corrupt")
            message = CorruptMessage()
        if self._rng.random() < self.delay_rate:
            # Held back past the next drain, then queued for the one after.
            self.delayed += 1
            if self.causal is not None:
                self.causal.note(
                    getattr(message, "trace_id", None), "chaos-delay"
                )
            self._held.append(message)
            return True
        # A bounded chaos queue sheds like the base transport: even a
        # lossy network must not let the receiver's backlog grow without
        # limit.
        return self._enqueue(message)

    def receive_all(self) -> list:
        """Drain pending messages, possibly out of order."""
        drained = super().receive_all()
        if len(drained) > 1 and self._rng.random() < self.reorder_rate:
            order = self._rng.permutation(len(drained))
            drained = [drained[i] for i in order]
            self.reordered_drains += 1
        while self._held:
            # Released messages re-enter through the bounding policy too.
            message = self._held.popleft()
            if not self._enqueue(message):
                # The bound refused the released message and there is no
                # sender left to backpressure: its chain ends as a shed.
                self._resolve_causal(message, "queue-shed")
        return drained

    @property
    def held(self) -> int:
        """Messages currently delayed in flight."""
        return len(self._held)
