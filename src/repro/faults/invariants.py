"""Cluster safety invariants checked during and after chaos runs.

Whatever faults are injected, the control plane must never lose or
duplicate a file, overfill a device, or leave the namespace referencing
devices that do not exist.  These checks are cheap enough to run every
control cycle; the chaos experiment and the property-style tests both
assert them after every injected fault sequence.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.simulation.cluster import StorageCluster
from repro.workloads.files import FileSpec


def cluster_invariant_violations(
    cluster: StorageCluster, files: list[FileSpec]
) -> list[str]:
    """Return human-readable descriptions of violated invariants."""
    violations: list[str] = []
    layout = cluster.layout()
    known_devices = set(cluster.device_names)

    # 1. No workload file lost, and none duplicated.  The namespace maps
    # fid -> one placement, so duplication would show up as a spurious
    # extra fid; loss as a missing one.
    expected = [spec.fid for spec in files]
    if len(set(expected)) != len(expected):
        violations.append("workload file set contains duplicate fids")
    for fid in expected:
        if fid not in layout:
            violations.append(f"file {fid} lost from the cluster namespace")

    # 2. Every placement names a real device.
    for fid, device in sorted(layout.items()):
        if device not in known_devices:
            violations.append(
                f"file {fid} placed on unknown device {device!r}"
            )

    # 3. Stored bytes never exceed any device's capacity.
    for name in cluster.device_names:
        stored = cluster.stored_bytes(name)
        capacity = cluster.device(name).spec.capacity_bytes
        if stored > capacity:
            violations.append(
                f"device {name!r} holds {stored} bytes, over its "
                f"capacity of {capacity}"
            )
    return violations


def assert_cluster_invariants(
    cluster: StorageCluster, files: list[FileSpec]
) -> None:
    """Raise :class:`SimulationError` if any invariant is violated."""
    violations = cluster_invariant_violations(cluster, files)
    if violations:
        raise SimulationError(
            "cluster invariants violated: " + "; ".join(violations)
        )
