"""Command-line interface: regenerate any paper table/figure.

::

    python -m repro fig4                 # Fig. 4 correlations
    python -m repro table1               # Table I architectures
    python -m repro table2 --scale test  # Table II (all 23 models)
    python -m repro table3
    python -m repro fig5a --scale bench --seed 2
    python -m repro fig5b
    python -m repro table4
    python -m repro fig6
    python -m repro chaos --seed 7 --schedule kill:file0@40% kill:pic@55%
    python -m repro saturate --multipliers 0.5 1 2 4 --capacity 64
    python -m repro deadletters dead.jsonl --requeue
    python -m repro synth-trace out.jsonl --rows 5000
    python -m repro bench --workers 4     # decision + harness benchmarks
    python -m repro scale --devices 256 512 --files 4096 --shards 1 8
    python -m repro robustness --workers 4 --seeds 0 1 2 3
    python -m repro recover ckpt/ --checkpoint-every 5 --guardrail
    python -m repro resume ckpt/          # restart a killed recover run
    python -m repro run --trace out.json --metrics-snapshot m.jsonl --profile
    python -m repro run --provenance prov.jsonl --slo
    python -m repro explain 3 --ledger prov.jsonl
    python -m repro slo --throughput-floor 2.0
    python -m repro metrics               # Prometheus dump of a run
    python -m repro trace out.json        # Chrome-trace of a run

``--log-level``/``--log-json`` (before the subcommand) turn on module
logging for every ``repro.*`` logger.

``--workers N`` (fig5a/fig5b/table2/robustness/bench) spreads the
experiment's (policy x seed / model) grid over N processes; results are
bit-for-bit identical to ``--workers 1``, the serial fallback.

``--scale`` picks the experiment sizing: ``test`` (seconds), ``bench``
(the defaults the benchmark harness uses, minutes), or ``paper`` (the
publication's full parameters).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.spec import (
    BENCH_SCALE,
    PAPER_SCALE,
    TEST_SCALE,
    ExperimentScale,
)

_SCALES: dict[str, ExperimentScale] = {
    "test": TEST_SCALE,
    "bench": BENCH_SCALE,
    "paper": PAPER_SCALE,
}


def _add_common(parser: argparse.ArgumentParser, *, default_seed: int) -> None:
    parser.add_argument(
        "--scale", choices=sorted(_SCALES), default="test",
        help="experiment sizing (default: test)",
    )
    parser.add_argument(
        "--seed", type=int, default=default_seed,
        help=f"environment seed (default: {default_seed})",
    )


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the final Prometheus metrics dump here",
    )
    parser.add_argument(
        "--metrics-snapshot", default=None, metavar="PATH",
        help="append a JSONL metrics snapshot here every N measured runs",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=1, metavar="N",
        help="measured runs between JSONL snapshots (default: 1)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the Chrome-trace JSON here (load in chrome://tracing)",
    )
    parser.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="fraction of ticks to trace, sampled deterministically by "
             "tick id (default: 1.0)",
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the experiment grid (default: 1, "
             "the deterministic serial fallback; results are identical "
             "for any worker count)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the Geomancy paper "
                    "(ISPASS 2020).",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default=None,
        help="enable module logging for repro.* at this level "
             "(default: logging stays unconfigured)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as one JSON object per line "
             "(implies --log-level warning unless set)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig4 = sub.add_parser("fig4", help="feature/throughput correlations")
    _add_common(fig4, default_seed=4)

    sub.add_parser("table1", help="the 23 model architectures")

    table2 = sub.add_parser("table2", help="23-model comparison")
    _add_common(table2, default_seed=0)
    _add_workers(table2)

    table3 = sub.add_parser("table3", help="model 1 per-mount accuracy")
    _add_common(table3, default_seed=0)

    fig5a = sub.add_parser("fig5a", help="dynamic-policy comparison")
    _add_common(fig5a, default_seed=2)
    _add_workers(fig5a)

    fig5b = sub.add_parser("fig5b", help="static-policy comparison")
    _add_common(fig5b, default_seed=2)
    _add_workers(fig5b)

    table4 = sub.add_parser("table4", help="single-mount overhead study")
    _add_common(table4, default_seed=2)

    fig6 = sub.add_parser("fig6", help="competing-workload adaptation")
    _add_common(fig6, default_seed=0)
    fig6.add_argument(
        "--online", action="store_true",
        help="adapt with the online continual-learning engine "
             "(incremental fits + prioritized replay + drift detection) "
             "instead of from-scratch retraining",
    )

    sub.add_parser("testbed", help="describe the simulated Bluesky testbed")

    robustness = sub.add_parser(
        "robustness", help="Fig. 5a across several environment seeds"
    )
    _add_common(robustness, default_seed=0)
    _add_workers(robustness)
    robustness.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2, 3],
        help="environment seeds to sweep",
    )

    bench = sub.add_parser(
        "bench",
        help="decision-epoch micro-benchmark + parallel harness timing",
    )
    _add_common(bench, default_seed=0)
    _add_workers(bench)
    bench.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1],
        help="seeds for the serial-vs-parallel sweep (default: 0 1)",
    )
    bench.add_argument(
        "--out", default="BENCH_decision.json",
        help="where to write the JSON timing record "
             "(default: BENCH_decision.json)",
    )
    bench.add_argument(
        "--no-harness", action="store_true",
        help="skip the serial-vs-parallel experiment sweep and only run "
             "the decision micro-benchmark",
    )

    scale_cmd = sub.add_parser(
        "scale",
        help="sharded multi-agent scale-out sweep "
             "(devices x files x shards grid)",
    )
    _add_workers(scale_cmd)
    scale_cmd.add_argument(
        "--seed", type=int, default=0,
        help="environment seed (default: 0)",
    )
    scale_cmd.add_argument(
        "--devices", type=int, nargs="+", default=[64],
        help="cluster sizes to sweep (default: 64)",
    )
    scale_cmd.add_argument(
        "--files", type=int, nargs="+", default=[1024],
        help="file-population sizes to sweep (default: 1024)",
    )
    scale_cmd.add_argument(
        "--shards", type=int, nargs="+", default=[1, 4],
        help="shard counts to sweep (default: 1 4)",
    )
    scale_cmd.add_argument(
        "--rounds", type=int, default=1,
        help="fusion rounds per point, with coordinator arbitration "
             "between consecutive rounds (default: 1)",
    )
    scale_cmd.add_argument(
        "--runs", type=int, default=10,
        help="measured workload runs per round (default: 10)",
    )
    scale_cmd.add_argument(
        "--benchmark", action="store_true",
        help="run the acceptance benchmark (identity check + 1-vs-8 "
             "speedup pair + big sweep point) instead of the grid",
    )
    scale_cmd.add_argument(
        "--out", default="benchmarks/out/BENCH_scale.json",
        help="where to write the JSON record "
             "(default: benchmarks/out/BENCH_scale.json)",
    )

    chaos = sub.add_parser(
        "chaos", help="fault-injection run vs. a fault-free twin"
    )
    _add_common(chaos, default_seed=7)
    chaos.add_argument(
        "--schedule", nargs="+", metavar="SPEC", default=None,
        help="fault specs, e.g. 'kill:file0@40%%' 'outage:pic@60+30' "
             "'degrade:tmp@45*0.25' (default: kill file0 and pic mid-run)",
    )
    chaos.add_argument(
        "--migration-failure-rate", type=float, default=0.05,
        help="probability each file move aborts mid-transfer (default: 0.05)",
    )
    chaos.add_argument(
        "--drop-rate", type=float, default=0.02,
        help="telemetry batch drop probability (default: 0.02)",
    )
    chaos.add_argument(
        "--delay-rate", type=float, default=0.02,
        help="telemetry batch delay probability (default: 0.02)",
    )
    chaos.add_argument(
        "--reorder-rate", type=float, default=0.05,
        help="telemetry drain reorder probability (default: 0.05)",
    )
    chaos.add_argument(
        "--corrupt-rate", type=float, default=0.01,
        help="telemetry batch corruption probability (default: 0.01)",
    )

    saturate = sub.add_parser(
        "saturate",
        help="overload study: bounded QoS plane vs unbounded twin "
             "through and past service capacity",
    )
    _add_common(saturate, default_seed=0)
    saturate.add_argument(
        "--multipliers", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0],
        help="offered load as multiples of service capacity "
             "(default: 0.5 1.0 2.0 4.0)",
    )
    saturate.add_argument(
        "--service-rate", type=float, default=4_000.0,
        help="daemon service capacity in records per simulated second "
             "(default: 4000)",
    )
    saturate.add_argument(
        "--capacity", type=int, default=64,
        help="bounded transport capacity in messages (default: 64)",
    )
    saturate.add_argument(
        "--policy", choices=("drop-oldest", "drop-newest", "reject"),
        default="drop-oldest",
        help="shed policy of the bounded plane (default: drop-oldest)",
    )
    saturate.add_argument(
        "--chaos", action="store_true",
        help="also drop 2%% and corrupt 1%% of batches in flight",
    )
    saturate.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the sweep as JSON here",
    )

    deadletters = sub.add_parser(
        "deadletters",
        help="inspect (and optionally requeue) a persisted dead-letter ring",
    )
    deadletters.add_argument(
        "store", help="JSONL path a DeadLetterStore persisted to"
    )
    deadletters.add_argument(
        "--requeue", action="store_true",
        help="replay every replayable letter through a fresh daemon into "
             "a ReplayDB, mark it requeued, and save the store back",
    )

    overhead = sub.add_parser(
        "overhead", help="section VIII training/prediction/transfer costs"
    )
    _add_common(overhead, default_seed=0)

    selection = sub.add_parser(
        "model-selection", help="section V-G model-selection procedure"
    )
    _add_common(selection, default_seed=0)

    recover = sub.add_parser(
        "recover",
        help="run the control loop under the durability stack "
             "(checkpoints + layout journal + optional guardrail)",
    )
    _add_common(recover, default_seed=0)
    recover.add_argument(
        "checkpoint_dir",
        help="directory for checkpoint generations and the layout journal",
    )
    recover.add_argument(
        "--checkpoint-every", type=int, default=5, metavar="N",
        help="checkpoint the full system state every N measured runs "
             "(default: 5; 0 disables checkpointing)",
    )
    recover.add_argument(
        "--keep", type=int, default=3,
        help="rotated checkpoint generations kept on disk (default: 3)",
    )
    recover.add_argument(
        "--guardrail", action="store_true",
        help="enable the safe-mode guardrail (rollback + fallback policy "
             "on NaN loss / loss explosion / throughput regression)",
    )
    recover.add_argument(
        "--fallback", choices=("static", "lru"), default="static",
        help="policy while the guardrail has the learner benched "
             "(default: static)",
    )
    recover.add_argument(
        "--schedule", nargs="+", metavar="SPEC", default=(),
        help="absolute-time fault specs to inject, e.g. 'kill:file0@120'",
    )
    recover.add_argument(
        "--migration-failure-rate", type=float, default=0.0,
        help="probability each file move aborts mid-transfer (default: 0)",
    )
    recover.add_argument(
        "--kill-at-run", type=int, default=None, metavar="RUN",
        help="crash-injection: die at this measured run (testing)",
    )
    recover.add_argument(
        "--kill-point",
        choices=("pre-commit", "mid-checkpoint", "post-commit"),
        default=None,
        help="where in the checkpoint protocol the injected kill fires",
    )

    resume = sub.add_parser(
        "resume",
        help="restore the newest valid checkpoint and finish the run",
    )
    resume.add_argument(
        "checkpoint_dir",
        help="checkpoint directory of an interrupted 'recover' run",
    )

    trace = sub.add_parser(
        "synth-trace", help="write a synthetic EOS-style trace (JSONL)"
    )
    trace.add_argument("output", help="output path (.jsonl)")
    trace.add_argument("--rows", type=int, default=5000)
    trace.add_argument("--seed", type=int, default=0)

    run = sub.add_parser(
        "run",
        help="one fully observed control loop (metrics + spans + events)",
    )
    _add_common(run, default_seed=0)
    _add_observability(run)
    run.add_argument(
        "--online", action="store_true",
        help="train the engine online (incremental fits over new rows + "
             "prioritized replay) instead of from scratch every decision",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="wrap the measured phase in cProfile and print a top-N table",
    )
    run.add_argument(
        "--profile-top", type=int, default=15, metavar="N",
        help="rows in the cProfile table (default: 15)",
    )
    run.add_argument(
        "--schedule", nargs="+", metavar="SPEC", default=(),
        help="absolute-time fault specs to inject, e.g. 'outage:pic@40+30'",
    )
    run.add_argument(
        "--migration-failure-rate", type=float, default=0.0,
        help="probability each file move aborts mid-transfer (default: 0)",
    )
    run.add_argument(
        "--provenance", default=None, metavar="PATH",
        help="enable causal tracing and write the decision-provenance "
             "ledger here (walk it with 'repro explain')",
    )
    run.add_argument(
        "--slo", action="store_true",
        help="evaluate the stock control-plane SLOs during the run and "
             "append the burn-rate report",
    )

    explain = sub.add_parser(
        "explain",
        help="walk one applied movement back through its decision to the "
             "telemetry batches that caused it",
    )
    explain.add_argument(
        "movement_id", type=int,
        help="movement rowid (1-based; see 'repro run --provenance')",
    )
    explain.add_argument(
        "--ledger", default="provenance.jsonl", metavar="PATH",
        help="provenance ledger a run wrote (default: provenance.jsonl)",
    )

    slo = sub.add_parser(
        "slo",
        help="run the control loop under SLO burn-rate monitoring and "
             "print the final burn status",
    )
    _add_common(slo, default_seed=0)
    slo.add_argument(
        "--queue-delay-threshold", type=float, default=0.05, metavar="S",
        help="telemetry queue-delay budget in simulated seconds "
             "(default: 0.05)",
    )
    slo.add_argument(
        "--throughput-floor", type=float, default=0.0, metavar="GBPS",
        help="per-run mean throughput floor in GB/s (default: 0)",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run the observed control loop; print its Prometheus dump",
    )
    _add_common(metrics, default_seed=0)
    metrics.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the dump to this file",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="run the observed control loop; write its Chrome-trace JSON",
    )
    _add_common(trace_cmd, default_seed=0)
    trace_cmd.add_argument(
        "output", help="Chrome-trace output path (load in chrome://tracing)"
    )
    trace_cmd.add_argument(
        "--sample-rate", type=float, default=1.0,
        help="fraction of ticks to trace, sampled deterministically by "
             "tick id (default: 1.0)",
    )

    return parser


def _run_fig4(args) -> str:
    from repro.experiments.fig4_correlation import run_fig4

    scale = _SCALES[args.scale]
    return run_fig4(rows=scale.trace_rows, seed=args.seed).to_text()


def _run_table1(args) -> str:
    from repro.experiments.table1_zoo import table1_text

    return table1_text()


def _run_table2(args) -> str:
    from repro.experiments.table2_comparison import run_table2, table2_text

    scale = _SCALES[args.scale]
    rows = run_table2(
        rows=scale.training_rows, epochs=scale.epochs, seed=args.seed,
        workers=args.workers,
    )
    return table2_text(rows)


def _run_table3(args) -> str:
    from repro.experiments.table3_permount import run_table3, table3_text

    scale = _SCALES[args.scale]
    rows = run_table3(
        rows=scale.training_rows, epochs=scale.epochs, seed=args.seed
    )
    return table3_text(rows)


def _run_fig5a(args) -> str:
    from repro.experiments.fig5_comparison import run_fig5a

    result = run_fig5a(
        scale=_SCALES[args.scale], seed=args.seed, workers=args.workers
    )
    gains = "\n".join(
        f"Geomancy gain over {name}: {result.gain_percent(name):+.1f}%"
        for name in sorted(result.results)
        if name != "Geomancy dynamic"
    )
    return result.to_text(title="Fig. 5a -- dynamic policies") + "\n" + gains


def _run_fig5b(args) -> str:
    from repro.experiments.fig5_comparison import run_fig5b

    result = run_fig5b(
        scale=_SCALES[args.scale], seed=args.seed, workers=args.workers
    )
    gains = "\n".join(
        f"Geomancy gain over {name}: {result.gain_percent(name):+.1f}%"
        for name in sorted(result.results)
        if name != "Geomancy dynamic"
    )
    return result.to_text(title="Fig. 5b -- static policies") + "\n" + gains


def _run_table4(args) -> str:
    from repro.experiments.table4_overhead import run_table4

    return run_table4(scale=_SCALES[args.scale], seed=args.seed).to_text()


def _run_fig6(args) -> str:
    from repro.experiments.fig6_adaptation import run_fig6

    return run_fig6(
        scale=_SCALES[args.scale], seed=args.seed, online=args.online
    ).to_text()


def _run_robustness(args) -> str:
    from repro.experiments.robustness import run_robustness

    return run_robustness(
        seeds=tuple(args.seeds), scale=_SCALES[args.scale],
        workers=args.workers,
    ).to_text()


def _run_bench(args) -> str:
    from repro.experiments.decision_bench import (
        run_decision_benchmark,
        run_harness_benchmark,
    )

    result = run_decision_benchmark(seed=args.seed)
    if not args.no_harness:
        result.harness = run_harness_benchmark(
            seeds=tuple(args.seeds),
            scale=_SCALES[args.scale],
            workers=args.workers,
        )
    path = result.write_json(args.out)
    return result.to_text() + f"\nwrote {path}"


def _run_scale(args) -> str:
    from repro.experiments.scale import (
        ScalePoint,
        run_scale,
        run_scale_benchmark,
    )

    if args.benchmark:
        result = run_scale_benchmark(seed=args.seed, workers=args.workers)
    else:
        points = [
            ScalePoint(
                devices=devices,
                files=files,
                shards=shards,
                seed=args.seed,
                rounds=args.rounds,
                runs=args.runs,
                gates=False,
            )
            for devices in args.devices
            for files in args.files
            for shards in args.shards
            if devices >= shards
        ]
        result = run_scale(points, workers=args.workers)
    path = result.write_json(args.out)
    return result.to_text() + f"\nwrote {path}"


def _run_chaos(args) -> str:
    from repro.experiments.robustness import run_chaos

    return run_chaos(
        scale=_SCALES[args.scale],
        seed=args.seed,
        schedule_specs=(
            tuple(args.schedule) if args.schedule is not None else None
        ),
        migration_failure_rate=args.migration_failure_rate,
        drop_rate=args.drop_rate,
        delay_rate=args.delay_rate,
        reorder_rate=args.reorder_rate,
        corrupt_rate=args.corrupt_rate,
    ).to_text()


def _run_saturate(args) -> str:
    from repro.experiments.saturation import run_saturation

    result = run_saturation(
        scale=_SCALES[args.scale],
        seed=args.seed,
        multipliers=tuple(args.multipliers),
        service_rate_records_s=args.service_rate,
        capacity=args.capacity,
        policy=args.policy,
        chaos=args.chaos,
    )
    text = result.to_text()
    if args.out is not None:
        path = result.write_json(args.out)
        text += f"\nwrote {path}"
    return text


def _run_deadletters(args) -> str:
    from repro.agents.daemon import InterfaceDaemon
    from repro.agents.deadletter import DeadLetterStore
    from repro.agents.transport import InMemoryTransport
    from repro.experiments.reporting import ascii_table
    from repro.replaydb.db import ReplayDB

    store = DeadLetterStore.load(args.store)
    rows = [
        [
            i,
            f"{letter.at:.2f}",
            letter.kind,
            letter.trace_id or "-",
            "yes" if letter.requeued else "no",
            letter.reason[:40],
            letter.summary[:48],
        ]
        for i, letter in enumerate(store.entries())
    ]
    text = ascii_table(
        ["#", "at", "kind", "trace", "requeued", "reason", "summary"],
        rows,
        title=(
            f"{len(store)} dead letters (capacity {store.capacity}, "
            f"{store.total} total, {store.evicted} evicted from the ring)"
        ),
    )
    if args.requeue:
        transport = InMemoryTransport()
        daemon = InterfaceDaemon(ReplayDB(), transport, InMemoryTransport())
        requeued = store.requeue_into(transport)
        stored = daemon.pump_telemetry()
        store.save(args.store)
        text += (
            f"\nrequeued {requeued} batches; {stored} records re-ingested "
            f"({daemon.dead_letters} still dead); store saved"
        )
    return text


def _run_overhead(args) -> str:
    from repro.experiments.overhead import run_overhead_study

    scale = _SCALES[args.scale]
    return run_overhead_study(
        rows=scale.training_rows, epochs=scale.epochs, seed=args.seed
    ).to_text()


def _run_model_selection(args) -> str:
    from repro.experiments.model_selection import run_model_selection

    scale = _SCALES[args.scale]
    return run_model_selection(
        rows=scale.training_rows, epochs=scale.epochs, seed=args.seed
    ).to_text()


def _run_recover(args) -> str:
    from repro.experiments.recoverable import run_recoverable

    return run_recoverable(
        checkpoint_dir=args.checkpoint_dir,
        scale=_SCALES[args.scale],
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
        keep=args.keep,
        guardrail=args.guardrail,
        fallback_policy=args.fallback,
        schedule_specs=tuple(args.schedule),
        migration_failure_rate=args.migration_failure_rate,
        kill_at_run=args.kill_at_run,
        kill_point=args.kill_point,
    ).to_text()


def _run_resume(args) -> str:
    from repro.experiments.recoverable import resume_recoverable

    return resume_recoverable(args.checkpoint_dir).to_text()


def _slo_text(statuses: list[dict]) -> str:
    """Render SLO status dicts (from InstrumentedRunResult.slo)."""
    lines = ["SLO burn status (final evaluation)"]
    for status in statuses:
        flag = "ALERT" if status["alerting"] else "ok"
        lines.append(
            f"  {status['name']:<28} target {status['target']:.3%}  "
            f"compliance {status['compliance']:.3%}  [{flag}]"
        )
        for window_s, threshold, burn in status["burns"]:
            marker = "!" if burn > threshold else " "
            lines.append(
                f"    {marker} window {window_s:>7.0f}s  "
                f"burn {burn:6.2f}x  (alert above {threshold:.1f}x)"
            )
    if not statuses:
        lines.append("  (no objectives evaluated)")
    return "\n".join(lines)


def _run_run(args) -> str:
    from repro.experiments.instrumented import run_instrumented

    overrides = {}
    if args.provenance is not None:
        overrides.update(
            causal_tracing_enabled=True,
            provenance_enabled=True,
            provenance_path=args.provenance,
        )
    if args.slo:
        overrides["slo_enabled"] = True
    result = run_instrumented(
        scale=_SCALES[args.scale],
        seed=args.seed,
        metrics_path=args.metrics,
        metrics_snapshot_path=args.metrics_snapshot,
        snapshot_every=args.snapshot_every,
        trace_path=args.trace,
        profile=args.profile,
        schedule_specs=tuple(args.schedule),
        migration_failure_rate=args.migration_failure_rate,
        trace_sample_rate=args.sample_rate,
        online_learning=args.online,
        **overrides,
    )
    text = result.to_text(profile_top=args.profile_top)
    if result.slo is not None:
        text += "\n\n" + _slo_text(result.slo)
    return text


def _run_explain(args) -> str:
    from repro.observability.provenance import ProvenanceLedger

    return ProvenanceLedger.load(args.ledger).explain_text(args.movement_id)


def _run_slo(args) -> str:
    from repro.experiments.instrumented import run_instrumented

    result = run_instrumented(
        scale=_SCALES[args.scale],
        seed=args.seed,
        slo_enabled=True,
        slo_queue_delay_threshold_s=args.queue_delay_threshold,
        slo_throughput_floor_gbps=args.throughput_floor,
    )
    return _slo_text(result.slo or [])


def _run_metrics(args) -> str:
    from repro.experiments.instrumented import run_instrumented

    result = run_instrumented(
        scale=_SCALES[args.scale], seed=args.seed, metrics_path=args.out
    )
    return result.prometheus.rstrip("\n")


def _run_trace(args) -> str:
    from repro.experiments.instrumented import run_instrumented

    result = run_instrumented(
        scale=_SCALES[args.scale],
        seed=args.seed,
        trace_path=args.output,
        trace_sample_rate=args.sample_rate,
    )
    summary = (
        f"wrote {result.spans_recorded} spans to {args.output}\n"
        "open chrome://tracing (or https://ui.perfetto.dev) and load it"
    )
    if result.attribution is not None:
        summary += "\n\n" + result.attribution.to_text()
    return summary


def _run_testbed(args) -> str:
    from repro.simulation.bluesky import describe_bluesky

    return describe_bluesky()


def _run_synth_trace(args) -> str:
    from repro.replaydb.traceio import save_trace_jsonl
    from repro.workloads.eos import EOSTraceSynthesizer

    records = EOSTraceSynthesizer(seed=args.seed).records(args.rows)
    written = save_trace_jsonl(records, args.output)
    return f"wrote {written} records to {args.output}"


_COMMANDS = {
    "fig4": _run_fig4,
    "table1": _run_table1,
    "table2": _run_table2,
    "table3": _run_table3,
    "fig5a": _run_fig5a,
    "fig5b": _run_fig5b,
    "table4": _run_table4,
    "fig6": _run_fig6,
    "robustness": _run_robustness,
    "bench": _run_bench,
    "scale": _run_scale,
    "chaos": _run_chaos,
    "saturate": _run_saturate,
    "deadletters": _run_deadletters,
    "recover": _run_recover,
    "resume": _run_resume,
    "overhead": _run_overhead,
    "model-selection": _run_model_selection,
    "testbed": _run_testbed,
    "synth-trace": _run_synth_trace,
    "run": _run_run,
    "explain": _run_explain,
    "slo": _run_slo,
    "metrics": _run_metrics,
    "trace": _run_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None or args.log_json:
        from repro.observability.logs import configure

        configure(args.log_level or "warning", json_format=args.log_json)
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
