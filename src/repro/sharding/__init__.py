"""Sharded multi-agent scale-out (ROADMAP north-star item 1).

The single-agent reproduction tops out at ~6 mounts and tens of files:
one engine probes every (file, device) pair, so the decision epoch grows
as ``files x devices``.  This package splits the cluster into shards --
each with its own decision agent over its own ReplayDB slice -- and
coordinates them:

* :mod:`repro.sharding.partitioner` -- deterministic assignment of
  devices and files to shards (and rebalancing after cross-shard moves);
* :mod:`repro.sharding.coordinator` -- arbitration of cross-shard move
  proposals against global capacity and throughput invariants at each
  fused decision boundary.

The experiment driver lives in :mod:`repro.experiments.scale`.
"""

from repro.sharding.coordinator import (
    CrossShardMove,
    ExportCandidate,
    ShardCoordinator,
    ShardDigest,
    select_exports,
    verify_moves,
)
from repro.sharding.partitioner import ShardAssignment, ShardPartitioner

__all__ = [
    "CrossShardMove",
    "ExportCandidate",
    "ShardAssignment",
    "ShardCoordinator",
    "ShardDigest",
    "ShardPartitioner",
    "select_exports",
    "verify_moves",
]
