"""Cross-shard arbitration at fused decision boundaries.

Each shard's agent sees only its own slice, so a file stuck in a slow
shard stays stuck no matter how good the local decisions are.  At every
fusion boundary the shards publish small :class:`ShardDigest` summaries
-- observed throughput, per-device free bytes, and the files their
engines serve worst (:func:`select_exports`) -- and the
:class:`ShardCoordinator` arbitrates: a move is accepted only when the
destination shard's observed throughput beats the source's by the
configured margin AND a destination device has the free bytes to take
the file.  The HDFS replication-RL framing (PAPERS.md): global capacity
is a first-class constraint, not a per-agent afterthought.

Arbitration is deterministic (sorted candidate and target orders, no
RNG) and :func:`verify_moves` re-checks every invariant independently,
so the Hypothesis suite can hold the two honest against each other.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import ShardingError


@dataclass(frozen=True)
class ExportCandidate:
    """A file its owning shard nominates for cross-shard migration."""

    fid: int
    shard: int
    size_bytes: int
    #: predicted bytes/s at the file's best *local* placement -- low
    #: scores mean even the shard's best device serves this file poorly
    local_score: float


@dataclass(frozen=True)
class ShardDigest:
    """One shard's summary published at a fusion boundary."""

    shard: int
    #: mean measured access throughput over the shard's span (GB/s)
    mean_throughput_gbps: float
    #: free bytes per available device in the shard
    free_bytes: dict[str, int] = field(default_factory=dict)
    exports: tuple[ExportCandidate, ...] = ()


@dataclass(frozen=True)
class CrossShardMove:
    """An accepted file migration between shards."""

    fid: int
    src_shard: int
    dst_shard: int
    dst_device: str
    size_bytes: int


def select_exports(
    scores: dict[int, float],
    sizes: dict[int, int],
    *,
    shard: int,
    limit: int,
) -> tuple[ExportCandidate, ...]:
    """The ``limit`` worst-served files as export candidates.

    ``scores`` is the engine's predicted bytes/s at each file's chosen
    placement (:attr:`DRLEngine.last_chosen_scores`): the files with the
    lowest chosen scores are the ones the shard cannot serve well even
    at its best device, so they are the ones worth offering to a faster
    shard.  Files without a known size are skipped (never probed yet).
    """
    if limit < 0:
        raise ShardingError(f"limit must be >= 0, got {limit}")
    ranked = sorted(scores.items(), key=lambda item: (item[1], item[0]))
    exports = []
    for fid, score in ranked:
        if len(exports) >= limit:
            break
        size = sizes.get(fid)
        if size is None:
            continue
        exports.append(
            ExportCandidate(
                fid=fid, shard=shard, size_bytes=size, local_score=score
            )
        )
    return tuple(exports)


class ShardCoordinator:
    """Arbitrates cross-shard move proposals against global invariants."""

    def __init__(self, *, margin: float = 0.10, max_moves: int = 8) -> None:
        if margin < 0:
            raise ShardingError(f"margin must be >= 0, got {margin}")
        if max_moves < 0:
            raise ShardingError(f"max_moves must be >= 0, got {max_moves}")
        self.margin = float(margin)
        self.max_moves = int(max_moves)

    def _check_digests(self, digests: Sequence[ShardDigest]) -> None:
        shards = [d.shard for d in digests]
        if len(set(shards)) != len(shards):
            raise ShardingError(f"duplicate shard digests: {sorted(shards)}")
        for digest in digests:
            for candidate in digest.exports:
                if candidate.shard != digest.shard:
                    raise ShardingError(
                        f"shard {digest.shard} published an export owned "
                        f"by shard {candidate.shard} (fid {candidate.fid})"
                    )
                if candidate.size_bytes < 0:
                    raise ShardingError(
                        f"export fid {candidate.fid} has negative size"
                    )

    def arbitrate(
        self, digests: Sequence[ShardDigest]
    ) -> list[CrossShardMove]:
        """Accept the cross-shard moves the global invariants allow.

        Candidates are considered slowest-source-first (then worst
        score, then fid): the files suffering most get first claim on
        the fast shards' capacity.  Each accepted move debits the
        destination device's free bytes, so a burst of acceptances can
        never oversubscribe a device.  At most ``max_moves`` moves are
        accepted per boundary, and one file moves at most once.
        """
        self._check_digests(digests)
        if self.max_moves == 0 or len(digests) < 2:
            return []
        throughput = {d.shard: d.mean_throughput_gbps for d in digests}
        free = {d.shard: dict(d.free_bytes) for d in digests}
        # Fastest shards first: the first target that clears the margin
        # is the best one, and once a target misses the margin no later
        # (slower) target can clear it either.
        targets = sorted(
            digests, key=lambda d: (-d.mean_throughput_gbps, d.shard)
        )
        candidates = sorted(
            (c for d in digests for c in d.exports),
            key=lambda c: (throughput[c.shard], c.local_score, c.fid),
        )
        moves: list[CrossShardMove] = []
        moved: set[int] = set()
        for candidate in candidates:
            if len(moves) >= self.max_moves:
                break
            if candidate.fid in moved:
                continue
            needed = (1.0 + self.margin) * throughput[candidate.shard]
            for target in targets:
                if throughput[target.shard] < needed:
                    break
                if target.shard == candidate.shard:
                    continue
                device = _pick_device(
                    free[target.shard], candidate.size_bytes
                )
                if device is None:
                    continue
                free[target.shard][device] -= candidate.size_bytes
                moves.append(
                    CrossShardMove(
                        fid=candidate.fid,
                        src_shard=candidate.shard,
                        dst_shard=target.shard,
                        dst_device=device,
                        size_bytes=candidate.size_bytes,
                    )
                )
                moved.add(candidate.fid)
                break
        return moves


def _pick_device(free: dict[str, int], size: int) -> str | None:
    """The destination device with the most headroom that fits ``size``."""
    best = None
    best_free = -1
    for name in sorted(free):
        headroom = free[name]
        if headroom >= size and headroom > best_free:
            best = name
            best_free = headroom
    return best


def verify_moves(
    digests: Sequence[ShardDigest],
    moves: Iterable[CrossShardMove],
    *,
    margin: float,
    max_moves: int,
) -> None:
    """Independently re-check every arbitration invariant.

    Raises :class:`ShardingError` on the first violation; written
    without reference to :meth:`ShardCoordinator.arbitrate` internals so
    property tests hold the two implementations against each other.
    """
    moves = list(moves)
    if len(moves) > max_moves:
        raise ShardingError(
            f"{len(moves)} moves exceed the max_moves cap of {max_moves}"
        )
    fids = [m.fid for m in moves]
    if len(set(fids)) != len(fids):
        raise ShardingError(f"a file was moved more than once: {sorted(fids)}")
    by_shard = {d.shard: d for d in digests}
    placed: dict[tuple[int, str], int] = {}
    for move in moves:
        if move.src_shard == move.dst_shard:
            raise ShardingError(
                f"fid {move.fid} moved within shard {move.src_shard}"
            )
        src = by_shard.get(move.src_shard)
        dst = by_shard.get(move.dst_shard)
        if src is None or dst is None:
            raise ShardingError(
                f"fid {move.fid} references an unknown shard "
                f"({move.src_shard} -> {move.dst_shard})"
            )
        exported = {c.fid: c for c in src.exports}
        if move.fid not in exported:
            raise ShardingError(
                f"fid {move.fid} was never exported by shard {src.shard}"
            )
        if exported[move.fid].size_bytes != move.size_bytes:
            raise ShardingError(
                f"fid {move.fid} size mismatch: exported "
                f"{exported[move.fid].size_bytes}, moved {move.size_bytes}"
            )
        if move.dst_device not in dst.free_bytes:
            raise ShardingError(
                f"fid {move.fid} targets unknown device "
                f"{move.dst_device!r} in shard {dst.shard}"
            )
        needed = (1.0 + margin) * src.mean_throughput_gbps
        if dst.mean_throughput_gbps < needed:
            raise ShardingError(
                f"fid {move.fid}: destination shard {dst.shard} "
                f"({dst.mean_throughput_gbps:.3f} GB/s) does not clear "
                f"the {margin:.0%} margin over shard {src.shard} "
                f"({src.mean_throughput_gbps:.3f} GB/s)"
            )
        key = (move.dst_shard, move.dst_device)
        placed[key] = placed.get(key, 0) + move.size_bytes
        if placed[key] > dst.free_bytes[move.dst_device]:
            raise ShardingError(
                f"device {move.dst_device!r} in shard {dst.shard} "
                f"oversubscribed: {placed[key]} bytes placed into "
                f"{dst.free_bytes[move.dst_device]} free"
            )
