"""Deterministic device/file sharding.

Harmonia's placement/migration split (PAPERS.md) needs each agent to own
a disjoint slice of the system; everything here is a pure function of
``(device names, file population, n_shards, seed)`` so any process --
a parallel worker rebuilding its cell from seeds, or the coordinator
re-deriving the global picture -- arrives at the identical partition.

Devices are split into contiguous blocks of the sorted name order (a
seed-dependent rotation decides which shard gets which block), so a
shard's devices can be rebuilt as a slice of the same factory that
builds the full cluster.  Files are spread by greedy least-assigned-bytes
bin packing over fid order, which keeps shard data volumes balanced even
under the log-uniform BELLE II size distribution.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ShardingError
from repro.workloads.files import FileSpec


@dataclass(frozen=True)
class ShardAssignment:
    """An immutable device/file -> shard mapping."""

    n_shards: int
    device_shard: dict[str, int] = field(default_factory=dict)
    file_shard: dict[int, int] = field(default_factory=dict)

    def devices_of(self, shard: int) -> list[str]:
        """Device names owned by ``shard``, in sorted order."""
        self._check_shard(shard)
        return sorted(
            name for name, s in self.device_shard.items() if s == shard
        )

    def files_of(self, shard: int) -> list[int]:
        """File ids owned by ``shard``, in ascending order."""
        self._check_shard(shard)
        return sorted(fid for fid, s in self.file_shard.items() if s == shard)

    def shard_of_file(self, fid: int) -> int:
        try:
            return self.file_shard[fid]
        except KeyError:
            raise ShardingError(f"file {fid} is not assigned") from None

    def shard_of_device(self, name: str) -> int:
        try:
            return self.device_shard[name]
        except KeyError:
            raise ShardingError(f"device {name!r} is not assigned") from None

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ShardingError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )


class ShardPartitioner:
    """Deterministic assignment of devices and files to shards."""

    def __init__(self, n_shards: int, *, seed: int = 0) -> None:
        if n_shards < 1:
            raise ShardingError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.seed = int(seed)

    def assign(
        self, device_names: Iterable[str], files: Iterable[FileSpec]
    ) -> ShardAssignment:
        """Partition ``device_names`` and ``files`` into shards.

        Every device and every file lands in exactly one shard; the
        result depends only on ``(inputs, n_shards, seed)``.
        """
        names = sorted(device_names)
        if len(set(names)) != len(names):
            raise ShardingError("device names must be unique")
        if len(names) < self.n_shards:
            raise ShardingError(
                f"need >= {self.n_shards} devices for {self.n_shards} "
                f"shards, got {len(names)}"
            )
        # Contiguous blocks of the sorted order keep slice-rebuild cheap;
        # the seed rotates which shard owns which block so different
        # seeds explore different device groupings.
        rotation = self.seed % self.n_shards
        device_shard: dict[str, int] = {}
        n = len(names)
        for block in range(self.n_shards):
            start = block * n // self.n_shards
            stop = (block + 1) * n // self.n_shards
            shard = (block + rotation) % self.n_shards
            for name in names[start:stop]:
                device_shard[name] = shard
        # Greedy least-bytes bin packing over fid order balances shard
        # data volume under skewed size distributions; ties break toward
        # the lowest shard id, so the packing is fully deterministic.
        specs = sorted(files, key=lambda f: f.fid)
        if len({f.fid for f in specs}) != len(specs):
            raise ShardingError("file ids must be unique")
        assigned_bytes = [0] * self.n_shards
        file_shard: dict[int, int] = {}
        for spec in specs:
            shard = min(
                range(self.n_shards), key=lambda s: (assigned_bytes[s], s)
            )
            file_shard[spec.fid] = shard
            assigned_bytes[shard] += spec.size_bytes
        return ShardAssignment(
            n_shards=self.n_shards,
            device_shard=device_shard,
            file_shard=file_shard,
        )

    def rebalance(
        self,
        assignment: ShardAssignment,
        moves: Iterable[tuple[int, int]],
    ) -> ShardAssignment:
        """Apply accepted cross-shard moves: ``(fid, destination shard)``.

        Devices never move between shards (a shard *is* its devices);
        only file ownership changes.  The file population is preserved
        exactly -- the union of all shards' files before equals the
        union after -- and unknown files or out-of-range shards raise.
        """
        if assignment.n_shards != self.n_shards:
            raise ShardingError(
                f"assignment has {assignment.n_shards} shards, "
                f"partitioner has {self.n_shards}"
            )
        file_shard = dict(assignment.file_shard)
        for fid, shard in moves:
            if fid not in file_shard:
                raise ShardingError(f"cannot rebalance unknown file {fid}")
            if not 0 <= shard < self.n_shards:
                raise ShardingError(
                    f"destination shard must be in [0, {self.n_shards}), "
                    f"got {shard} for file {fid}"
                )
            file_shard[fid] = shard
        return ShardAssignment(
            n_shards=self.n_shards,
            device_shard=dict(assignment.device_shard),
            file_shard=file_shard,
        )
