"""Write-ahead journal for layout movements.

Before the control plane dispatches a layout command it appends an
``intent`` record (which files go where); once the movements execute it
appends a matching ``commit``.  Each record is one JSON line, flushed
and fsynced before the movement proceeds, so after a crash the journal
tells the recovery path exactly which relayouts were in flight.

A transaction with an ``intent`` but no ``commit`` is *pending*: the
process died somewhere between deciding to move files and recording the
result.  On restore the checkpoint state is authoritative -- the cluster
is rebuilt as of the last checkpoint, which predates the pending intent
-- so :meth:`LayoutJournal.resolve_pending` rolls the transaction back
(appends a ``rollback`` record, emits telemetry) and re-validates the
cluster invariants.  The deterministic resumed loop then re-derives and
re-issues the same moves itself.

A torn final line (crash mid-append) is tolerated: reads ignore any
trailing line that does not parse as JSON.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import RecoveryError
from repro.faults.invariants import assert_cluster_invariants
from repro.recovery.events import EventLog

INTENT = "intent"
COMMIT = "commit"
ROLLBACK = "rollback"


class LayoutJournal:
    """Append-only JSONL write-ahead log of movement transactions."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.entries()
        self._next_txn = 1 + max(
            (entry["txn"] for entry in existing), default=-1
        )
        self._next_seq = 1 + max(
            (entry["seq"] for entry in existing), default=-1
        )

    # -- writing ---------------------------------------------------------

    def _append(self, record: dict) -> dict:
        record = {"seq": self._next_seq, **record}
        self._next_seq += 1
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def log_intent(self, layout: dict[int, str], *, t: float) -> int:
        """Record that ``layout`` is about to be dispatched; returns txn id."""
        txn = self._next_txn
        self._next_txn += 1
        self._append(
            {
                "kind": INTENT,
                "txn": txn,
                "t": float(t),
                "layout": {str(fid): dst for fid, dst in sorted(layout.items())},
            }
        )
        return txn

    def log_commit(self, txn: int, movements, *, t: float) -> None:
        """Record the realized outcome of a dispatched transaction."""
        self._append(
            {
                "kind": COMMIT,
                "txn": int(txn),
                "t": float(t),
                "moves": [
                    {
                        "fid": move.fid,
                        "src": move.src_device,
                        "dst": move.dst_device,
                        "ok": bool(move.succeeded),
                    }
                    for move in movements
                ],
            }
        )

    def log_rollback(self, txn: int, *, t: float, reason: str) -> None:
        self._append(
            {"kind": ROLLBACK, "txn": int(txn), "t": float(t), "reason": reason}
        )

    # -- reading ---------------------------------------------------------

    def entries(self) -> list[dict]:
        """All well-formed records, in append order (torn tail ignored)."""
        if not self.path.exists():
            return []
        records: list[dict] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn final append from a crash; drop it
                raise RecoveryError(
                    f"layout journal {self.path} corrupt at line {i + 1}"
                )
        return records

    def pending_intents(self) -> list[dict]:
        """Intent records with neither a commit nor a rollback."""
        resolved: set[int] = set()
        intents: list[dict] = []
        for entry in self.entries():
            if entry["kind"] == INTENT:
                intents.append(entry)
            else:
                resolved.add(entry["txn"])
        return [e for e in intents if e["txn"] not in resolved]

    # -- recovery --------------------------------------------------------

    def resolve_pending(
        self,
        cluster,
        files,
        event_log: EventLog | None = None,
        *,
        t: float = 0.0,
        step: int = 0,
    ) -> int:
        """Roll back in-flight transactions after a restore.

        The restored checkpoint predates every pending intent, so the
        cluster is already in the pre-intent state; rolling back means
        closing the transaction in the journal and letting the resumed
        loop re-derive its moves.  Cluster invariants are asserted after
        resolution.  Returns the number of transactions rolled back.
        """
        pending = self.pending_intents()
        for entry in pending:
            self.log_rollback(
                entry["txn"],
                t=t,
                reason="crash before commit; checkpoint state restored",
            )
            if event_log is not None:
                event_log.emit(
                    "journal-rollback",
                    t=t,
                    step=step,
                    txn=entry["txn"],
                    files=sorted(int(fid) for fid in entry["layout"]),
                )
        assert_cluster_invariants(cluster, files)
        return len(pending)
