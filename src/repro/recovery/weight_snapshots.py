"""Rotated frozen-weight snapshots for online-training stability.

Online continual learning loses the safety net the from-scratch path had
for free: a bad incremental update cannot be undone by "just retrain next
cycle", because the next cycle warm-starts from the damaged weights.  The
deep-RL remedy is a *target network* -- a periodically synced frozen copy
of the weights -- which here doubles as a recovery point: the engine
snapshots its model every few incremental updates, and when the
:class:`~repro.recovery.guardrail.Guardrail` trips on a loss explosion it
rolls the live weights back to the last snapshot instead of (or before)
demoting the policy.

Snapshots reuse the PR 3 serialization machinery
(:func:`~repro.nn.serialization.save_weights` /
:func:`~repro.nn.serialization.load_weights`): atomic staged-rename
writes with checksums, so a crash mid-snapshot never leaves a torn file,
and a corrupt newest generation falls back to the one before it.
"""

from __future__ import annotations

import os
import re
import tempfile
from pathlib import Path

from repro.errors import CheckpointCorruptError, ConfigurationError
from repro.nn.network import Sequential
from repro.nn.serialization import load_weights, save_weights

_SNAPSHOT_RE = re.compile(r"^weights-(\d{8})\.npz$")


class WeightSnapshotStore:
    """Keep the last ``keep`` frozen-weight snapshots of one model.

    ``directory=None`` (the engine's default) stores them in a private
    temporary directory that lives as long as this object -- the rollback
    window only needs to span the current process; recoverable runs that
    want durable snapshots pass a real directory.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        *,
        keep: int = 3,
    ) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.keep = int(keep)
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if directory is None:
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="geomancy-weight-snapshots-"
            )
            directory = self._tmpdir.name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _snapshot_path(self, step: int) -> Path:
        return self.directory / f"weights-{step:08d}.npz"

    def steps(self) -> list[int]:
        """Snapshot step numbers present on disk, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def save(self, model: Sequential, step: int) -> Path:
        """Snapshot the model's weights at ``step``; rotates old ones."""
        if step < 0:
            raise ConfigurationError(f"step must be non-negative, got {step}")
        path = self._snapshot_path(step)
        save_weights(model, path)
        for old_step in self.steps()[: -self.keep]:
            self._snapshot_path(old_step).unlink(missing_ok=True)
        return path

    def restore_latest(self, model: Sequential) -> int | None:
        """Load the newest readable snapshot into ``model``.

        Returns the restored snapshot's step, or ``None`` when no usable
        snapshot exists.  A corrupt generation is skipped (and deleted) in
        favour of the one before it, mirroring the checkpoint manager's
        fallback-chain behaviour.
        """
        for step in reversed(self.steps()):
            path = self._snapshot_path(step)
            try:
                load_weights(model, path)
            except CheckpointCorruptError:
                path.unlink(missing_ok=True)
                continue
            return step
        return None

    def close(self) -> None:
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
