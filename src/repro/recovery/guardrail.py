"""Safe-mode guardrail: bound the damage of a misbehaving policy.

The learning policy keeps authority only while it behaves.  The
guardrail watches two signals every control cycle:

* **training health** -- a NaN/inf held-out error, a diverged training
  report, or an error explosion (``test_mare`` exceeding
  ``explode_factor`` times the first healthy cycle's error);
* **realized vs. predicted throughput** -- over a sliding window of
  measured runs, if the realized throughput sums to less than
  ``regression_fraction`` of what the engine predicted for its own
  placements, the model is confidently wrong about the system it steers.

Either signal *trips* the guardrail: the caller rolls the layout back to
the last known-good checkpoint and the guardrail demotes the policy to
the configured fallback (``static`` holds the layout; ``lru`` runs the
paper's LRU baseline) for ``cooldown_runs`` control cycles before
re-admitting the learner.  Every trip and mode change is recorded as
structured telemetry.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.recovery.events import EventLog

LEARNING = "learning"
FALLBACK = "fallback"

NAN_LOSS = "nan-loss"
LOSS_EXPLOSION = "loss-explosion"
THROUGHPUT_REGRESSION = "throughput-regression"

FALLBACK_POLICIES = ("static", "lru")


@dataclass(frozen=True)
class GuardrailTrip:
    """One guardrail activation."""

    reason: str
    run_index: int
    t: float
    detail: dict

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "run_index": self.run_index,
            "t": self.t,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "GuardrailTrip":
        return cls(
            reason=str(raw["reason"]),
            run_index=int(raw["run_index"]),
            t=float(raw["t"]),
            detail=dict(raw["detail"]),
        )


class Guardrail:
    """Training-health and throughput watchdog with a fallback mode."""

    def __init__(
        self,
        *,
        window: int = 4,
        regression_fraction: float = 0.5,
        explode_factor: float = 10.0,
        cooldown_runs: int = 3,
        fallback: str = "static",
        event_log: EventLog | None = None,
        weight_rollback=None,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if not 0.0 < regression_fraction < 1.0:
            raise ConfigurationError(
                f"regression_fraction must be in (0, 1), "
                f"got {regression_fraction}"
            )
        if explode_factor <= 1.0:
            raise ConfigurationError(
                f"explode_factor must be > 1, got {explode_factor}"
            )
        if cooldown_runs < 1:
            raise ConfigurationError(
                f"cooldown_runs must be >= 1, got {cooldown_runs}"
            )
        if fallback not in FALLBACK_POLICIES:
            raise ConfigurationError(
                f"fallback must be one of {FALLBACK_POLICIES}, got {fallback!r}"
            )
        self.window = window
        self.regression_fraction = regression_fraction
        self.explode_factor = explode_factor
        self.cooldown_runs = cooldown_runs
        self.fallback = fallback
        #: optional ``() -> int | None`` hook restoring the engine's last
        #: frozen-weight snapshot (see
        #: :class:`~repro.recovery.weight_snapshots.WeightSnapshotStore`);
        #: invoked on training-health trips so a poisoned online model is
        #: rolled back to stable weights, not just demoted.  Returns the
        #: restored snapshot step, or ``None`` when nothing was restored.
        self.weight_rollback = weight_rollback
        self.event_log = event_log if event_log is not None else EventLog()
        self._mode = LEARNING
        self._cooldown_left = 0
        self._baseline_mare: float | None = None
        self._pairs: deque[tuple[float, float]] = deque(maxlen=window)
        self.trips: list[GuardrailTrip] = []

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def in_fallback(self) -> bool:
        return self._mode == FALLBACK

    # -- signals ---------------------------------------------------------

    def check_training(self, report, *, run_index: int, t: float):
        """Inspect one training report; returns the trip if one fired."""
        if self._mode == FALLBACK or report is None:
            return None
        mare = float(report.test_mare)
        if not math.isfinite(mare) or report.diverged:
            return self._trip(
                NAN_LOSS,
                run_index=run_index,
                t=t,
                detail={"test_mare": repr(mare), "diverged": report.diverged},
            )
        if self._baseline_mare is None:
            self._baseline_mare = mare
            return None
        if mare > self.explode_factor * self._baseline_mare:
            return self._trip(
                LOSS_EXPLOSION,
                run_index=run_index,
                t=t,
                detail={
                    "test_mare": mare,
                    "baseline_mare": self._baseline_mare,
                    "explode_factor": self.explode_factor,
                },
            )
        return None

    def observe_throughput(
        self,
        realized_gbps: float,
        predicted_gbps: float | None,
        *,
        run_index: int,
        t: float,
    ):
        """Feed one measured run's (realized, predicted) throughput pair.

        Runs where the engine issued no prediction (cooldown cycles,
        skipped layouts) carry ``predicted_gbps=None`` and do not enter
        the window.  Returns the trip if the window fired.
        """
        if self._mode == FALLBACK or predicted_gbps is None:
            return None
        self._pairs.append((float(realized_gbps), float(predicted_gbps)))
        if len(self._pairs) < self.window:
            return None
        realized = sum(pair[0] for pair in self._pairs)
        predicted = sum(pair[1] for pair in self._pairs)
        if predicted > 0 and realized < self.regression_fraction * predicted:
            return self._trip(
                THROUGHPUT_REGRESSION,
                run_index=run_index,
                t=t,
                detail={
                    "window": self.window,
                    "realized_sum": realized,
                    "predicted_sum": predicted,
                    "fraction": realized / predicted,
                    "threshold": self.regression_fraction,
                },
            )
        return None

    def trip_external(
        self, reason: str, *, run_index: int, t: float, detail: dict
    ):
        """Trip on an external signal (e.g. an SLO burn-rate alert).

        The demotion/cooldown machinery is identical to an internal trip;
        weight rollback is not invoked because the signal says nothing
        about training health.  No-op while already in fallback.
        """
        if self._mode == FALLBACK:
            return None
        return self._trip(reason, run_index=run_index, t=t, detail=detail)

    # -- mode machine ----------------------------------------------------

    def _trip(self, reason: str, *, run_index: int, t: float, detail: dict):
        if (
            self.weight_rollback is not None
            and reason in (NAN_LOSS, LOSS_EXPLOSION)
        ):
            restored = self.weight_rollback()
            detail = dict(detail)
            detail["weights_rolled_back"] = restored is not None
            if restored is not None:
                detail["weight_snapshot_step"] = int(restored)
        trip = GuardrailTrip(reason=reason, run_index=run_index, t=t, detail=detail)
        self.trips.append(trip)
        self._mode = FALLBACK
        self._cooldown_left = self.cooldown_runs
        self._pairs.clear()
        self.event_log.emit(
            "guardrail-trip",
            t=t,
            step=run_index,
            reason=reason,
            fallback=self.fallback,
            cooldown_runs=self.cooldown_runs,
            **detail,
        )
        return trip

    def tick(self, *, run_index: int, t: float) -> bool:
        """Advance one control cycle in fallback; True when re-admitted."""
        if self._mode != FALLBACK:
            return False
        self._cooldown_left -= 1
        if self._cooldown_left > 0:
            return False
        self._mode = LEARNING
        # Require the learner to re-establish a healthy error baseline
        # before the explosion check re-arms.
        self._baseline_mare = None
        self.event_log.emit(
            "guardrail-readmit", t=t, step=run_index, fallback=self.fallback
        )
        return True

    # -- persistence -----------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "mode": self._mode,
            "cooldown_left": self._cooldown_left,
            "baseline_mare": self._baseline_mare,
            "pairs": [list(pair) for pair in self._pairs],
            "trips": [trip.to_dict() for trip in self.trips],
        }

    def load_state_dict(self, state: dict) -> None:
        self._mode = str(state["mode"])
        if self._mode not in (LEARNING, FALLBACK):
            raise ConfigurationError(f"unknown guardrail mode {self._mode!r}")
        self._cooldown_left = int(state["cooldown_left"])
        self._baseline_mare = (
            float(state["baseline_mare"])
            if state["baseline_mare"] is not None
            else None
        )
        self._pairs = deque(
            ((float(r), float(p)) for r, p in state["pairs"]),
            maxlen=self.window,
        )
        self.trips = [GuardrailTrip.from_dict(raw) for raw in state["trips"]]
