"""Atomic, checksummed, rotated checkpoints.

A checkpoint *generation* is a directory ``gen-{step:08d}`` containing:

``state.json``
    every JSON-serializable piece of control-plane state (layout,
    scheduler position, RNG streams, agent counters, ...);
``replay.db`` (optional)
    a SQLite snapshot of the ReplayDB taken with the online backup API;
``model.npz`` (optional)
    the engine's network weights (and optimizer slots) in the
    checksummed :mod:`repro.nn.serialization` format;
``MANIFEST.json``
    written **last**: the step number plus a sha256 for every other file.

Atomicity protocol: all files are staged into a hidden sibling
directory, fsynced, the manifest is written, and only then is the
staging directory renamed into place and the parent directory fsynced.
A crash at any point leaves either the previous generations untouched
(staging dir is ignored and garbage-collected on the next save) or a
fully valid new generation.  :meth:`CheckpointManager.latest_valid`
re-verifies every checksum at load time and silently falls back to the
newest older generation when a checkpoint is torn or bit-rotted,
recording a warning for each one skipped.

``fault_hook`` is a test seam: it is called with the barrier names
``"staged"``, ``"manifest"`` and ``"finalized"`` during
:meth:`~CheckpointManager.save`, letting crash-injection tests kill the
process at precise points in the protocol.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import CheckpointCorruptError, RecoveryError

MANIFEST_NAME = "MANIFEST.json"
STATE_NAME = "state.json"
REPLAY_NAME = "replay.db"
MODEL_NAME = "model.npz"
FORMAT_VERSION = 1

_GEN_PREFIX = "gen-"
_STAGING_PREFIX = ".staging-"


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class LoadedCheckpoint:
    """A verified checkpoint generation ready to restore from."""

    path: Path
    step: int
    state: dict
    replay_path: Path | None
    model_path: Path | None
    #: human-readable notes about older/corrupt generations skipped on the
    #: way to this one (empty when the newest generation loaded cleanly)
    warnings: list[str] = field(default_factory=list)


class CheckpointManager:
    """Writes and reads rotated checkpoint generations under ``directory``."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        keep: int = 3,
        fault_hook: Callable[[str], None] | None = None,
    ) -> None:
        if keep < 1:
            raise RecoveryError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.fault_hook = fault_hook
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- writing ---------------------------------------------------------

    def save(
        self,
        step: int,
        state: dict,
        *,
        db=None,
        model=None,
        optimizer=None,
    ) -> Path:
        """Atomically persist one generation; returns its directory.

        ``state`` must be JSON-serializable.  ``db`` is a live
        :class:`~repro.replaydb.db.ReplayDB` (snapshotted via the SQLite
        backup API); ``model`` a built network saved through
        :func:`repro.nn.serialization.save_weights`.
        """
        gen_dir = self.directory / f"{_GEN_PREFIX}{step:08d}"
        if gen_dir.exists():
            raise RecoveryError(f"checkpoint generation already exists: {gen_dir}")
        staging = self.directory / f"{_STAGING_PREFIX}{_GEN_PREFIX}{step:08d}"
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir()

        files: dict[str, str] = {}

        state_path = staging / STATE_NAME
        with open(state_path, "w", encoding="utf-8") as handle:
            json.dump(state, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        files[STATE_NAME] = _sha256_file(state_path)

        if db is not None:
            replay_path = staging / REPLAY_NAME
            db.snapshot_to(replay_path)
            _fsync_file(replay_path)
            files[REPLAY_NAME] = _sha256_file(replay_path)

        if model is not None:
            from repro.nn.serialization import save_weights

            model_path = staging / MODEL_NAME
            save_weights(model, model_path, optimizer=optimizer)
            files[MODEL_NAME] = _sha256_file(model_path)

        _fsync_dir(staging)
        self._barrier("staged")

        manifest = {
            "format_version": FORMAT_VERSION,
            "step": int(step),
            "files": files,
        }
        manifest_tmp = staging / (MANIFEST_NAME + ".tmp")
        with open(manifest_tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(manifest_tmp, staging / MANIFEST_NAME)
        _fsync_dir(staging)
        self._barrier("manifest")

        os.replace(staging, gen_dir)
        _fsync_dir(self.directory)
        self._barrier("finalized")

        self._rotate()
        return gen_dir

    def _barrier(self, name: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(name)

    def _rotate(self) -> None:
        gens = self.generations()
        for stale in gens[: max(0, len(gens) - self.keep)]:
            shutil.rmtree(stale, ignore_errors=True)
        # Garbage-collect staging dirs abandoned by earlier crashed saves.
        for leftover in self.directory.iterdir():
            if leftover.name.startswith(_STAGING_PREFIX):
                shutil.rmtree(leftover, ignore_errors=True)

    # -- reading ---------------------------------------------------------

    def generations(self) -> list[Path]:
        """Finalized generation directories, oldest first."""
        if not self.directory.exists():
            return []
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.is_dir() and p.name.startswith(_GEN_PREFIX)
        )

    def verify(self, gen_dir: Path) -> list[str]:
        """Integrity problems with one generation ([] when it is sound)."""
        problems: list[str] = []
        manifest_path = gen_dir / MANIFEST_NAME
        if not manifest_path.exists():
            return [f"{gen_dir.name}: missing {MANIFEST_NAME} (torn checkpoint)"]
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, OSError) as exc:
            return [f"{gen_dir.name}: unreadable manifest ({exc})"]
        if manifest.get("format_version") != FORMAT_VERSION:
            return [
                f"{gen_dir.name}: unsupported format_version "
                f"{manifest.get('format_version')!r}"
            ]
        for name, expected in manifest.get("files", {}).items():
            path = gen_dir / name
            if not path.exists():
                problems.append(f"{gen_dir.name}: missing file {name}")
                continue
            actual = _sha256_file(path)
            if actual != expected:
                problems.append(
                    f"{gen_dir.name}: checksum mismatch for {name} "
                    f"(expected {expected[:12]}..., got {actual[:12]}...)"
                )
        return problems

    def latest_valid(self) -> LoadedCheckpoint:
        """Newest generation that passes full checksum verification.

        Corrupt or torn generations are skipped newest-first; each skip
        is recorded in ``LoadedCheckpoint.warnings``.  Raises
        :class:`RecoveryError` when no generation survives.
        """
        warnings: list[str] = []
        for gen_dir in reversed(self.generations()):
            problems = self.verify(gen_dir)
            if problems:
                warnings.extend(problems)
                warnings.append(
                    f"falling back past corrupt checkpoint {gen_dir.name}"
                )
                continue
            loaded = self.load(gen_dir)
            loaded.warnings = warnings + loaded.warnings
            return loaded
        raise RecoveryError(
            f"no valid checkpoint generation under {self.directory} "
            f"(problems: {warnings or 'no generations found'})"
        )

    def discard_newer(self, step: int) -> list[str]:
        """Remove generations newer than ``step``; returns their names.

        Used on resume: anything newer than the generation actually
        restored failed verification (else it would have been chosen),
        and the deterministic replay is about to re-create those steps.
        Leaving the corrupt directories behind would make the re-created
        ``save`` collide with them.
        """
        discarded: list[str] = []
        for gen_dir in self.generations():
            if int(gen_dir.name[len(_GEN_PREFIX):]) > step:
                shutil.rmtree(gen_dir, ignore_errors=True)
                discarded.append(gen_dir.name)
        return discarded

    def load(self, gen_dir: str | os.PathLike) -> LoadedCheckpoint:
        """Load one specific generation, verifying its checksums."""
        gen_dir = Path(gen_dir)
        problems = self.verify(gen_dir)
        if problems:
            raise CheckpointCorruptError(
                f"checkpoint {gen_dir} failed verification: {problems}"
            )
        with open(gen_dir / MANIFEST_NAME, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        with open(gen_dir / STATE_NAME, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        replay_path = gen_dir / REPLAY_NAME
        model_path = gen_dir / MODEL_NAME
        return LoadedCheckpoint(
            path=gen_dir,
            step=int(manifest["step"]),
            state=state,
            replay_path=replay_path if replay_path.exists() else None,
            model_path=model_path if model_path.exists() else None,
        )
