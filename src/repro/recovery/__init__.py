"""Durability and crash recovery for the Geomancy control plane.

The paper's agents ran against live storage for days; a control loop
meant to do that must survive restarts and bound the damage a diverging
model can inflict.  This package provides:

* :class:`~repro.recovery.checkpoint.CheckpointManager` -- atomic,
  checksummed, rotated snapshots of the full system state (ReplayDB,
  model weights, layout, scheduler position, named RNG streams);
* :class:`~repro.recovery.journal.LayoutJournal` -- a write-ahead log of
  movement intents/commits so interrupted relayouts are resolved on
  restore and the cluster invariants hold;
* :class:`~repro.recovery.guardrail.Guardrail` -- the safe-mode policy
  wrapper that demotes a misbehaving learning policy to a fallback and
  rolls the layout back to the last known-good checkpoint;
* :class:`~repro.recovery.events.EventLog` -- structured telemetry for
  every recovery-relevant event (rescues, trips, rollbacks, fallbacks).

The recoverable control loop that ties these together lives in
:mod:`repro.experiments.recoverable` (``repro recover`` / ``repro
resume`` on the CLI).
"""

from repro.recovery.checkpoint import CheckpointManager, LoadedCheckpoint
from repro.recovery.events import EventLog, RecoveryEvent
from repro.recovery.guardrail import Guardrail, GuardrailTrip
from repro.recovery.journal import LayoutJournal
from repro.recovery.weight_snapshots import WeightSnapshotStore

__all__ = [
    "CheckpointManager",
    "EventLog",
    "Guardrail",
    "GuardrailTrip",
    "LayoutJournal",
    "LoadedCheckpoint",
    "RecoveryEvent",
    "WeightSnapshotStore",
]
