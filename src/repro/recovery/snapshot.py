"""Capture / restore the full control-plane state.

``capture_system`` walks a live :class:`~repro.core.geomancy.Geomancy`
instance plus its :class:`~repro.workloads.runner.WorkloadRunner` and
returns one JSON-serializable dict covering everything the deterministic
loop depends on: the clock, the runner's position in the run sequence,
every file placement (in workload-spec order, so the cluster namespace
is rebuilt with identical iteration order), per-device RNG/stat state,
and the engine / action-checker / control-agent / health-tracker state
dicts.  ``restore_system`` is its exact inverse over a freshly
constructed (files *not* yet placed) Geomancy + runner pair.

Model weights and the ReplayDB are deliberately **not** in this dict --
they are binary artifacts the :class:`~repro.recovery.checkpoint.
CheckpointManager` stores as separate checksummed files (``model.npz``,
``replay.db``) next to the JSON state.

This module must stay import-light: it is duck-typed over the Geomancy
facade (no ``repro.core`` imports at module level) so the recovery
package never forms an import cycle with the core.
"""

from __future__ import annotations

from repro.errors import RecoveryError


def capture_system(geo, runner) -> dict:
    """Snapshot everything the deterministic control loop depends on.

    Must be called at a run boundary: monitor buffers flushed, transport
    queues drained, no retries mid-dispatch.  (The recoverable harness
    only checkpoints right after ``after_run`` returns, which guarantees
    exactly that.)
    """
    cluster = geo.cluster
    layout = cluster.layout()
    missing = [spec.fid for spec in geo.files if spec.fid not in layout]
    if missing:
        raise RecoveryError(
            f"cannot snapshot: files {missing} are not in the cluster"
        )
    return {
        "clock": runner.clock.now,
        "runner": {
            "next_run_index": runner.next_run_index,
            "total_accesses": runner.total_accesses,
            "failed_accesses": runner.failed_accesses,
        },
        "placements": {str(spec.fid): layout[spec.fid] for spec in geo.files},
        "devices": {
            name: cluster.device(name).state_dict()
            for name in cluster.device_names
        },
        "engine": geo.engine.state_dict(),
        "checker": geo.checker.state_dict(),
        "control": geo.control.state_dict(),
        "health": geo.health.state_dict(),
    }


def restore_system(geo, runner, state: dict) -> None:
    """Rebuild ``geo``/``runner`` from a :func:`capture_system` dict.

    ``geo`` must have been constructed over an *empty* cluster (no
    ``place_initial``): files are re-registered here in workload-spec
    order so the namespace's iteration order matches the captured
    process exactly.  The caller restores model weights (and the
    ReplayDB) from the checkpoint's binary artifacts afterwards.
    """
    cluster = geo.cluster
    placements = state["placements"]
    if cluster.files:
        raise RecoveryError(
            "restore_system needs a cluster with no files placed yet"
        )
    for spec in geo.files:
        try:
            device = placements[str(spec.fid)]
        except KeyError:
            raise RecoveryError(
                f"checkpoint is missing a placement for file {spec.fid}"
            ) from None
        cluster.restore_file(spec.fid, spec.path, spec.size_bytes, device)
    for name in cluster.device_names:
        try:
            device_state = state["devices"][name]
        except KeyError:
            raise RecoveryError(
                f"checkpoint is missing device state for {name!r}"
            ) from None
        cluster.device(name).load_state_dict(device_state)

    runner.clock.advance_to(float(state["clock"]))
    runner.next_run_index = int(state["runner"]["next_run_index"])
    runner.total_accesses = int(state["runner"]["total_accesses"])
    runner.failed_accesses = int(state["runner"]["failed_accesses"])

    geo.engine.load_state_dict(state["engine"])
    geo.checker.load_state_dict(state["checker"])
    geo.control.load_state_dict(state["control"])
    geo.health.load_state_dict(state["health"])
