"""Structured recovery telemetry.

Every recovery-relevant occurrence -- a checkpoint written, a torn
generation skipped, a journal rollback, a guardrail trip, a stranded-file
rescue -- is recorded as a :class:`RecoveryEvent` so experiments and
operators can audit exactly what the durability layer did and when.

This module is intentionally dependency-free (stdlib only) so that
:mod:`repro.core.geomancy` can import it without creating a cycle with
the rest of the recovery package.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery-relevant occurrence.

    ``kind`` is a stable machine-readable tag (e.g. ``checkpoint-saved``,
    ``checkpoint-corrupt``, ``journal-rollback``, ``guardrail-trip``,
    ``stranded-file-rescued``); ``detail`` carries kind-specific,
    JSON-serializable context.
    """

    kind: str
    t: float
    step: int
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t": self.t,
            "step": self.step,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "RecoveryEvent":
        return cls(
            kind=str(raw["kind"]),
            t=float(raw["t"]),
            step=int(raw["step"]),
            detail=dict(raw.get("detail", {})),
        )


class EventLog:
    """Append-only in-memory log of :class:`RecoveryEvent` records."""

    def __init__(self) -> None:
        self._events: list[RecoveryEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> tuple[RecoveryEvent, ...]:
        return tuple(self._events)

    def emit(self, kind: str, *, t: float, step: int, **detail) -> RecoveryEvent:
        """Record and return a new event."""
        event = RecoveryEvent(kind=kind, t=float(t), step=int(step), detail=detail)
        self._events.append(event)
        return event

    def of_kind(self, kind: str) -> tuple[RecoveryEvent, ...]:
        return tuple(e for e in self._events if e.kind == kind)

    def state_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self._events]}

    def load_state_dict(self, state: dict) -> None:
        self._events = [RecoveryEvent.from_dict(raw) for raw in state["events"]]
