"""Structured recovery telemetry -- now a view over the event bus.

Historically this module owned its own event type and append-only log.
Both survive as a compatibility shim over the unified observability
layer: :class:`RecoveryEvent` *is*
:class:`repro.observability.events.Event`, and :class:`EventLog` is a
recording facade over an :class:`~repro.observability.events.EventBus`
-- every ``emit`` publishes a typed bus event (guardrail trips,
checkpoint commits, journal rollbacks, stranded-file rescues), so bus
subscribers see recovery traffic alongside fault and movement events,
while existing callers keep the familiar log API (``events``,
``of_kind``, ``state_dict``/``load_state_dict``).

By default an ``EventLog`` bridges to the *installed* observability
bus (see :func:`repro.observability.get_observability`), which is a
no-op collector unless a run enabled observability; pass ``bus=`` to
wire it to a specific one.
"""

from __future__ import annotations

from repro.observability import get_observability
from repro.observability.events import Event, EventBus

#: compatibility alias -- recovery events are plain bus events
RecoveryEvent = Event


class EventLog:
    """Append-only log of recovery events, mirrored onto an event bus."""

    def __init__(self, bus: EventBus | None = None) -> None:
        self._events: list[Event] = []
        self.bus = bus if bus is not None else get_observability().bus

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> tuple[Event, ...]:
        return tuple(self._events)

    def emit(self, kind: str, *, t: float, step: int, **detail) -> Event:
        """Record a new event and publish it on the attached bus."""
        event = Event(kind=kind, t=float(t), step=int(step), detail=detail)
        self._events.append(event)
        self.bus.publish(event)
        return event

    def of_kind(self, kind: str) -> tuple[Event, ...]:
        return tuple(e for e in self._events if e.kind == kind)

    def state_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self._events]}

    def load_state_dict(self, state: dict) -> None:
        """Restore the log's contents.

        Restored events are *not* re-published: subscribers already saw
        them when they first happened (or were never around to), and a
        resume must not double-count trips or checkpoints.
        """
        self._events = [Event.from_dict(raw) for raw in state["events"]]
