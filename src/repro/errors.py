"""Exception hierarchy for the Geomancy reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors (``TypeError``,
``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class ModelError(ReproError):
    """A neural-network model was built or used incorrectly."""


class ShapeError(ModelError):
    """An array has the wrong shape for the requested operation."""


class DivergedError(ModelError):
    """Training diverged (NaN/inf loss or constant useless predictions).

    Table II of the paper marks models 2 and 5 as *Diverged*; this error is
    how the training loop reports that condition programmatically.
    """


class FeatureError(ReproError):
    """Feature extraction or normalization failed."""


class ReplayDBError(ReproError):
    """The replay database rejected an operation."""


class SimulationError(ReproError):
    """The storage-cluster simulator was driven into an invalid state."""


class UnknownDeviceError(SimulationError):
    """A device id does not exist in the cluster."""


class UnknownFileError(SimulationError):
    """A file id does not exist in the cluster namespace."""


class CapacityError(SimulationError):
    """A placement would exceed a storage device's capacity."""


class DeviceUnavailableError(SimulationError):
    """A placement targeted a device that is not accepting new data.

    Models the paper's "in case permissions or availability changes in the
    system" (section V-H) -- the condition the Action Checker exists to
    filter out.
    """


class PolicyError(ReproError):
    """A placement policy produced an invalid layout."""


class AgentError(ReproError):
    """A monitoring/control agent or the interface daemon failed."""


class ExperimentError(ReproError):
    """An experiment harness was configured or run incorrectly."""
