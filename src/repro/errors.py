"""Exception hierarchy for the Geomancy reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors (``TypeError``,
``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class ModelError(ReproError):
    """A neural-network model was built or used incorrectly."""


class ShapeError(ModelError):
    """An array has the wrong shape for the requested operation."""


class DivergedError(ModelError):
    """Training diverged (NaN/inf loss or constant useless predictions).

    Table II of the paper marks models 2 and 5 as *Diverged*; this error is
    how the training loop reports that condition programmatically.
    """


class CheckpointCorruptError(ModelError):
    """A persisted artifact failed integrity validation on load.

    Raised by :mod:`repro.nn.serialization` and the recovery subsystem when
    a checkpoint file is truncated, bit-flipped (checksum mismatch), has an
    unsupported format version, or stores arrays whose shape/dtype disagree
    with the live object they are loaded into.  Subclasses
    :class:`ModelError` so callers that already guard weight loading keep
    working.
    """


class FeatureError(ReproError):
    """Feature extraction or normalization failed."""


class ReplayDBError(ReproError):
    """The replay database rejected an operation."""


class SimulationError(ReproError):
    """The storage-cluster simulator was driven into an invalid state."""


class UnknownDeviceError(SimulationError):
    """A device id does not exist in the cluster."""


class UnknownFileError(SimulationError):
    """A file id does not exist in the cluster namespace."""


class CapacityError(SimulationError):
    """A placement would exceed a storage device's capacity."""


class DeviceUnavailableError(SimulationError):
    """A placement targeted a device that is not accepting new data.

    Models the paper's "in case permissions or availability changes in the
    system" (section V-H) -- the condition the Action Checker exists to
    filter out.
    """


class DeviceOfflineError(DeviceUnavailableError):
    """A device is offline: it serves no accesses and accepts no data.

    Unlike :class:`DeviceUnavailableError` (which only refuses *new*
    placements), an offline device has disappeared from the system --
    the fault-injection framework's "kill" events put devices here.
    """


class MigrationError(SimulationError):
    """A file migration failed partway through the transfer.

    Raised by the cluster when a fault injector aborts a move
    mid-transfer.  The file stays on (is rolled back to) its source
    device; the attributes record the traffic wasted before the abort so
    control agents can account for it.
    """

    def __init__(
        self,
        message: str,
        *,
        fid: int,
        src: str,
        dst: str,
        bytes_attempted: int,
        bytes_transferred: int,
        duration: float,
    ) -> None:
        super().__init__(message)
        self.fid = fid
        self.src = src
        self.dst = dst
        self.bytes_attempted = bytes_attempted
        self.bytes_transferred = bytes_transferred
        self.duration = duration


class PolicyError(ReproError):
    """A placement policy produced an invalid layout."""


class AgentError(ReproError):
    """A monitoring/control agent or the interface daemon failed."""


class TransportError(AgentError):
    """A message channel lost, corrupted, or refused a message."""


class RetryExhaustedError(AgentError):
    """A file move kept failing until its per-file retry budget ran out.

    The control agent records (rather than raises) these so one doomed
    file cannot crash the control loop; the engine is left to re-propose
    a different placement on a later cycle.
    """

    def __init__(self, message: str, *, fid: int, dst: str, attempts: int) -> None:
        super().__init__(message)
        self.fid = fid
        self.dst = dst
        self.attempts = attempts


class ExperimentError(ReproError):
    """An experiment harness was configured or run incorrectly."""


class ShardingError(ReproError):
    """A shard partition or cross-shard arbitration input is invalid.

    Raised by the scale-out layer (:mod:`repro.sharding`) when a
    partition request cannot be satisfied (fewer devices than shards),
    when a rebalance names an unknown file or shard, or when a set of
    cross-shard moves violates the coordinator's capacity/uniqueness
    invariants.
    """


class RecoveryError(ReproError):
    """Crash recovery could not restore a usable system state."""


class SimulatedCrash(ReproError):
    """An injected process kill (crash-restart testing).

    Raised by the recoverable harness at a configured kill point; tests and
    the recovery benchmark catch it, throw the process state away, and
    resume from the on-disk checkpoint exactly as a restarted process would.
    """
