"""Recurrent layers: SimpleRNN, LSTM and GRU with full BPTT.

Table I's recurrent models put one recurrent layer first (consuming a window
of telemetry as a ``(batch, timesteps, features)`` array) followed by Dense
layers.  Matching Keras' default, these layers return only the final hidden
state ``(batch, units)``.

The ``activation`` argument is the *cell* activation (the paper writes
"Z (LSTM) ReLU", i.e. ReLU cell activation); gate activations are always
sigmoid, as in Keras.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, ShapeError
from repro.nn.activations import sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.layers import Layer


class _Recurrent(Layer):
    """Shared plumbing for the three recurrent layers."""

    input_rank = 3

    #: number of stacked gate blocks in the combined weight matrices
    n_gates = 1

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        if input_dim <= 0:
            raise ShapeError(f"input_dim must be positive, got {input_dim}")
        self.input_dim = int(input_dim)
        g = self.n_gates
        self.params = {
            "W": glorot_uniform(rng, input_dim, g * self.units),
            "U": orthogonal(rng, self.units, g * self.units),
            "b": zeros((g * self.units,)),
        }
        self.zero_grads()
        self.built = True

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ShapeError(
                f"{type(self).__name__} expected (batch, timesteps, "
                f"{self.input_dim}), got {x.shape}"
            )
        return x

    def _gate(self, z: np.ndarray, index: int) -> np.ndarray:
        """Slice gate ``index`` out of a combined pre-activation array."""
        u = self.units
        return z[:, index * u : (index + 1) * u]


class SimpleRNN(_Recurrent):
    """Elman RNN: ``h_t = act(x_t W + h_{t-1} U + b)``."""

    n_gates = 1

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = self._check_input(x)
        batch, steps, _ = x.shape
        w, u, b = self.params["W"], self.params["U"], self.params["b"]
        h = np.zeros((batch, self.units))
        hs = [h]
        zs = []
        for t in range(steps):
            z = x[:, t, :] @ w + h @ u + b
            h = self.activation(z)
            zs.append(z)
            hs.append(h)
        if training:
            self._cache = {"x": x, "hs": hs, "zs": zs}
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if not self._cache:
            raise ModelError("backward() called before a training forward pass")
        x, hs, zs = self._cache["x"], self._cache["hs"], self._cache["zs"]
        batch, steps, _ = x.shape
        w, u = self.params["W"], self.params["U"]
        dw = np.zeros_like(w)
        du = np.zeros_like(u)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh = grad_out.copy()
        for t in range(steps - 1, -1, -1):
            dz = dh * self.activation.backward(zs[t], hs[t + 1])
            dw += x[:, t, :].T @ dz
            du += hs[t].T @ dz
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ w.T
            dh = dz @ u.T
        self.grads = {"W": dw, "U": du, "b": db}
        return dx


class LSTM(_Recurrent):
    """Long short-term memory (Hochreiter & Schmidhuber).

    Gate order in the combined matrices: input, forget, candidate, output.
    """

    n_gates = 4

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = self._check_input(x)
        batch, steps, _ = x.shape
        w, u, b = self.params["W"], self.params["U"], self.params["b"]
        h = np.zeros((batch, self.units))
        c = np.zeros((batch, self.units))
        cache: list[dict[str, np.ndarray]] = []
        for t in range(steps):
            z = x[:, t, :] @ w + h @ u + b
            zi, zf, zg, zo = (self._gate(z, k) for k in range(4))
            i = sigmoid(zi)
            f = sigmoid(zf)
            g = self.activation(zg)
            o = sigmoid(zo)
            c_prev = c
            c = f * c_prev + i * g
            ac = self.activation(c)
            h_prev = h
            h = o * ac
            if training:
                cache.append(
                    {
                        "xt": x[:, t, :], "h_prev": h_prev, "c_prev": c_prev,
                        "zi": zi, "zf": zf, "zg": zg, "zo": zo,
                        "i": i, "f": f, "g": g, "o": o, "c": c, "ac": ac,
                    }
                )
        if training:
            self._cache = {"x": x, "steps_cache": cache}
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if not self._cache:
            raise ModelError("backward() called before a training forward pass")
        x = self._cache["x"]
        cache = self._cache["steps_cache"]
        batch, steps, _ = x.shape
        w, u = self.params["W"], self.params["U"]
        dw = np.zeros_like(w)
        du = np.zeros_like(u)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh = grad_out.copy()
        dc = np.zeros((batch, self.units))
        for t in range(steps - 1, -1, -1):
            s = cache[t]
            do = dh * s["ac"]
            dc = dc + dh * s["o"] * self.activation.backward(s["c"], s["ac"])
            di = dc * s["g"]
            df = dc * s["c_prev"]
            dg = dc * s["i"]
            dzi = di * s["i"] * (1.0 - s["i"])
            dzf = df * s["f"] * (1.0 - s["f"])
            dzg = dg * self.activation.backward(s["zg"], s["g"])
            dzo = do * s["o"] * (1.0 - s["o"])
            dz = np.concatenate([dzi, dzf, dzg, dzo], axis=1)
            dw += s["xt"].T @ dz
            du += s["h_prev"].T @ dz
            db += dz.sum(axis=0)
            dx[:, t, :] = dz @ w.T
            dh = dz @ u.T
            dc = dc * s["f"]
        self.grads = {"W": dw, "U": du, "b": db}
        return dx


class GRU(_Recurrent):
    """Gated recurrent unit (Cho et al.), reset-before-matmul formulation.

    Gate order in the combined matrices: update (z), reset (r), candidate.
    ``h_t = z * h_{t-1} + (1 - z) * h_tilde``.
    """

    n_gates = 3

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = self._check_input(x)
        batch, steps, _ = x.shape
        w, u, b = self.params["W"], self.params["U"], self.params["b"]
        un = self.units
        wz, wr, wh = w[:, :un], w[:, un : 2 * un], w[:, 2 * un :]
        uz, ur, uh = u[:, :un], u[:, un : 2 * un], u[:, 2 * un :]
        bz, br, bh = b[:un], b[un : 2 * un], b[2 * un :]
        h = np.zeros((batch, un))
        cache: list[dict[str, np.ndarray]] = []
        for t in range(steps):
            xt = x[:, t, :]
            zz = xt @ wz + h @ uz + bz
            zr = xt @ wr + h @ ur + br
            z = sigmoid(zz)
            r = sigmoid(zr)
            zh = xt @ wh + (r * h) @ uh + bh
            h_tilde = self.activation(zh)
            h_prev = h
            h = z * h_prev + (1.0 - z) * h_tilde
            if training:
                cache.append(
                    {
                        "xt": xt, "h_prev": h_prev, "z": z, "r": r,
                        "zh": zh, "h_tilde": h_tilde,
                    }
                )
        if training:
            self._cache = {"x": x, "steps_cache": cache}
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if not self._cache:
            raise ModelError("backward() called before a training forward pass")
        x = self._cache["x"]
        cache = self._cache["steps_cache"]
        batch, steps, _ = x.shape
        w, u = self.params["W"], self.params["U"]
        un = self.units
        wz, wr, wh = w[:, :un], w[:, un : 2 * un], w[:, 2 * un :]
        uz, ur, uh = u[:, :un], u[:, un : 2 * un], u[:, 2 * un :]
        dw = np.zeros_like(w)
        du = np.zeros_like(u)
        db = np.zeros_like(self.params["b"])
        dx = np.zeros_like(x)
        dh = grad_out.copy()
        for t in range(steps - 1, -1, -1):
            s = cache[t]
            dz_gate = dh * (s["h_prev"] - s["h_tilde"])
            dh_tilde = dh * (1.0 - s["z"])
            dzh = dh_tilde * self.activation.backward(s["zh"], s["h_tilde"])
            dzz = dz_gate * s["z"] * (1.0 - s["z"])
            d_rh = dzh @ uh.T
            dr = d_rh * s["h_prev"]
            dzr = dr * s["r"] * (1.0 - s["r"])
            # parameter grads
            dw[:, :un] += s["xt"].T @ dzz
            dw[:, un : 2 * un] += s["xt"].T @ dzr
            dw[:, 2 * un :] += s["xt"].T @ dzh
            du[:, :un] += s["h_prev"].T @ dzz
            du[:, un : 2 * un] += s["h_prev"].T @ dzr
            du[:, 2 * un :] += (s["r"] * s["h_prev"]).T @ dzh
            db[:un] += dzz.sum(axis=0)
            db[un : 2 * un] += dzr.sum(axis=0)
            db[2 * un :] += dzh.sum(axis=0)
            # input grad
            dx[:, t, :] = dzz @ wz.T + dzr @ wr.T + dzh @ wh.T
            # carry to previous hidden state
            dh = (
                dh * s["z"]
                + dzz @ uz.T
                + dzr @ ur.T
                + d_rh * s["r"]
            )
        self.grads = {"W": dw, "U": du, "b": db}
        return dx
