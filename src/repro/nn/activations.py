"""Activation functions and their derivatives.

The paper uses ReLU almost everywhere ("limits outputs to be positive, ...
useful when predicting throughput") and a linear output head on several
models; sigmoid/tanh are needed internally by LSTM/GRU gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class Activation:
    """An activation function paired with its derivative.

    ``backward`` receives the *pre-activation* input ``x`` and the cached
    forward output ``y`` and returns dY/dX elementwise.
    """

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    backward: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


def _relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_backward(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _linear_forward(x: np.ndarray) -> np.ndarray:
    return x


def _linear_backward(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _sigmoid_forward(x: np.ndarray) -> np.ndarray:
    # Numerically stable piecewise formulation.
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_backward(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _tanh_forward(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_backward(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


relu = Activation("relu", _relu_forward, _relu_backward)
linear = Activation("linear", _linear_forward, _linear_backward)
sigmoid = Activation("sigmoid", _sigmoid_forward, _sigmoid_backward)
tanh = Activation("tanh", _tanh_forward, _tanh_backward)

_REGISTRY: dict[str, Activation] = {
    a.name: a for a in (relu, linear, sigmoid, tanh)
}


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (``"relu"``, ``"linear"``, ...)."""
    if isinstance(name, Activation):
        return name
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelError(f"unknown activation {name!r}; known: {known}") from None
