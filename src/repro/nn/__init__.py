"""From-scratch numpy neural-network stack used by Geomancy's DRL engine.

The paper trains small Keras models (Dense / SimpleRNN / LSTM / GRU layers,
ReLU or linear activations, SGD) on 12,000-row telemetry batches.  This
package reimplements exactly that surface in pure numpy so the reproduction
has no deep-learning framework dependency:

* :mod:`repro.nn.layers` / :mod:`repro.nn.recurrent` -- trainable layers with
  full backpropagation (through time, for the recurrent ones).
* :mod:`repro.nn.network` -- a Keras-like :class:`Sequential` container with
  ``fit`` / ``predict`` / ``evaluate``.
* :mod:`repro.nn.model_zoo` -- the 23 architectures of Table I.
* :mod:`repro.nn.metrics` -- the paper's accuracy metric (mean absolute
  relative error) and its divergence test.
"""

from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import glorot_uniform, he_uniform, orthogonal, zeros
from repro.nn.layers import Dense, Layer
from repro.nn.losses import Loss, MeanAbsoluteError, MeanSquaredError, get_loss
from repro.nn.metrics import (
    absolute_relative_error,
    is_diverged,
    mean_absolute_relative_error,
)
from repro.nn.model_zoo import MODEL_NUMBERS, build_model, model_summary
from repro.nn.network import Sequential, TrainingHistory
from repro.nn.optimizers import SGD, Adam, Optimizer, get_optimizer
from repro.nn.recurrent import GRU, LSTM, SimpleRNN
from repro.nn.serialization import load_weights, save_weights

__all__ = [
    "Activation",
    "get_activation",
    "glorot_uniform",
    "he_uniform",
    "orthogonal",
    "zeros",
    "Dense",
    "Layer",
    "Loss",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "get_loss",
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "is_diverged",
    "MODEL_NUMBERS",
    "build_model",
    "model_summary",
    "Sequential",
    "TrainingHistory",
    "SGD",
    "Adam",
    "Optimizer",
    "get_optimizer",
    "SimpleRNN",
    "LSTM",
    "GRU",
    "load_weights",
    "save_weights",
]
