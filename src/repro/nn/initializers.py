"""Weight initializers.

Keras defaults are reproduced so the model zoo behaves like the paper's
setup: Dense kernels use Glorot uniform, recurrent kernels use orthogonal
initialization, and biases start at zero.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a ``(fan_in, fan_out)`` kernel."""
    if fan_in <= 0 or fan_out <= 0:
        raise ShapeError(f"fan_in/fan_out must be positive, got ({fan_in}, {fan_out})")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He uniform initialization, suited to ReLU layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ShapeError(f"fan_in/fan_out must be positive, got ({fan_in}, {fan_out})")
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Orthogonal initialization (Keras default for recurrent kernels)."""
    if rows <= 0 or cols <= 0:
        raise ShapeError(f"rows/cols must be positive, got ({rows}, {cols})")
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    # Make the decomposition unique (and the distribution uniform) by fixing
    # the signs of the diagonal of R.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
