"""Trainable layers: the :class:`Layer` protocol and :class:`Dense`.

Shapes follow the Keras convention the paper's models use:

* ``Dense`` consumes ``(batch, features)`` and produces ``(batch, units)``.
* Recurrent layers (see :mod:`repro.nn.recurrent`) consume
  ``(batch, timesteps, features)`` and produce the last hidden state
  ``(batch, units)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, ShapeError
from repro.nn.activations import Activation, get_activation
from repro.nn.initializers import glorot_uniform, zeros


class Layer:
    """Base class for trainable layers.

    Subclasses implement ``build`` (allocate parameters once the input
    dimension is known), ``forward`` and ``backward``.  Parameters and their
    gradients live in the ``params`` / ``grads`` dicts so optimizers can
    treat all layers uniformly.
    """

    #: rank of the input array this layer expects (2 for Dense, 3 for RNNs)
    input_rank: int = 2

    def __init__(self, units: int, activation: str | Activation = "linear") -> None:
        if units <= 0:
            raise ShapeError(f"units must be positive, got {units}")
        self.units = int(units)
        self.activation = get_activation(activation)
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.built = False
        self._cache: dict[str, np.ndarray] = {}

    # -- lifecycle ---------------------------------------------------------
    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads and return the gradient w.r.t. input."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------
    @property
    def output_dim(self) -> int:
        return self.units

    def parameter_count(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def zero_grads(self) -> None:
        for name, p in self.params.items():
            self.grads[name] = np.zeros_like(p)

    def _require_built(self) -> None:
        if not self.built:
            raise ModelError(f"{type(self).__name__} used before build()")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(units={self.units}, "
            f"activation={self.activation.name!r})"
        )


class Dense(Layer):
    """Fully connected layer: ``y = activation(x @ W + b)``."""

    input_rank = 2

    def build(self, input_dim: int, rng: np.random.Generator) -> None:
        if input_dim <= 0:
            raise ShapeError(f"input_dim must be positive, got {input_dim}")
        self.input_dim = int(input_dim)
        self.params = {
            "W": glorot_uniform(rng, input_dim, self.units),
            "b": zeros((self.units,)),
        }
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._require_built()
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ShapeError(
                f"Dense expected (batch, {self.input_dim}), got {x.shape}"
            )
        z = x @ self.params["W"] + self.params["b"]
        y = self.activation(z)
        if training:
            self._cache = {"x": x, "z": z, "y": y}
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if not self._cache:
            raise ModelError("backward() called before a training forward pass")
        x, z, y = self._cache["x"], self._cache["z"], self._cache["y"]
        if grad_out.shape != y.shape:
            raise ShapeError(
                f"grad shape {grad_out.shape} does not match output {y.shape}"
            )
        dz = grad_out * self.activation.backward(z, y)
        self.grads["W"] = x.T @ dz
        self.grads["b"] = dz.sum(axis=0)
        return dz @ self.params["W"].T
