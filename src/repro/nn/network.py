"""The :class:`Sequential` model container.

Mirrors the slice of the Keras API the paper relies on: stack layers, train
with a loss and an optimizer for N epochs on a chronological 60/20/20
train/validation/test split, then predict.

Recurrent-first models consume ``(batch, timesteps, features)`` windows; a
2-D input is automatically promoted to a single-timestep window so the same
telemetry matrix can be fed to every Table-I architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DivergedError, ModelError, ShapeError
from repro.nn.layers import Layer
from repro.nn.losses import Loss, get_loss
from repro.nn.metrics import is_diverged
from repro.nn.optimizers import Optimizer, get_optimizer
from repro.observability import get_observability


@dataclass
class TrainingHistory:
    """Per-epoch record of a ``fit`` call."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    epochs_run: int = 0
    diverged: bool = False

    @property
    def final_train_loss(self) -> float:
        if not self.train_loss:
            raise ModelError("no epochs were run")
        return self.train_loss[-1]

    @property
    def final_val_loss(self) -> float | None:
        return self.val_loss[-1] if self.val_loss else None


def train_val_test_split(
    x: np.ndarray,
    y: np.ndarray,
    fractions: tuple[float, float, float] = (0.6, 0.2, 0.2),
) -> tuple[np.ndarray, ...]:
    """Chronological 60/20/20 split (the paper's protocol, section V-G).

    No shuffling: throughput telemetry is a time series, so the validation
    and test sets are strictly later than the training set.  Returns
    ``(x_train, y_train, x_val, y_val, x_test, y_test)``.
    """
    if len(x) != len(y):
        raise ShapeError(f"x has {len(x)} rows but y has {len(y)}")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ConfigurationError(f"fractions must sum to 1, got {fractions}")
    if any(f < 0 for f in fractions):
        raise ConfigurationError(f"fractions must be non-negative: {fractions}")
    n = len(x)
    n_train = int(n * fractions[0])
    n_val = int(n * fractions[1])
    return (
        x[:n_train],
        y[:n_train],
        x[n_train : n_train + n_val],
        y[n_train : n_train + n_val],
        x[n_train + n_val :],
        y[n_train + n_val :],
    )


class Sequential:
    """A linear stack of layers with fit/predict/evaluate."""

    def __init__(self, layers: list[Layer], *, seed: int | None = None) -> None:
        if not layers:
            raise ModelError("Sequential needs at least one layer")
        self.layers = list(layers)
        self._rng = np.random.default_rng(seed)
        self.built = False
        self.input_dim: int | None = None
        metrics = get_observability().metrics
        self._m_epochs = metrics.counter(
            "repro_nn_epochs_total", "training epochs completed"
        )
        self._m_forward = metrics.counter(
            "repro_nn_forward_rows_total",
            "rows pushed through inference forward passes",
        )

    # -- construction ------------------------------------------------------
    def build(self, input_dim: int) -> None:
        """Allocate all layer parameters for a given feature count."""
        if self.built:
            return
        dim = int(input_dim)
        self.input_dim = dim
        for layer in self.layers:
            layer.build(dim, self._rng)
            dim = layer.output_dim
        self.built = True

    @property
    def output_dim(self) -> int:
        return self.layers[-1].output_dim

    def parameter_count(self) -> int:
        return sum(layer.parameter_count() for layer in self.layers)

    # -- shape handling ----------------------------------------------------
    def _adapt_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        first = self.layers[0]
        if first.input_rank == 3 and x.ndim == 2:
            # Promote tabular rows to single-timestep windows.
            x = x[:, None, :]
        if x.ndim != first.input_rank:
            raise ShapeError(
                f"{type(first).__name__} expects rank-{first.input_rank} "
                f"input, got shape {x.shape}"
            )
        return x

    @staticmethod
    def _adapt_target(y: np.ndarray, output_dim: int) -> np.ndarray:
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        if y.ndim != 2 or y.shape[1] != output_dim:
            raise ShapeError(
                f"targets must have shape (n, {output_dim}), got {y.shape}"
            )
        return y

    # -- inference ---------------------------------------------------------
    def predict(self, x: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Forward pass; returns ``(n, output_dim)`` predictions."""
        x = self._adapt_input(x)
        if not self.built:
            self.build(x.shape[-1])
        self._m_forward.inc(len(x))
        if batch_size is None or batch_size >= len(x):
            return self._forward(x, training=False)
        chunks = [
            self._forward(x[i : i + batch_size], training=False)
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def _forward(self, x: np.ndarray, training: bool) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def _backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    # -- training ----------------------------------------------------------
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 200,
        batch_size: int = 32,
        loss: str | Loss = "mse",
        optimizer: str | Optimizer = "sgd",
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        shuffle: bool = False,
        stop_on_divergence: bool = True,
        patience: int | None = None,
        sample_weight: np.ndarray | None = None,
    ) -> TrainingHistory:
        """Train with mini-batch gradient descent.

        The paper's defaults are 200 epochs and standard (plain) SGD; data is
        chronological so ``shuffle`` defaults off.  When training produces a
        non-finite loss the run stops and the history is flagged
        ``diverged`` (raising :class:`DivergedError` only if
        ``stop_on_divergence`` is False is never useful, so instead we never
        raise here -- Table II needs to *report* divergence, not crash).

        ``patience`` enables early stopping: training halts once the
        validation loss has not improved for that many consecutive epochs
        (requires ``validation_data``).

        ``sample_weight`` supplies per-row loss weights (the prioritized
        replay buffer's importance-sampling correction); the validation
        loss stays unweighted.  ``None`` is exactly the unweighted path.
        """
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if patience is not None:
            if patience < 1:
                raise ConfigurationError(
                    f"patience must be >= 1, got {patience}"
                )
            if validation_data is None:
                raise ConfigurationError(
                    "early stopping (patience) requires validation_data"
                )
        x = self._adapt_input(x)
        if not self.built:
            self.build(x.shape[-1])
        y = self._adapt_target(y, self.output_dim)
        if len(x) != len(y):
            raise ShapeError(f"x has {len(x)} rows but y has {len(y)}")
        if len(x) == 0:
            raise ShapeError("cannot fit on an empty dataset")
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=np.float64).ravel()
            if len(sample_weight) != len(x):
                raise ShapeError(
                    f"x has {len(x)} rows but sample_weight has "
                    f"{len(sample_weight)}"
                )
        loss_fn = get_loss(loss)
        opt = get_optimizer(optimizer)
        history = TrainingHistory()
        indices = np.arange(len(x))
        best_val = np.inf
        stale_epochs = 0
        for _ in range(epochs):
            if shuffle:
                self._rng.shuffle(indices)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, len(x), batch_size):
                batch_idx = indices[start : start + batch_size]
                xb, yb = x[batch_idx], y[batch_idx]
                wb = (
                    sample_weight[batch_idx]
                    if sample_weight is not None else None
                )
                pred = self._forward(xb, training=True)
                epoch_loss += loss_fn.value(pred, yb, wb)
                n_batches += 1
                self._backward(loss_fn.gradient(pred, yb, wb))
                self._apply_gradients(opt)
            mean_loss = epoch_loss / n_batches
            history.train_loss.append(mean_loss)
            history.epochs_run += 1
            if validation_data is not None:
                vx, vy = validation_data
                vp = self.predict(vx)
                history.val_loss.append(
                    loss_fn.value(vp, self._adapt_target(vy, self.output_dim))
                )
            if not np.isfinite(mean_loss):
                history.diverged = True
                if stop_on_divergence:
                    break
            if patience is not None:
                val = history.val_loss[-1]
                if val < best_val - 1e-12:
                    best_val = val
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= patience:
                        break
        self._m_epochs.inc(history.epochs_run)
        return history

    def _apply_gradients(self, optimizer: Optimizer) -> None:
        for i, layer in enumerate(self.layers):
            for name, param in layer.params.items():
                optimizer.apply(f"layer{i}/{name}", param, layer.grads[name])

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, *, loss: str | Loss = "mse"
    ) -> float:
        """Loss value on a held-out set."""
        pred = self.predict(x)
        return get_loss(loss).value(pred, self._adapt_target(y, self.output_dim))

    def check_divergence(self, x: np.ndarray, y: np.ndarray) -> bool:
        """Paper-style divergence test on held-out data (see Table II)."""
        pred = self.predict(x)
        return is_diverged(pred, self._adapt_target(y, self.output_dim))

    def require_converged(self, x: np.ndarray, y: np.ndarray) -> None:
        """Raise :class:`DivergedError` if the model diverged on ``(x, y)``."""
        if self.check_divergence(x, y):
            raise DivergedError(
                "model predictions are constant or non-finite on held-out data"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"
