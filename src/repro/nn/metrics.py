"""Evaluation metrics used by the paper's model comparison (Table II/III).

The paper scores models by the *mean and standard deviation of the absolute
relative error* between predicted and target throughput, and marks a model
"Diverged" when it "completely failed to capture the mean and variation of
the target value[,] usually resulting in the same prediction happening over
and over again."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: guard against division by ~0 targets when computing relative error
_EPS = 1e-12


def absolute_relative_error(
    y_pred: np.ndarray, y_true: np.ndarray
) -> np.ndarray:
    """Elementwise ``|pred - true| / |true|`` (as a fraction, not percent)."""
    y_pred = np.asarray(y_pred, dtype=np.float64)
    y_true = np.asarray(y_true, dtype=np.float64)
    if y_pred.shape != y_true.shape:
        raise ShapeError(
            f"prediction shape {y_pred.shape} != target shape {y_true.shape}"
        )
    return np.abs(y_pred - y_true) / np.maximum(np.abs(y_true), _EPS)


def mean_absolute_relative_error(
    y_pred: np.ndarray, y_true: np.ndarray
) -> tuple[float, float]:
    """Mean and standard deviation of the absolute relative error, in percent.

    Returns the ``(mean, std)`` pair reported in Tables II and III.
    """
    are = absolute_relative_error(y_pred, y_true)
    return float(np.mean(are) * 100.0), float(np.std(are) * 100.0)


def signed_relative_error(y_pred: np.ndarray, y_true: np.ndarray) -> float:
    """Mean signed relative error ``(true - pred) / |true|``.

    Positive means the model under-predicts on average; the paper uses this
    sign to decide whether the MAE adjustment should be added or subtracted
    (section V-G).
    """
    y_pred = np.asarray(y_pred, dtype=np.float64)
    y_true = np.asarray(y_true, dtype=np.float64)
    if y_pred.shape != y_true.shape:
        raise ShapeError(
            f"prediction shape {y_pred.shape} != target shape {y_true.shape}"
        )
    return float(
        np.mean((y_true - y_pred) / np.maximum(np.abs(y_true), _EPS))
    )


def is_diverged(
    y_pred: np.ndarray,
    y_true: np.ndarray,
    *,
    variance_ratio_threshold: float = 1e-3,
) -> bool:
    """Whether a model's predictions are useless in the paper's sense.

    A model is considered diverged if its predictions contain non-finite
    values, or if they are (nearly) constant while the targets are not --
    i.e. the ratio of prediction variance to target variance falls below
    ``variance_ratio_threshold``.
    """
    y_pred = np.asarray(y_pred, dtype=np.float64)
    y_true = np.asarray(y_true, dtype=np.float64)
    if not np.all(np.isfinite(y_pred)):
        return True
    target_var = float(np.var(y_true))
    if target_var <= _EPS:
        # Constant targets: any finite prediction is as good as any other.
        return False
    pred_var = float(np.var(y_pred))
    return (pred_var / target_var) < variance_ratio_threshold


def prediction_accuracy_percent(y_pred: np.ndarray, y_true: np.ndarray) -> float:
    """The paper's "accuracy": ``100 - mean absolute relative error``.

    Table III reads errors this way, e.g. "no worse than 56.85% prediction
    accuracy ... with an average accuracy of about 81.12%".  Clamped at 0.
    """
    mare, _ = mean_absolute_relative_error(y_pred, y_true)
    return max(0.0, 100.0 - mare)
