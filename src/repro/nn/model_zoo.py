"""The 23 candidate architectures of Table I.

Each architecture is described as a sequence of :class:`LayerSpec` entries
whose widths are multiples of ``Z``, the number of input performance metrics
(Z=6 for the Bluesky/BELLE II experiment, Z=13 for the CERN EOS trace).  The
paper's notation "16Z (Dense) ReLU" becomes ``LayerSpec("dense", 16, "relu")``.

Two rows of the published table are ambiguous in the scanned copy (models 8
and 10 share their printed row text with models 9 and 11); we resolve them
as the 4-deep and 2-deep variants so each model is distinct, matching the
training-time ordering of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.nn.layers import Dense, Layer
from repro.nn.network import Sequential
from repro.nn.recurrent import GRU, LSTM, SimpleRNN

_LAYER_KINDS: dict[str, type[Layer]] = {
    "dense": Dense,
    "lstm": LSTM,
    "gru": GRU,
    "simplernn": SimpleRNN,
}


@dataclass(frozen=True)
class LayerSpec:
    """One row of a Table-I architecture description.

    ``width`` is a multiplier on Z; ``width=None`` means the literal
    1-neuron output head.
    """

    kind: str
    width: int | None
    activation: str

    def units(self, z: int) -> int:
        return 1 if self.width is None else self.width * z

    def describe(self, z: int) -> str:
        kind_name = {
            "dense": "Dense",
            "lstm": "LSTM",
            "gru": "GRU",
            "simplernn": "SimpleRNN",
        }[self.kind]
        return f"{self.units(z)} ({kind_name}) {self.activation.capitalize()}"

    def build(self, z: int) -> Layer:
        try:
            cls = _LAYER_KINDS[self.kind]
        except KeyError:
            raise ModelError(f"unknown layer kind {self.kind!r}") from None
        return cls(self.units(z), activation=self.activation)


def _d(width: int | None, act: str = "relu") -> LayerSpec:
    return LayerSpec("dense", width, act)


def _r(kind: str, width: int = 1, act: str = "relu") -> LayerSpec:
    return LayerSpec(kind, width, act)


#: Table I, keyed by model number.
ARCHITECTURES: dict[int, tuple[LayerSpec, ...]] = {
    1: (_d(16), _d(8), _d(4), _d(None, "linear")),
    2: (_d(16), _d(8), _d(None, "relu")),
    3: (_d(16), _d(8), _d(4), _d(None, "relu")),
    4: (_d(16), _d(8), _d(None, "linear")),
    5: (
        _d(16, "linear"),
        _d(8, "linear"),
        _d(4, "linear"),
        _d(1, "linear"),
        _d(None, "relu"),
    ),
    6: (_d(16), _d(16), _d(16), _d(16), _d(None, "relu")),
    7: (_d(16), _d(16), _d(16), _d(16), _d(16), _d(None, "relu")),
    8: (_d(1), _d(1), _d(1), _d(1), _d(None, "relu")),
    9: (_d(1), _d(1), _d(1), _d(1), _d(1), _d(None, "relu")),
    10: (_d(1), _d(1), _d(None, "linear")),
    11: (_d(1), _d(None, "linear")),
    12: (_r("lstm"), _d(None, "linear")),
    13: (_r("gru"), _d(None, "linear")),
    14: (_r("simplernn"), _d(None, "linear")),
    15: (_r("gru"), _d(1), _d(None, "linear")),
    16: (_r("gru"), _d(1), _d(1), _d(None, "linear")),
    17: (_r("gru"), _d(4), _d(1), _d(None, "linear")),
    18: (_r("simplernn"), _d(4), _d(1), _d(None, "linear")),
    19: (_r("simplernn"), _d(1), _d(1), _d(1), _d(None, "linear")),
    20: (_r("simplernn"), _d(1), _d(None, "linear")),
    21: (_r("lstm"), _d(1), _d(None, "linear")),
    22: (_r("lstm"), _d(1), _d(1), _d(None, "linear")),
    23: (_r("lstm"), _d(4), _d(1), _d(None, "linear")),
}

#: All valid Table-I model numbers, ascending.
MODEL_NUMBERS: tuple[int, ...] = tuple(sorted(ARCHITECTURES))

#: The architecture the paper selects for the live system (section V-G).
SELECTED_MODEL = 1

#: Models the paper reports as diverged in Table II.
PAPER_DIVERGED_MODELS = (2, 5)


def build_model(
    model_number: int, z: int, *, seed: int | None = None
) -> Sequential:
    """Instantiate Table-I model ``model_number`` for ``z`` input features."""
    try:
        specs = ARCHITECTURES[model_number]
    except KeyError:
        raise ModelError(
            f"unknown model number {model_number}; valid: 1..23"
        ) from None
    if z <= 0:
        raise ModelError(f"z (feature count) must be positive, got {z}")
    return Sequential([spec.build(z) for spec in specs], seed=seed)


def is_recurrent(model_number: int) -> bool:
    """Whether the architecture starts with a recurrent layer."""
    try:
        specs = ARCHITECTURES[model_number]
    except KeyError:
        raise ModelError(
            f"unknown model number {model_number}; valid: 1..23"
        ) from None
    return specs[0].kind != "dense"


def model_summary(model_number: int, z: int) -> str:
    """Human-readable architecture string in the paper's Table-I format."""
    try:
        specs = ARCHITECTURES[model_number]
    except KeyError:
        raise ModelError(
            f"unknown model number {model_number}; valid: 1..23"
        ) from None
    return ", ".join(spec.describe(z) for spec in specs)
