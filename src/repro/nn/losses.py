"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, ShapeError


def _check_shapes(y_pred: np.ndarray, y_true: np.ndarray) -> None:
    if y_pred.shape != y_true.shape:
        raise ShapeError(
            f"prediction shape {y_pred.shape} != target shape {y_true.shape}"
        )


def _row_weights(weight: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Per-row weights shaped to broadcast over the output columns."""
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim == 1:
        w = w[:, None]
    if w.shape[0] != y_pred.shape[0]:
        raise ShapeError(
            f"weight has {w.shape[0]} rows but predictions have "
            f"{y_pred.shape[0]}"
        )
    return w


class Loss:
    """Base class: value + gradient w.r.t. predictions.

    ``weight`` optionally carries per-row importance weights (prioritized
    replay's bias correction); ``None`` is the exact unweighted
    computation.
    """

    name = "loss"

    def value(
        self,
        y_pred: np.ndarray,
        y_true: np.ndarray,
        weight: np.ndarray | None = None,
    ) -> float:
        raise NotImplementedError

    def gradient(
        self,
        y_pred: np.ndarray,
        y_true: np.ndarray,
        weight: np.ndarray | None = None,
    ) -> np.ndarray:
        raise NotImplementedError


class MeanSquaredError(Loss):
    """0.5-free MSE: ``mean((pred - true)**2)``; grad is ``2*(pred-true)/N``."""

    name = "mse"

    def value(
        self,
        y_pred: np.ndarray,
        y_true: np.ndarray,
        weight: np.ndarray | None = None,
    ) -> float:
        _check_shapes(y_pred, y_true)
        # Divergence (overflow to inf) is a reportable outcome, not a bug:
        # Table II marks diverged models explicitly.
        with np.errstate(over="ignore", invalid="ignore"):
            if weight is None:
                return float(np.mean((y_pred - y_true) ** 2))
            w = _row_weights(weight, y_pred)
            return float(np.mean(w * (y_pred - y_true) ** 2))

    def gradient(
        self,
        y_pred: np.ndarray,
        y_true: np.ndarray,
        weight: np.ndarray | None = None,
    ) -> np.ndarray:
        _check_shapes(y_pred, y_true)
        if weight is None:
            return 2.0 * (y_pred - y_true) / y_pred.size
        w = _row_weights(weight, y_pred)
        return 2.0 * w * (y_pred - y_true) / y_pred.size


class MeanAbsoluteError(Loss):
    """MAE: ``mean(|pred - true|)``; subgradient sign at zero is 0."""

    name = "mae"

    def value(
        self,
        y_pred: np.ndarray,
        y_true: np.ndarray,
        weight: np.ndarray | None = None,
    ) -> float:
        _check_shapes(y_pred, y_true)
        if weight is None:
            return float(np.mean(np.abs(y_pred - y_true)))
        w = _row_weights(weight, y_pred)
        return float(np.mean(w * np.abs(y_pred - y_true)))

    def gradient(
        self,
        y_pred: np.ndarray,
        y_true: np.ndarray,
        weight: np.ndarray | None = None,
    ) -> np.ndarray:
        _check_shapes(y_pred, y_true)
        if weight is None:
            return np.sign(y_pred - y_true) / y_pred.size
        w = _row_weights(weight, y_pred)
        return w * np.sign(y_pred - y_true) / y_pred.size


_REGISTRY: dict[str, type[Loss]] = {
    MeanSquaredError.name: MeanSquaredError,
    MeanAbsoluteError.name: MeanAbsoluteError,
}


def get_loss(name: str | Loss) -> Loss:
    """Resolve a loss by name (``"mse"``, ``"mae"``)."""
    if isinstance(name, Loss):
        return name
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelError(f"unknown loss {name!r}; known: {known}") from None
