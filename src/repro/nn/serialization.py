"""Weight persistence for :class:`~repro.nn.network.Sequential` models.

The Geomancy engine retrains frequently but the facade supports
checkpointing between runs; weights are stored as a flat ``.npz`` keyed
``layer{i}/{param}`` plus a ``__meta__`` header carrying the format
version, the layer schema (class, shape and dtype of every parameter)
and a sha256 checksum over all array payloads.

Durability contract (the recovery subsystem depends on it):

* **Atomic writes** -- the archive is staged next to its destination,
  fsynced, and renamed into place, so a crash mid-save can never leave a
  half-written file where a checkpoint used to be.
* **Corruption detection** -- a truncated, bit-flipped, or
  version-incompatible file raises :class:`CheckpointCorruptError` on
  load instead of a raw numpy/zipfile error (or worse, a silent bad
  load).  Architecture mismatches (wrong key set) remain plain
  :class:`ModelError`, since those indicate caller error, not damage.
* **Optimizer state** -- pass ``optimizer=`` to both functions to carry
  momentum/moment accumulators across a restart (``optstate/{slot}/{key}``
  arrays inside the same archive).

Files written by older versions (no ``__meta__``) still load, with the
legacy semantics (cast to float64, no checksum).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import CheckpointCorruptError, ModelError
from repro.nn.network import Sequential
from repro.nn.optimizers import Optimizer

FORMAT_NAME = "geomancy-weights"
FORMAT_VERSION = 2

_META_KEY = "__meta__"
_OPT_PREFIX = "optstate/"


def _weight_arrays(model: Sequential) -> dict[str, np.ndarray]:
    return {
        f"layer{i}/{name}": param
        for i, layer in enumerate(model.layers)
        for name, param in layer.params.items()
    }


def _checksum(arrays: dict[str, np.ndarray]) -> str:
    """sha256 over every array's name, dtype, shape, and raw bytes."""
    digest = hashlib.sha256()
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def _layer_schema(model: Sequential) -> list[dict]:
    return [
        {
            "class": type(layer).__name__,
            "params": {
                name: {"shape": list(param.shape), "dtype": str(param.dtype)}
                for name, param in layer.params.items()
            },
        }
        for layer in model.layers
    ]


def atomic_write_npz(path: str | os.PathLike, arrays: dict[str, np.ndarray]) -> Path:
    """Write an ``.npz`` archive atomically (temp + fsync + rename)."""
    dest = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=dest.parent if str(dest.parent) else ".",
        prefix=f".{dest.name}.", suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, dest)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(dest.parent)
    return dest


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        dir_fd = os.open(directory if str(directory) else ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def save_weights(
    model: Sequential,
    path: str | os.PathLike,
    *,
    optimizer: Optimizer | None = None,
) -> None:
    """Atomically write a built model's parameters (and optimizer state).

    The archive lands at ``path`` fully written or not at all; a crash
    mid-save leaves any previous file at ``path`` untouched.
    """
    if not model.built:
        raise ModelError("cannot save an unbuilt model; call build() or fit() first")
    arrays = _weight_arrays(model)
    if optimizer is not None:
        for key, value in optimizer.state_dict().items():
            arrays[f"{_OPT_PREFIX}{key}"] = value
    meta = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "layers": _layer_schema(model),
        "input_dim": model.input_dim,
        "optimizer": type(optimizer).__name__ if optimizer is not None else None,
        "checksum": {"algo": "sha256", "digest": _checksum(arrays)},
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    atomic_write_npz(path, arrays)


def _load_archive(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Read every array in the archive, mapping damage to corrupt errors."""
    try:
        with np.load(path) as data:
            return {key: np.array(data[key]) for key in data.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, EOFError, OSError, KeyError) as exc:
        raise CheckpointCorruptError(
            f"weight file {os.fspath(path)!r} is unreadable "
            f"({type(exc).__name__}: {exc})"
        ) from exc


def _parse_meta(arrays: dict[str, np.ndarray], path: str) -> dict | None:
    raw = arrays.pop(_META_KEY, None)
    if raw is None:
        return None
    try:
        meta = json.loads(bytes(raw).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(
            f"weight file {path!r} has an unreadable header"
        ) from exc
    if meta.get("format") != FORMAT_NAME:
        raise CheckpointCorruptError(
            f"weight file {path!r} declares format "
            f"{meta.get('format')!r}, expected {FORMAT_NAME!r}"
        )
    if meta.get("version") != FORMAT_VERSION:
        raise CheckpointCorruptError(
            f"weight file {path!r} has format version "
            f"{meta.get('version')!r}; this build reads {FORMAT_VERSION}"
        )
    return meta


def load_weights(
    model: Sequential,
    path: str | os.PathLike,
    *,
    optimizer: Optimizer | None = None,
) -> None:
    """Load parameters saved by :func:`save_weights` into a built model.

    The model must already be built with the same architecture; the file's
    checksum is verified first, then shapes and dtypes are checked
    parameter-by-parameter.  Damage raises
    :class:`~repro.errors.CheckpointCorruptError`; an honest architecture
    mismatch (different key set) raises :class:`ModelError`.  Passing
    ``optimizer=`` restores its accumulated state from the archive (a
    no-op when the file carries none).
    """
    if not model.built:
        raise ModelError("build the model (with the right input_dim) before loading")
    path_str = os.fspath(path)
    arrays = _load_archive(path)
    meta = _parse_meta(arrays, path_str)
    if meta is not None:
        digest = _checksum(arrays)
        stored = meta.get("checksum", {}).get("digest")
        if digest != stored:
            raise CheckpointCorruptError(
                f"weight file {path_str!r} failed checksum verification "
                f"(stored {stored!r}, computed {digest!r}); the file is "
                "truncated or bit-flipped"
            )
    opt_state = {
        key[len(_OPT_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_OPT_PREFIX)
    }
    weights = {
        key: value for key, value in arrays.items()
        if not key.startswith(_OPT_PREFIX)
    }
    expected = {
        f"layer{i}/{name}"
        for i, layer in enumerate(model.layers)
        for name in layer.params
    }
    stored_keys = set(weights)
    if expected != stored_keys:
        missing = expected - stored_keys
        extra = stored_keys - expected
        raise ModelError(
            f"weight file does not match architecture "
            f"(missing={sorted(missing)}, unexpected={sorted(extra)})"
        )
    legacy = meta is None
    for i, layer in enumerate(model.layers):
        for name in layer.params:
            arr = weights[f"layer{i}/{name}"]
            current = layer.params[name]
            if arr.shape != current.shape:
                raise CheckpointCorruptError(
                    f"layer{i}/{name}: stored shape {arr.shape} != "
                    f"model shape {current.shape}"
                )
            if legacy:
                arr = arr.astype(np.float64)
            elif arr.dtype != current.dtype:
                raise CheckpointCorruptError(
                    f"layer{i}/{name}: stored dtype {arr.dtype} != "
                    f"model dtype {current.dtype}"
                )
            layer.params[name] = arr
    if optimizer is not None and opt_state:
        declared = meta.get("optimizer") if meta is not None else None
        if declared is not None and declared != type(optimizer).__name__:
            raise ModelError(
                f"archive stores {declared} state but a "
                f"{type(optimizer).__name__} was supplied"
            )
        optimizer.load_state_dict(opt_state)
