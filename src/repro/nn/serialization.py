"""Weight persistence for :class:`~repro.nn.network.Sequential` models.

The Geomancy engine retrains frequently but the facade supports
checkpointing between runs; weights are stored as a flat ``.npz`` keyed
``layer{i}/{param}``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ModelError
from repro.nn.network import Sequential


def save_weights(model: Sequential, path: str | os.PathLike) -> None:
    """Write all layer parameters of a built model to ``path`` (npz)."""
    if not model.built:
        raise ModelError("cannot save an unbuilt model; call build() or fit() first")
    arrays = {
        f"layer{i}/{name}": param
        for i, layer in enumerate(model.layers)
        for name, param in layer.params.items()
    }
    np.savez(path, **arrays)


def load_weights(model: Sequential, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_weights` into a built model.

    The model must already be built with the same architecture; shapes are
    checked parameter-by-parameter.
    """
    if not model.built:
        raise ModelError("build the model (with the right input_dim) before loading")
    with np.load(path) as data:
        expected = {
            f"layer{i}/{name}"
            for i, layer in enumerate(model.layers)
            for name in layer.params
        }
        stored = set(data.files)
        if expected != stored:
            missing = expected - stored
            extra = stored - expected
            raise ModelError(
                f"weight file does not match architecture "
                f"(missing={sorted(missing)}, unexpected={sorted(extra)})"
            )
        for i, layer in enumerate(model.layers):
            for name in layer.params:
                arr = data[f"layer{i}/{name}"]
                if arr.shape != layer.params[name].shape:
                    raise ModelError(
                        f"layer{i}/{name}: stored shape {arr.shape} != "
                        f"model shape {layer.params[name].shape}"
                    )
                layer.params[name] = arr.astype(np.float64)
