"""Optimizers: standard gradient descent (the paper's choice) and Adam.

The paper: "all models ... use standard gradient descent as an optimization
function.  We tested out the Adam optimizer but it ended up giving us a
higher mean and standard deviation of the absolute relative error."  Both are
provided so that comparison can be reproduced (see the ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ModelError


class Optimizer:
    """Base class.  State is keyed by a caller-supplied parameter key so one
    optimizer instance can serve every layer of a network."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)

    def apply(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Update ``param`` in place given its gradient."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear accumulated state (momentum/moments)."""

    def state_dict(self) -> dict[str, np.ndarray]:
        """Accumulated state as flat ``slot/param-key`` arrays.

        The mapping is suitable for checkpointing alongside model weights
        (see :mod:`repro.nn.serialization`); scalar slots are stored as
        0-d arrays.  Stateless optimizers return an empty dict.
        """
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        if state:
            raise ModelError(
                f"{type(self).__name__} carries no state but got keys "
                f"{sorted(state)}"
            )


def _split_slots(
    state: dict[str, np.ndarray], expected: tuple[str, ...], owner: str
) -> dict[str, dict[str, np.ndarray]]:
    """Group flat ``slot/param-key`` state by slot, validating slot names."""
    slots: dict[str, dict[str, np.ndarray]] = {name: {} for name in expected}
    for key, value in state.items():
        slot, sep, param_key = key.partition("/")
        if not sep or slot not in slots:
            raise ModelError(
                f"{owner} state has unexpected key {key!r}; "
                f"expected slots {expected}"
            )
        slots[slot][param_key] = value
    return slots


class SGD(Optimizer):
    """Standard gradient descent with optional momentum and gradient clipping.

    ``clipnorm`` caps the per-parameter gradient L2 norm; the paper's tiny
    models train stably without it, but throughput targets are heavy-tailed
    enough that callers may want it.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        clipnorm: float | None = None,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if clipnorm is not None and clipnorm <= 0:
            raise ConfigurationError(f"clipnorm must be positive, got {clipnorm}")
        self.momentum = float(momentum)
        self.clipnorm = clipnorm
        self._velocity: dict[str, np.ndarray] = {}

    def apply(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if grad.shape != param.shape:
            raise ModelError(
                f"gradient shape {grad.shape} != parameter shape {param.shape}"
            )
        if self.clipnorm is not None:
            norm = float(np.linalg.norm(grad))
            if norm > self.clipnorm:
                grad = grad * (self.clipnorm / norm)
        if self.momentum:
            v = self._velocity.get(key)
            if v is None:
                v = np.zeros_like(param)
            v = self.momentum * v - self.learning_rate * grad
            self._velocity[key] = v
            param += v
        else:
            param -= self.learning_rate * grad

    def reset(self) -> None:
        self._velocity.clear()

    def state_dict(self) -> dict[str, np.ndarray]:
        return {
            f"velocity/{key}": np.array(value, dtype=np.float64)
            for key, value in self._velocity.items()
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        slots = _split_slots(state, ("velocity",), "SGD")
        self._velocity = {
            key: np.array(value, dtype=np.float64)
            for key, value in slots["velocity"].items()
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba).  Included because the paper explicitly compared
    against it and found SGD produced lower error on their telemetry."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("beta1/beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def apply(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if grad.shape != param.shape:
            raise ModelError(
                f"gradient shape {grad.shape} != parameter shape {param.shape}"
            )
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param)
            self._v[key] = np.zeros_like(param)
            self._t[key] = 0
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        self._m[key], self._v[key] = m, v
        m_hat = m / (1.0 - self.beta1**t)
        v_hat = v / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t.clear()

    def state_dict(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {}
        for key, value in self._m.items():
            out[f"m/{key}"] = np.array(value, dtype=np.float64)
        for key, value in self._v.items():
            out[f"v/{key}"] = np.array(value, dtype=np.float64)
        for key, value in self._t.items():
            out[f"t/{key}"] = np.array(value, dtype=np.int64)
        return out

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        slots = _split_slots(state, ("m", "v", "t"), "Adam")
        if set(slots["m"]) != set(slots["v"]) or set(slots["m"]) != set(slots["t"]):
            raise ModelError("Adam state slots m/v/t cover different keys")
        self._m = {
            key: np.array(value, dtype=np.float64)
            for key, value in slots["m"].items()
        }
        self._v = {
            key: np.array(value, dtype=np.float64)
            for key, value in slots["v"].items()
        }
        self._t = {key: int(value) for key, value in slots["t"].items()}


_REGISTRY: dict[str, type[Optimizer]] = {"sgd": SGD, "adam": Adam}


def get_optimizer(name: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer by name with constructor keyword arguments."""
    if isinstance(name, Optimizer):
        return name
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelError(f"unknown optimizer {name!r}; known: {known}") from None
    return cls(**kwargs)
