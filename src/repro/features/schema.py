"""Field registry for access telemetry.

The CERN EOS access logs describe each file interaction with 32 values
(paper section V-D).  This module catalogues the fields the paper discusses,
records their expected correlation sign with throughput (used when planting
correlations in the synthetic EOS trace, and asserted when reproducing
Fig. 4), and names the two feature sets the paper uses:

* :data:`LIVE_FEATURES` -- the six features used on the live Bluesky
  system (Z = 6).
* :data:`EOS_MODEL_FEATURES` -- the thirteen features used when training on
  the CERN EOS trace (Z = 13, section VIII).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FeatureError


@dataclass(frozen=True)
class FieldSpec:
    """Metadata for one telemetry field.

    ``expected_sign`` is the qualitative correlation with throughput the
    paper reports in Fig. 4: +1 positively correlated, -1 negatively,
    0 roughly uncorrelated.
    """

    name: str
    description: str
    expected_sign: int
    categorical: bool = False


#: The EOS access-log fields discussed in the paper (a representative subset
#: of the 32 raw values; every field the paper names appears here).
EOS_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("rb", "bytes read during the access", +1),
    FieldSpec("wb", "bytes written during the access", +1),
    FieldSpec("ots", "open timestamp, seconds part", +1),
    FieldSpec("otms", "open timestamp, milliseconds part", 0),
    FieldSpec("cts", "close timestamp, seconds part", +1),
    FieldSpec("ctms", "close timestamp, milliseconds part", 0),
    FieldSpec("fid", "EOS file id", 0),
    FieldSpec("fsid", "file-system (storage device) id", 0),
    FieldSpec("rt", "time spent in read calls", -1),
    FieldSpec("wt", "time spent in write calls", -1),
    FieldSpec("nrc", "number of read calls", -1),
    FieldSpec("nwc", "number of write calls", -1),
    FieldSpec("osize", "file size at open", +1),
    FieldSpec("csize", "file size at close", +1),
    FieldSpec("sfwdb", "seek-forward bytes", 0),
    FieldSpec("sbwdb", "seek-backward bytes", 0),
    FieldSpec("nfwds", "number of forward seeks", 0),
    FieldSpec("nbwds", "number of backward seeks", 0),
    FieldSpec("secgrps", "client security group", 0, categorical=True),
    FieldSpec("secrole", "client security role", 0, categorical=True),
    FieldSpec("secapp", "application identifier", 0, categorical=True),
    FieldSpec("day", "day of week of the access", 0),
)

_FIELDS_BY_NAME = {f.name: f for f in EOS_FIELDS}

#: The six features used for the live Bluesky experiment (Z = 6).
LIVE_FEATURES: tuple[str, ...] = ("rb", "wb", "ots", "otms", "cts", "ctms")

#: Identity features appended by the live pipeline (file and device ids,
#: paper: "File ID (fid)" and "File System ID (fsid)").
IDENTITY_FEATURES: tuple[str, ...] = ("fid", "fsid")

#: The thirteen features used for the CERN EOS model (Z = 13).
EOS_MODEL_FEATURES: tuple[str, ...] = (
    "rb", "wb", "ots", "otms", "cts", "ctms", "fid", "fsid",
    "osize", "csize", "nrc", "sfwdb", "day",
)


def field(name: str) -> FieldSpec:
    """Look up a field's metadata by name."""
    try:
        return _FIELDS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_FIELDS_BY_NAME))
        raise FeatureError(f"unknown field {name!r}; known: {known}") from None


def validate_feature_names(names: tuple[str, ...] | list[str]) -> None:
    """Raise :class:`FeatureError` if any name is not a registered field."""
    for name in names:
        field(name)
