"""Normalization to [0, 1] (paper section V-E).

"The numerical data is normalized by the Interface Daemon to decimal values
between zero and one, and the categorical data into numerical parameters in
the same range."
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError


class MinMaxNormalizer:
    """Per-column min-max scaling to [0, 1] with inverse transform.

    Constant columns map to 0.5 (any constant in [0, 1] would do; the
    midpoint keeps them away from the ReLU dead zone).  Transforming data
    outside the fitted range extrapolates linearly, so freshly arriving
    telemetry slightly beyond historical bounds does not get clipped.
    """

    def __init__(self) -> None:
        self._min: np.ndarray | None = None
        self._range: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._min is not None

    def fit(self, x: np.ndarray) -> "MinMaxNormalizer":
        x = self._as_matrix(x)
        if len(x) == 0:
            raise FeatureError("cannot fit normalizer on empty data")
        self._min = x.min(axis=0)
        self._range = x.max(axis=0) - self._min
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = self._as_matrix(x)
        if x.shape[1] != self._min.shape[0]:
            raise FeatureError(
                f"fitted on {self._min.shape[0]} columns, got {x.shape[1]}"
            )
        out = np.empty_like(x)
        nonconstant = self._range > 0
        out[:, nonconstant] = (
            x[:, nonconstant] - self._min[nonconstant]
        ) / self._range[nonconstant]
        out[:, ~nonconstant] = 0.5
        return out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = self._as_matrix(x)
        if x.shape[1] != self._min.shape[0]:
            raise FeatureError(
                f"fitted on {self._min.shape[0]} columns, got {x.shape[1]}"
            )
        out = np.empty_like(x)
        nonconstant = self._range > 0
        out[:, nonconstant] = (
            x[:, nonconstant] * self._range[nonconstant] + self._min[nonconstant]
        )
        out[:, ~nonconstant] = self._min[~nonconstant]
        return out

    def state_dict(self) -> dict:
        """JSON-serializable fitted bounds (floats round-trip exactly)."""
        return {
            "min": self._min.tolist() if self._min is not None else None,
            "range": self._range.tolist() if self._range is not None else None,
        }

    def load_state_dict(self, state: dict) -> None:
        self._min = (
            np.array(state["min"], dtype=np.float64)
            if state["min"] is not None else None
        )
        self._range = (
            np.array(state["range"], dtype=np.float64)
            if state["range"] is not None else None
        )

    @staticmethod
    def _as_matrix(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        if x.ndim != 2:
            raise FeatureError(f"expected 1-D or 2-D data, got shape {x.shape}")
        return x

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise FeatureError("normalizer used before fit()")


class RunningNormalizer:
    """Per-column standardization with incrementally updated statistics.

    Online-learning counterpart to :class:`MinMaxNormalizer`: instead of
    freezing min/max bounds at fit time, it keeps Welford/Chan running
    mean and variance aggregates that :meth:`partial_fit` merges batch by
    batch, so normalization tracks the telemetry distribution without a
    refit-on-window pass.  ``transform`` standardizes to zero mean / unit
    variance; constant columns map to 0.0 (the distribution's center,
    mirroring the min-max normalizer's midpoint convention).

    The merged statistics are mathematically identical to a batch refit
    over the concatenation of all batches (Chan et al.'s parallel
    variance update), and numerically agree within ~1e-9 relative error,
    which the hypothesis suite pins down.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean: np.ndarray | None = None
        self._m2: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._count > 0

    @property
    def count(self) -> int:
        """Rows absorbed so far."""
        return self._count

    @property
    def mean(self) -> np.ndarray:
        self._require_fitted()
        return self._mean.copy()

    @property
    def variance(self) -> np.ndarray:
        """Population variance per column."""
        self._require_fitted()
        return self._m2 / self._count

    def fit(self, x: np.ndarray) -> "RunningNormalizer":
        """Reset the statistics and seed them from ``x``."""
        x = MinMaxNormalizer._as_matrix(x)
        if len(x) == 0:
            raise FeatureError("cannot fit normalizer on empty data")
        self._count = 0
        self._mean = None
        self._m2 = None
        return self.partial_fit(x)

    def partial_fit(self, x: np.ndarray) -> "RunningNormalizer":
        """Merge a batch into the running statistics (Chan's update)."""
        x = MinMaxNormalizer._as_matrix(x)
        m = len(x)
        if m == 0:
            return self
        batch_mean = x.mean(axis=0)
        batch_m2 = np.square(x - batch_mean).sum(axis=0)
        if self._count == 0:
            self._count = m
            self._mean = batch_mean
            self._m2 = batch_m2
            return self
        if x.shape[1] != self._mean.shape[0]:
            raise FeatureError(
                f"fitted on {self._mean.shape[0]} columns, got {x.shape[1]}"
            )
        n = self._count
        total = n + m
        delta = batch_mean - self._mean
        self._mean = self._mean + delta * (m / total)
        self._m2 = self._m2 + batch_m2 + np.square(delta) * (n * m / total)
        self._count = total
        return self

    def _std(self) -> np.ndarray:
        return np.sqrt(self._m2 / self._count)

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = MinMaxNormalizer._as_matrix(x)
        if x.shape[1] != self._mean.shape[0]:
            raise FeatureError(
                f"fitted on {self._mean.shape[0]} columns, got {x.shape[1]}"
            )
        std = self._std()
        out = np.empty_like(x)
        nonconstant = std > 0
        out[:, nonconstant] = (
            x[:, nonconstant] - self._mean[nonconstant]
        ) / std[nonconstant]
        out[:, ~nonconstant] = 0.0
        return out

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = MinMaxNormalizer._as_matrix(x)
        if x.shape[1] != self._mean.shape[0]:
            raise FeatureError(
                f"fitted on {self._mean.shape[0]} columns, got {x.shape[1]}"
            )
        std = self._std()
        out = np.empty_like(x)
        nonconstant = std > 0
        out[:, nonconstant] = (
            x[:, nonconstant] * std[nonconstant] + self._mean[nonconstant]
        )
        out[:, ~nonconstant] = self._mean[~nonconstant]
        return out

    def state_dict(self) -> dict:
        return {
            "count": self._count,
            "mean": self._mean.tolist() if self._mean is not None else None,
            "m2": self._m2.tolist() if self._m2 is not None else None,
        }

    def load_state_dict(self, state: dict) -> None:
        self._count = int(state["count"])
        self._mean = (
            np.array(state["mean"], dtype=np.float64)
            if state["mean"] is not None else None
        )
        self._m2 = (
            np.array(state["m2"], dtype=np.float64)
            if state["m2"] is not None else None
        )

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise FeatureError("normalizer used before fit()")


class CategoryEncoder:
    """Maps categorical values to evenly spaced numbers in [0, 1].

    New categories seen after the first ``encode`` extend the mapping; codes
    of previously seen categories change only in scale (the ordering is
    stable), which is sufficient for features the paper treats as weakly
    informative identifiers.
    """

    def __init__(self) -> None:
        self._index: dict[str, int] = {}

    def encode(self, value: str) -> float:
        """Return the [0, 1] code for a category, registering it if new."""
        if value not in self._index:
            self._index[value] = len(self._index)
        # Scale by the current vocabulary size; with one category the code
        # is 0.0, with n categories codes are k/(n-1) for k in 0..n-1.
        n = len(self._index)
        if n == 1:
            return 0.0
        return self._index[value] / (n - 1)

    def encode_many(self, values: list[str] | np.ndarray) -> np.ndarray:
        """Encode a column, registering every category first for stability."""
        for value in values:
            if value not in self._index:
                self._index[value] = len(self._index)
        n = len(self._index)
        if n == 1:
            return np.zeros(len(values))
        return np.array([self._index[v] / (n - 1) for v in values])

    def __len__(self) -> int:
        return len(self._index)

    def categories(self) -> list[str]:
        """Registered categories in registration order."""
        return sorted(self._index, key=self._index.get)
