"""From ReplayDB rows to model-ready batches (paper sections V-C and V-E).

The live experiment's feature vector has Z = 6 entries drawn from the
paper's feature list: bytes read/written, the open timestamp's second and
millisecond parts, the file id, and the file-system id.  The location
(fsid) must be an input because the engine predicts throughput *per
candidate location* by varying only that column ("a batch of data contains
the information of the data with every row only having the location varying
between each locations", V-C).

Reproduction note: the paper's bullet list also includes the close
timestamp (cts/ctms).  Feeding the model both endpoints of the access lets
it reconstruct the access duration, and since the training target is
``(rb+wb)/duration`` the network then learns that identity instead of the
location signal -- per-location probes (where only fsid varies and the
timestamps are cloned) come out flat and placement degenerates to noise.
We therefore default to the open timestamp only; ``cts``/``ctms`` remain
available as optional features for ablation.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import FeatureError
from repro.features.normalize import MinMaxNormalizer, RunningNormalizer
from repro.features.smoothing import moving_average
from repro.observability import get_observability

if TYPE_CHECKING:  # records imports this package; avoid the import cycle
    from repro.replaydb.records import AccessRecord

#: The Z = 6 live feature set (see the reproduction note above).
DEFAULT_LIVE_FEATURES: tuple[str, ...] = (
    "rb", "wb", "ots", "otms", "fid", "fsid",
)

#: Column accessors: feature name -> value extractor over an AccessRecord.
_ACCESSORS: dict[str, Callable[["AccessRecord"], float]] = {
    "rb": lambda r: float(r.rb),
    "wb": lambda r: float(r.wb),
    "ots": lambda r: float(r.ots),
    "otms": lambda r: float(r.otms),
    "cts": lambda r: float(r.cts),
    "ctms": lambda r: float(r.ctms),
    "open_time": lambda r: r.open_time,
    "close_time": lambda r: r.close_time,
    "duration": lambda r: r.duration,
    "fid": lambda r: float(r.fid),
    "fsid": lambda r: float(r.fsid),
    "total_bytes": lambda r: float(r.total_bytes),
}


#: Vectorized builders for the columnar probe path: feature name -> array
#: expression over the numeric column arrays served by
#: ``ReplayDB.recent_access_columns_per_file``.  Each mirrors its
#: ``_ACCESSORS`` twin operation-for-operation so the columnar and
#: record-based paths produce bit-identical matrices.
_COLUMN_BUILDERS: dict[str, Callable[[dict[str, np.ndarray]], np.ndarray]] = {
    "rb": lambda c: c["rb"],
    "wb": lambda c: c["wb"],
    "ots": lambda c: c["ots"],
    "otms": lambda c: c["otms"],
    "cts": lambda c: c["cts"],
    "ctms": lambda c: c["ctms"],
    "open_time": lambda c: c["ots"] + c["otms"] / 1000.0,
    "close_time": lambda c: c["cts"] + c["ctms"] / 1000.0,
    "duration": lambda c: (c["cts"] + c["ctms"] / 1000.0)
    - (c["ots"] + c["otms"] / 1000.0),
    "fid": lambda c: c["fid"],
    "fsid": lambda c: c["fsid"],
    "total_bytes": lambda c: c["rb"] + c["wb"],
}


def _extra_accessor(name: str) -> Callable[["AccessRecord"], float]:
    """Accessor for telemetry living in a record's ``extra`` dict."""

    def accessor(record: "AccessRecord") -> float:
        try:
            return float(record.extra[name])
        except KeyError:
            known = ", ".join(sorted(_ACCESSORS))
            raise FeatureError(
                f"feature {name!r} is neither a built-in column ({known}) "
                "nor present in every record's extra telemetry"
            ) from None

    return accessor


def resolve_accessor(name: str) -> Callable[["AccessRecord"], float]:
    """Value extractor for a feature name (built-in column or ``extra``)."""
    accessor = _ACCESSORS.get(name)
    return accessor if accessor is not None else _extra_accessor(name)


def record_column(records: "Sequence[AccessRecord]", name: str) -> np.ndarray:
    """Extract one feature column from a record list.

    Unknown names fall back to each record's ``extra`` dict (EOS-style
    telemetry like ``rt``/``wt``/``nrc`` lives there).
    """
    accessor = _ACCESSORS.get(name)
    if accessor is not None:
        return np.array([accessor(r) for r in records], dtype=np.float64)
    try:
        return np.array([r.extra[name] for r in records], dtype=np.float64)
    except KeyError:
        known = ", ".join(sorted(_ACCESSORS))
        raise FeatureError(
            f"feature {name!r} is neither a built-in column ({known}) nor "
            "present in every record's extra telemetry"
        ) from None


class FeaturePipeline:
    """Stateful feature/target preparation shared by training and probing.

    ``fit`` learns normalization bounds; ``transform_features`` /
    ``transform_target`` map raw telemetry into [0, 1];
    ``inverse_transform_target`` maps model outputs back to bytes/s so
    predictions at different locations can be compared in physical units.

    ``normalization`` selects between the paper's frozen min-max scaling
    (``"minmax"``, the default) and incrementally updated standardization
    (``"running"``) whose statistics :meth:`partial_fit` merges batch by
    batch -- the online-learning path, where refitting bounds on a full
    window every cycle would defeat the flat-cost goal.
    """

    def __init__(
        self,
        features: Sequence[str] = DEFAULT_LIVE_FEATURES,
        *,
        smoothing_window: int = 10,
        target: str = "throughput",
        normalization: str = "minmax",
    ) -> None:
        if not features:
            raise FeatureError("need at least one feature")
        if smoothing_window < 1:
            raise FeatureError(
                f"smoothing_window must be >= 1, got {smoothing_window}"
            )
        if target not in ("throughput", "latency"):
            raise FeatureError(
                f"target must be 'throughput' or 'latency', got {target!r}"
            )
        if normalization not in ("minmax", "running"):
            raise FeatureError(
                "normalization must be 'minmax' or 'running', "
                f"got {normalization!r}"
            )
        self.features = tuple(features)
        self.smoothing_window = int(smoothing_window)
        self.target = target
        self.normalization = normalization
        if normalization == "running":
            self._x_norm = RunningNormalizer()
            self._y_norm = RunningNormalizer()
        else:
            self._x_norm = MinMaxNormalizer()
            self._y_norm = MinMaxNormalizer()
        # Column accessors are resolved once here instead of per
        # feature_matrix call: the decision path extracts features for
        # every probed access each epoch, and the per-call dict lookups
        # plus one full pass over the records per column dominated it.
        self._accessors = tuple(resolve_accessor(name) for name in features)
        self._fitted_features: tuple[str, ...] | None = None
        metrics = get_observability().metrics
        self._m_rows = metrics.counter(
            "repro_features_rows_transformed_total",
            "telemetry rows turned into feature vectors",
        )
        self._m_probe_rows = metrics.counter(
            "repro_features_probe_rows_total",
            "per-location probe rows built for prediction",
        )

    @property
    def z(self) -> int:
        """The paper's Z: number of input features."""
        return len(self.features)

    @property
    def fitted(self) -> bool:
        return self._x_norm.fitted and self._y_norm.fitted

    @property
    def columnar(self) -> bool:
        """Whether every feature derives from the numeric access columns.

        True for the live (and Table) feature sets; False once an
        ``extra``-dict feature (EOS ``rt``/``wt``/...) is configured, in
        which case the engine falls back to record-based probe batches.
        """
        return all(name in _COLUMN_BUILDERS for name in self.features)

    # -- raw extraction ----------------------------------------------------
    def feature_matrix(self, records: "Sequence[AccessRecord]") -> np.ndarray:
        """Raw (unnormalized) feature matrix, one row per record.

        Built in a single pass over the records using the accessors cached
        at construction time (one pass per *column* otherwise).
        """
        if not records:
            raise FeatureError("no records supplied")
        return np.array(
            [[accessor(r) for accessor in self._accessors] for r in records],
            dtype=np.float64,
        )

    def feature_matrix_from_columns(
        self, columns: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Raw feature matrix straight from columnar telemetry arrays.

        The no-record fast path: consumes the flat arrays returned by
        ``ReplayDB.recent_access_columns_per_file`` and evaluates each
        feature as one vectorized expression.  Bit-identical to
        ``feature_matrix`` over the corresponding AccessRecords.
        """
        if not columns:
            raise FeatureError("no columns supplied")
        try:
            return np.column_stack(
                [_COLUMN_BUILDERS[name](columns) for name in self.features]
            )
        except KeyError as exc:
            raise FeatureError(
                f"feature {exc.args[0]!r} is not derivable from columnar "
                "telemetry; use the record-based path"
            ) from None

    def target_vector(self, records: "Sequence[AccessRecord]") -> np.ndarray:
        """Raw throughput targets in bytes/s, smoothed with a moving average.

        The paper smooths ReplayDB data "to mitigate outliers" before
        training (section V-E), and batches telemetry per storage device
        ("each batch contains performance information for the data over
        all available storage devices").  Smoothing is therefore applied
        *within* each device's subsequence: averaging across the
        interleaved multi-device stream would blend fast and slow mounts
        into one target level and erase the location signal the engine
        ranks candidate placements by.
        """
        if not records:
            raise FeatureError("no records supplied")
        if self.target == "throughput":
            values = np.array(
                [r.throughput for r in records], dtype=np.float64
            )
        else:
            # Latency target (paper V-C: "there exist workloads that are
            # more latency sensitive, we will explore modeling latency of
            # the system in the future"): the per-access duration.
            values = np.array(
                [r.duration for r in records], dtype=np.float64
            )
        if self.smoothing_window == 1:
            return values
        fsids = np.array([r.fsid for r in records])
        out = np.empty_like(values)
        for fsid in np.unique(fsids):
            idx = np.flatnonzero(fsids == fsid)
            out[idx] = moving_average(values[idx], self.smoothing_window)
        return out

    # -- normalization -----------------------------------------------------
    def fit(self, records: "Sequence[AccessRecord]") -> "FeaturePipeline":
        self._x_norm.fit(self.feature_matrix(records))
        self._y_norm.fit(self.target_vector(records))
        self._fitted_features = self.features
        return self

    def ensure_fitted(self, records: "Sequence[AccessRecord]") -> "FeaturePipeline":
        """Fit normalization bounds once, then keep them frozen.

        Retrain cycles call this instead of ``fit``: as long as the feature
        schema is unchanged the learned bounds are reused, so a warm-started
        model keeps seeing consistently scaled inputs and the per-cycle
        fit cost disappears.  A schema change (different feature tuple)
        forces a refit because the column bounds no longer line up.
        """
        if not self.fitted or self._fitted_features != self.features:
            self.fit(records)
        return self

    def partial_fit(self, records: "Sequence[AccessRecord]") -> "FeaturePipeline":
        """Merge new telemetry into the running normalization statistics.

        The online-learning update: each batch of fresh rows nudges the
        running mean/variance so normalization tracks the workload without
        an O(window) refit.  A no-op under frozen ``"minmax"``
        normalization (the from-scratch path owns those bounds via
        ``fit``/``ensure_fitted``).
        """
        if self.normalization != "running" or not records:
            return self
        x = self.feature_matrix(records)
        y = self.target_vector(records)
        if not self.fitted or self._fitted_features != self.features:
            self._x_norm.fit(x)
            self._y_norm.fit(y)
            self._fitted_features = self.features
        else:
            self._x_norm.partial_fit(x)
            self._y_norm.partial_fit(y)
        return self

    def transform_features(self, records: "Sequence[AccessRecord]") -> np.ndarray:
        self._require_fitted()
        self._m_rows.inc(len(records))
        return self._x_norm.transform(self.feature_matrix(records))

    def transform_target(self, records: "Sequence[AccessRecord]") -> np.ndarray:
        self._require_fitted()
        return self._y_norm.transform(self.target_vector(records)).ravel()

    def inverse_transform_target(self, y: np.ndarray) -> np.ndarray:
        """Map normalized model outputs back to bytes/s."""
        self._require_fitted()
        return self._y_norm.inverse_transform(np.asarray(y)).ravel()

    def build_training_set(
        self, records: "Sequence[AccessRecord]"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fit on ``records`` and return normalized ``(X, y)``."""
        self.fit(records)
        return self.transform_features(records), self.transform_target(records)

    # -- per-location probe batches ------------------------------------------
    def build_location_probe(
        self, base: "AccessRecord", fsids: Sequence[int]
    ) -> np.ndarray:
        """One normalized row per candidate location.

        Every row replicates ``base``'s features with only the ``fsid``
        column varying -- including the file's current location so "the
        possibility that moving the data will not improve the performance"
        is always on the menu (section V-C).
        """
        self._require_fitted()
        if not fsids:
            raise FeatureError("no candidate locations supplied")
        if "fsid" not in self.features:
            raise FeatureError(
                "per-location probing varies the 'fsid' column (paper "
                "section V-C); include it in the feature set"
            )
        raw = self.feature_matrix([base])
        probe = np.repeat(raw, len(fsids), axis=0)
        fsid_col = self.features.index("fsid")
        probe[:, fsid_col] = np.asarray(fsids, dtype=np.float64)
        return self._x_norm.transform(probe)

    def build_location_probe_batch(
        self, bases: "Sequence[AccessRecord]", fsids: Sequence[int]
    ) -> np.ndarray:
        """The whole decision epoch's probe tensor in one array.

        Row ``i * len(fsids) + j`` replicates ``bases[i]``'s features with
        the ``fsid`` column set to ``fsids[j]`` -- the batched equivalent
        of ``build_location_probe`` called once per base.  Building every
        (access, candidate location) probe up front lets the engine run a
        single forward pass and a single inverse transform per decision
        epoch instead of one per access, which is what keeps decision
        latency small relative to the workload (paper Table IV).
        """
        if not bases:
            raise FeatureError("no base records supplied")
        return self.build_location_probe_from_matrix(
            self.feature_matrix(bases), fsids
        )

    def build_location_probe_from_matrix(
        self, raw: np.ndarray, fsids: Sequence[int]
    ) -> np.ndarray:
        """Probe tensor from an already-extracted raw feature matrix.

        Shared tail of the record-based and columnar batch builders: each
        of the ``len(raw)`` base rows is replicated once per candidate
        location with only the ``fsid`` column varying, then the whole
        tensor is normalized in one shot.
        """
        self._require_fitted()
        if not fsids:
            raise FeatureError("no candidate locations supplied")
        if "fsid" not in self.features:
            raise FeatureError(
                "per-location probing varies the 'fsid' column (paper "
                "section V-C); include it in the feature set"
            )
        probe = np.repeat(raw, len(fsids), axis=0)
        fsid_col = self.features.index("fsid")
        probe[:, fsid_col] = np.tile(
            np.asarray(fsids, dtype=np.float64), len(raw)
        )
        self._m_probe_rows.inc(len(probe))
        return self._x_norm.transform(probe)

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise FeatureError("pipeline used before fit()")

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable normalization state.

        The frozen bounds are the pipeline's only mutable state; the
        feature tuple/accessors are reconstructed from config at restore.
        """
        return {
            "normalization": self.normalization,
            "x_norm": self._x_norm.state_dict(),
            "y_norm": self._y_norm.state_dict(),
            "fitted_features": (
                list(self._fitted_features)
                if self._fitted_features is not None else None
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        # Checkpoints predating the online-learning mode carry no
        # normalization tag; they are all min-max.
        saved_mode = state.get("normalization", "minmax")
        if saved_mode != self.normalization:
            raise FeatureError(
                f"checkpoint normalization {saved_mode!r} does not match "
                f"this pipeline's {self.normalization!r}; rebuild the "
                "pipeline with the checkpoint's configuration"
            )
        self._x_norm.load_state_dict(state["x_norm"])
        self._y_norm.load_state_dict(state["y_norm"])
        self._fitted_features = (
            tuple(state["fitted_features"])
            if state["fitted_features"] is not None else None
        )


def make_windows(
    x: np.ndarray, y: np.ndarray, timesteps: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sliding windows for the recurrent Table-I models.

    Window ``i`` covers rows ``i .. i+timesteps-1`` and is labelled with the
    target of its final row, so the model predicts the present from the
    recent past.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if timesteps < 1:
        raise FeatureError(f"timesteps must be >= 1, got {timesteps}")
    if x.ndim != 2:
        raise FeatureError(f"x must be 2-D, got shape {x.shape}")
    if len(x) != len(y):
        raise FeatureError(f"x has {len(x)} rows but y has {len(y)}")
    if len(x) < timesteps:
        raise FeatureError(
            f"need at least timesteps={timesteps} rows, got {len(x)}"
        )
    n = len(x) - timesteps + 1
    windows = np.stack([x[i : i + timesteps] for i in range(n)])
    return windows, y[timesteps - 1 :]
