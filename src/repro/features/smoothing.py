"""Smoothing of noisy telemetry (paper section V-E).

"We remove smaller variations from data in the ReplayDB by applying a moving
average. ... Other smoothing methods such as cumulative average can be used,
however they lose short term fluctuations that can indicate a rapid decrease
in performance."
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average, length-preserving.

    Element ``i`` is the mean of ``x[max(0, i-window+1) .. i]``, so early
    elements average over a shorter prefix instead of being dropped -- the
    pipeline needs output aligned 1:1 with its input rows.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if window < 1:
        raise FeatureError(f"window must be >= 1, got {window}")
    if x.size == 0:
        return x.copy()
    if window == 1:
        return x.copy()
    csum = np.cumsum(x)
    out = np.empty_like(x)
    w = min(window, x.size)
    # Full windows.
    out[w - 1 :] = (csum[w - 1 :] - np.concatenate(([0.0], csum[: x.size - w]))) / w
    # Growing prefix windows.
    out[: w - 1] = csum[: w - 1] / np.arange(1, w)
    return out


def cumulative_average(x: np.ndarray) -> np.ndarray:
    """Running mean of everything seen so far (loses short-term swings)."""
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size == 0:
        return x.copy()
    return np.cumsum(x) / np.arange(1, x.size + 1)


def exponential_moving_average(x: np.ndarray, alpha: float) -> np.ndarray:
    """EMA with smoothing factor ``alpha`` in (0, 1].

    Included as the heuristic the paper contrasts neural networks against
    ("heuristics such as exponentially moving average ... need human input
    to update", section VI).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if not 0.0 < alpha <= 1.0:
        raise FeatureError(f"alpha must be in (0, 1], got {alpha}")
    if x.size == 0:
        return x.copy()
    out = np.empty_like(x)
    out[0] = x[0]
    for i in range(1, x.size):
        out[i] = alpha * x[i] + (1.0 - alpha) * out[i - 1]
    return out
