"""Feature discovery, encoding and preparation (paper sections V-C .. V-E).

Geomancy trains on telemetry features that correlate with throughput.  This
package implements the full feature path described in the paper:

* :mod:`repro.features.schema` -- the EOS access-log field registry and the
  six features selected for the live experiment.
* :mod:`repro.features.throughput` -- the per-access throughput formula.
* :mod:`repro.features.correlation` -- Pearson feature/throughput
  correlation used to choose features (Fig. 4).
* :mod:`repro.features.path_encoder` -- the locality-preserving path-to-
  number encoding of section V-E.
* :mod:`repro.features.normalize` -- min-max normalization to [0, 1].
* :mod:`repro.features.smoothing` -- moving / cumulative averages.
* :mod:`repro.features.pipeline` -- assembling ReplayDB rows into training
  batches and per-location prediction batches.
"""

from repro.features.correlation import (
    CorrelationReport,
    feature_correlations,
    pearson,
    select_features,
)
from repro.features.normalize import CategoryEncoder, MinMaxNormalizer
from repro.features.path_encoder import PathEncoder
from repro.features.pipeline import FeaturePipeline, make_windows
from repro.features.schema import (
    EOS_FIELDS,
    EOS_MODEL_FEATURES,
    LIVE_FEATURES,
    FieldSpec,
)
from repro.features.smoothing import (
    cumulative_average,
    exponential_moving_average,
    moving_average,
)
from repro.features.throughput import access_throughput

__all__ = [
    "CorrelationReport",
    "feature_correlations",
    "pearson",
    "select_features",
    "CategoryEncoder",
    "MinMaxNormalizer",
    "PathEncoder",
    "FeaturePipeline",
    "make_windows",
    "EOS_FIELDS",
    "EOS_MODEL_FEATURES",
    "LIVE_FEATURES",
    "FieldSpec",
    "cumulative_average",
    "exponential_moving_average",
    "moving_average",
    "access_throughput",
]
