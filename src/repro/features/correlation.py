"""Pearson-correlation feature discovery (paper section V-D, Fig. 4).

"Correlated values (referred to as features) will directly influence or
change another aspect of the system when the feature changes, and we measure
correlation using the Pearsons correlation coefficient."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FeatureError


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient between two equal-length vectors.

    Returns 0.0 for constant inputs (a constant feature carries no linear
    information about the target, which for feature selection is what a
    zero correlation means).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise FeatureError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise FeatureError("need at least two samples to correlate")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.0
    return float(np.clip((xc * yc).sum() / denom, -1.0, 1.0))


@dataclass
class CorrelationReport:
    """Per-feature correlation with throughput, sorted for presentation.

    This is the data behind Fig. 4: one bar per raw telemetry field, with
    the chosen features highlighted.
    """

    correlations: dict[str, float]
    target_name: str = "throughput"
    chosen: tuple[str, ...] = field(default_factory=tuple)

    def sorted_items(self) -> list[tuple[str, float]]:
        """Fields sorted by correlation, descending (Fig. 4's bar order)."""
        return sorted(
            self.correlations.items(), key=lambda kv: kv[1], reverse=True
        )

    def strongest(self, n: int) -> list[str]:
        """The ``n`` fields with the largest absolute correlation."""
        ranked = sorted(
            self.correlations.items(), key=lambda kv: abs(kv[1]), reverse=True
        )
        return [name for name, _ in ranked[:n]]

    def sign_of(self, name: str) -> int:
        """Qualitative sign of a field's correlation (+1 / 0 / -1).

        Fields with |r| < 0.1 are treated as uncorrelated, matching how the
        paper reads Fig. 4 (fid is called "not correlated" at small |r|).
        """
        try:
            r = self.correlations[name]
        except KeyError:
            raise FeatureError(f"no correlation recorded for {name!r}") from None
        if abs(r) < 0.1:
            return 0
        return 1 if r > 0 else -1


def feature_correlations(
    table: dict[str, np.ndarray], target: np.ndarray, *, target_name: str = "throughput"
) -> CorrelationReport:
    """Correlate every column of ``table`` against ``target``.

    ``table`` maps field name to a numeric column; categorical fields must
    be encoded numerically first (see
    :class:`~repro.features.normalize.CategoryEncoder`).
    """
    if not table:
        raise FeatureError("empty feature table")
    correlations = {
        name: pearson(column, target) for name, column in table.items()
    }
    return CorrelationReport(correlations=correlations, target_name=target_name)


def select_features(
    report: CorrelationReport,
    *,
    required: tuple[str, ...] = (),
    exclude_negative: bool = True,
    max_features: int | None = None,
) -> tuple[str, ...]:
    """Choose modeling features the way the paper does.

    The paper keeps features that are "commonly found in scientific systems
    that also happen to be positively correlated" (Fig. 4 caption), always
    includes the identity features (fid, fsid) even though they are nearly
    uncorrelated, and drops the strongly negative rt/wt ("we wanted to model
    the access to the file independently of the action").

    ``required`` names are always included; remaining slots are filled by
    descending correlation, skipping negative ones when
    ``exclude_negative``.
    """
    for name in required:
        if name not in report.correlations:
            raise FeatureError(f"required feature {name!r} not in report")
    chosen: list[str] = list(required)
    for name, r in report.sorted_items():
        if max_features is not None and len(chosen) >= max_features:
            break
        if name in chosen:
            continue
        if exclude_negative and r < 0.0:
            continue
        chosen.append(name)
    if max_features is not None:
        chosen = chosen[:max_features]
    report.chosen = tuple(chosen)
    return report.chosen
