"""The paper's per-access throughput formula (section V-C).

::

    Tp_i = (rb_i + wb_i) / ((cts_i + ctms_i/1000) - (ots_i + otms_i/1000))

Bytes in, seconds out; callers convert to GB/s for reporting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FeatureError

BYTES_PER_GB = 1e9


def access_throughput(
    rb: float | np.ndarray,
    wb: float | np.ndarray,
    ots: float | np.ndarray,
    otms: float | np.ndarray,
    cts: float | np.ndarray,
    ctms: float | np.ndarray,
) -> float | np.ndarray:
    """Throughput of an access in bytes/second.

    Accepts scalars or equal-shaped arrays.  Raises
    :class:`~repro.errors.FeatureError` if any access has a non-positive
    duration (a closed-before-opened record is corrupt telemetry).
    """
    open_time = np.asarray(ots, dtype=np.float64) + np.asarray(otms, dtype=np.float64) / 1000.0
    close_time = np.asarray(cts, dtype=np.float64) + np.asarray(ctms, dtype=np.float64) / 1000.0
    duration = close_time - open_time
    if np.any(duration <= 0.0):
        raise FeatureError(
            "non-positive access duration: close timestamp must be strictly "
            "after open timestamp"
        )
    result = (np.asarray(rb, dtype=np.float64) + np.asarray(wb, dtype=np.float64)) / duration
    if result.ndim == 0:
        return float(result)
    return result


def throughput_gbps(
    rb, wb, ots, otms, cts, ctms
) -> float | np.ndarray:
    """Same as :func:`access_throughput` but in GB/s (the paper's unit)."""
    return access_throughput(rb, wb, ots, otms, cts, ctms) / BYTES_PER_GB
