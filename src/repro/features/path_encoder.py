"""Locality-preserving file-path encoding (paper section V-E).

"To convert a file path, we assign a unique numerical index to each level of
the path.  Each index is combined together to form a unique number that
describes one path. ... we did not use hashes since we want files located in
similar locations to have close IDs to maintain a sense of locality.  For
example, a unique path and filename foo/bar/bat.root can be translated into
123 if foo is assigned to 1, bar is assigned to 2, and bat is assigned to 3."

The paper's digit-concatenation example is ambiguous once any level's
vocabulary exceeds nine entries, so this implementation combines per-level
indices positionally in a fixed ``base`` (default 1000): paths sharing a
prefix differ only in low-order digits, preserving the locality property the
paper wants, while remaining collision-free and decodable.
"""

from __future__ import annotations

from repro.errors import FeatureError


class PathEncoder:
    """Bidirectional path <-> integer codec with per-depth vocabularies."""

    def __init__(self, base: int = 1000, max_depth: int = 8) -> None:
        if base < 2:
            raise FeatureError(f"base must be >= 2, got {base}")
        if max_depth < 1:
            raise FeatureError(f"max_depth must be >= 1, got {max_depth}")
        self.base = int(base)
        self.max_depth = int(max_depth)
        # One vocabulary per path depth; index 0 is reserved for "absent
        # level" so shallow paths do not collide with deep ones.
        self._vocab: list[dict[str, int]] = [dict() for _ in range(max_depth)]
        self._reverse: list[list[str]] = [[""] for _ in range(max_depth)]

    @staticmethod
    def _split(path: str) -> list[str]:
        parts = [p for p in path.strip("/").split("/") if p]
        if not parts:
            raise FeatureError(f"cannot encode empty path {path!r}")
        return parts

    def encode(self, path: str) -> int:
        """Encode a path, growing the per-level vocabularies as needed."""
        parts = self._split(path)
        if len(parts) > self.max_depth:
            raise FeatureError(
                f"path depth {len(parts)} exceeds max_depth={self.max_depth}: "
                f"{path!r}"
            )
        code = 0
        for depth in range(self.max_depth):
            if depth < len(parts):
                index = self._index_for(depth, parts[depth])
            else:
                index = 0
            code = code * self.base + index
        return code

    def _index_for(self, depth: int, component: str) -> int:
        vocab = self._vocab[depth]
        index = vocab.get(component)
        if index is None:
            index = len(vocab) + 1  # 0 is the "absent" sentinel
            if index >= self.base:
                raise FeatureError(
                    f"vocabulary at depth {depth} exceeded base={self.base}; "
                    "construct the encoder with a larger base"
                )
            vocab[component] = index
            self._reverse[depth].append(component)
        return index

    def decode(self, code: int) -> str:
        """Invert :func:`encode` for a previously encoded path."""
        if code < 0:
            raise FeatureError(f"codes are non-negative, got {code}")
        indices = []
        for _ in range(self.max_depth):
            code, index = divmod(code, self.base)
            indices.append(index)
        indices.reverse()
        parts = []
        for depth, index in enumerate(indices):
            if index == 0:
                break
            try:
                parts.append(self._reverse[depth][index])
            except IndexError:
                raise FeatureError(
                    f"code contains unknown index {index} at depth {depth}"
                ) from None
        if not parts:
            raise FeatureError(f"code {code} decodes to an empty path")
        return "/".join(parts)

    def normalized(self, path: str) -> float:
        """Encode and scale into [0, 1) for direct use as a model feature."""
        return self.encode(path) / float(self.base**self.max_depth)

    def __len__(self) -> int:
        """Total number of distinct components seen across all depths."""
        return sum(len(v) for v in self._vocab)
