"""repro -- a reproduction of *Geomancy: Automated Performance Enhancement
through Data Layout Optimization* (Bel et al., ISPASS 2020).

Geomancy watches per-device file-access telemetry on a distributed storage
system, trains a small neural network that predicts the throughput a file
would see at every candidate location, and migrates files to the locations
with the highest predicted throughput.

Quick start::

    from repro import (
        Geomancy, GeomancyConfig, make_bluesky_cluster,
        Belle2Workload, belle2_file_population, WorkloadRunner,
    )

    cluster = make_bluesky_cluster(seed=0)
    files = belle2_file_population(seed=0)
    geo = Geomancy(cluster, files, GeomancyConfig(epochs=60,
                                                  training_rows=4000))
    geo.place_initial()
    runner = WorkloadRunner(cluster, Belle2Workload(files), geo.db)
    for run in range(1, 51):
        result = runner.run_once()
        outcome = geo.after_run(run, runner.clock.now)

Subpackages: :mod:`repro.core` (the Geomancy engine), :mod:`repro.nn`
(from-scratch numpy neural networks), :mod:`repro.features` (telemetry
feature pipeline), :mod:`repro.replaydb` (the telemetry store),
:mod:`repro.simulation` (the storage-cluster substrate),
:mod:`repro.workloads` (BELLE II / EOS generators), :mod:`repro.policies`
(baseline placement policies), :mod:`repro.agents` (monitoring/control
agents), :mod:`repro.faults` (deterministic fault injection for chaos
runs), and :mod:`repro.experiments` (the paper's tables and figures).
"""

from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine, TrainingReport
from repro.core.geomancy import Geomancy
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import AccessRecord, MovementRecord
from repro.simulation.bluesky import make_bluesky_cluster
from repro.simulation.cluster import StorageCluster
from repro.simulation.device import DeviceSpec, StorageDevice
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.eos import EOSTraceSynthesizer
from repro.workloads.files import FileSpec, belle2_file_population
from repro.workloads.runner import WorkloadRunner

__version__ = "1.0.0"

__all__ = [
    "GeomancyConfig",
    "DRLEngine",
    "TrainingReport",
    "Geomancy",
    "FaultInjector",
    "FaultSchedule",
    "ReplayDB",
    "AccessRecord",
    "MovementRecord",
    "make_bluesky_cluster",
    "StorageCluster",
    "DeviceSpec",
    "StorageDevice",
    "Belle2Workload",
    "EOSTraceSynthesizer",
    "FileSpec",
    "belle2_file_population",
    "WorkloadRunner",
    "__version__",
]
