"""MRU baseline (paper section VI).

"The Most Recently Used (MRU) algorithm, as described by Chou et al.,
places the most recently used files on the slowest storage devices.  This
algorithm has benefits for files that are scanned in a looping sequential
access pattern" -- because the file just read is the one that will not be
needed again until the loop comes back around.
"""

from __future__ import annotations

from repro.policies.base import PlacementPolicy, rank_devices, spread_in_groups
from repro.replaydb.db import ReplayDB
from repro.workloads.files import FileSpec


class MRUPolicy(PlacementPolicy):
    """Most recently used files on the *slowest* devices."""

    name = "MRU"
    dynamic = True

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        return spread_in_groups([f.fid for f in files], list(devices))

    def update_layout(
        self,
        db: ReplayDB,
        files: list[FileSpec],
        devices: list[str],
        current: dict[int, str] | None = None,
    ) -> dict[int, str] | None:
        self._require(files, devices)
        ranked = rank_devices(db, devices)
        last_access = db.last_access_time_per_file()
        # Least recent first, so the most recently used files land on the
        # slowest devices at the end of the ranking.
        ordered = sorted(
            (f.fid for f in files),
            key=lambda fid: last_access.get(fid, float("-inf")),
        )
        return spread_in_groups(ordered, ranked)
