"""The placement-policy interface and shared helpers."""

from __future__ import annotations

from repro.errors import PolicyError
from repro.replaydb.db import ReplayDB
from repro.workloads.files import FileSpec


class PlacementPolicy:
    """Decides where the workload's files live.

    ``initial_layout`` places files before the experiment starts;
    ``update_layout`` is consulted between workload runs and returns either
    a (possibly partial) fid -> device mapping to apply, or ``None`` to
    leave the layout alone.  Static policies simply always return ``None``.
    """

    name = "policy"

    #: whether the experiment harness should consult update_layout at all
    dynamic = False

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        raise NotImplementedError

    def update_layout(
        self,
        db: ReplayDB,
        files: list[FileSpec],
        devices: list[str],
        current: dict[int, str] | None = None,
    ) -> dict[int, str] | None:
        """Relayout decision between runs.

        ``current`` is the present fid -> device mapping; policies that
        diff against it (Geomancy's move cap) use it, the heuristics
        recompute the full grouping and ignore it.
        """
        return None

    @staticmethod
    def _require(files: list[FileSpec], devices: list[str]) -> None:
        if not files:
            raise PolicyError("no files to place")
        if not devices:
            raise PolicyError("no devices to place files on")


def rank_devices(db: ReplayDB, devices: list[str]) -> list[str]:
    """Devices ordered fastest-first by observed mean throughput.

    Devices with no telemetry yet rank after every measured device (the
    policies all start from ~10,000 warm-up accesses, so in practice every
    device is measured; unseen ones get the conservative slot).
    """
    if not devices:
        raise PolicyError("no devices to rank")
    measured = [
        name for name, _ in db.device_throughput_ranking() if name in devices
    ]
    unseen = [name for name in devices if name not in measured]
    return measured + unseen


def spread_in_groups(
    ordered_files: list[int], ranked_devices: list[str]
) -> dict[int, str]:
    """Assign equal groups of files to devices in rank order (section VI).

    "all 24 files ... are divided evenly across the available six storage
    devices in groups of four.  The group containing the most recently
    accessed files is placed into the fastest storage device, ... In case a
    file was not used or the files cannot be evenly divided, the remaining
    files are put on the slowest node."
    """
    if not ordered_files:
        raise PolicyError("no files to spread")
    if not ranked_devices:
        raise PolicyError("no devices to spread over")
    group_size = len(ordered_files) // len(ranked_devices)
    layout: dict[int, str] = {}
    if group_size == 0:
        # Fewer files than devices: one file per fastest device.
        for fid, device in zip(ordered_files, ranked_devices):
            layout[fid] = device
        return layout
    for rank, device in enumerate(ranked_devices):
        group = ordered_files[rank * group_size : (rank + 1) * group_size]
        for fid in group:
            layout[fid] = device
    # Remainder files go to the slowest device.
    for fid in ordered_files[len(ranked_devices) * group_size :]:
        layout[fid] = ranked_devices[-1]
    return layout
