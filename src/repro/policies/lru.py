"""LRU baseline (paper section VI).

"The effect of a LRU policy causes the least recently used files to move to
the slowest storage device, and the most recently used files move to the
fastest storage devices available."
"""

from __future__ import annotations

from repro.policies.base import PlacementPolicy, rank_devices, spread_in_groups
from repro.replaydb.db import ReplayDB
from repro.workloads.files import FileSpec


class LRUPolicy(PlacementPolicy):
    """Most recently used files on the fastest devices."""

    name = "LRU"
    dynamic = True

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        # No telemetry yet: spread evenly in fid order.
        return spread_in_groups([f.fid for f in files], list(devices))

    def update_layout(
        self,
        db: ReplayDB,
        files: list[FileSpec],
        devices: list[str],
        current: dict[int, str] | None = None,
    ) -> dict[int, str] | None:
        self._require(files, devices)
        ranked = rank_devices(db, devices)
        last_access = db.last_access_time_per_file()
        # Most recent first; never-accessed files sort last (toward the
        # slowest device, per "In case a file was not used ... the
        # remaining files are put on the slowest node").
        ordered = sorted(
            (f.fid for f in files),
            key=lambda fid: last_access.get(fid, float("-inf")),
            reverse=True,
        )
        return spread_in_groups(ordered, ranked)
