"""LFU baseline (paper section VI).

"The LFU policy ... places heavily accessed files on fast nodes and lower
accessed files on slower nodes. ... we sort the files from most to least
accessed, and the sorted files are divided equally into groups."
"""

from __future__ import annotations

from repro.policies.base import PlacementPolicy, rank_devices, spread_in_groups
from repro.replaydb.db import ReplayDB
from repro.workloads.files import FileSpec


class LFUPolicy(PlacementPolicy):
    """Most frequently accessed files on the fastest devices."""

    name = "LFU"
    dynamic = True

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        return spread_in_groups([f.fid for f in files], list(devices))

    def update_layout(
        self,
        db: ReplayDB,
        files: list[FileSpec],
        devices: list[str],
        current: dict[int, str] | None = None,
    ) -> dict[int, str] | None:
        self._require(files, devices)
        ranked = rank_devices(db, devices)
        counts = db.access_count_per_file()
        ordered = sorted(
            (f.fid for f in files),
            key=lambda fid: counts.get(fid, 0),
            reverse=True,
        )
        return spread_in_groups(ordered, ranked)
