"""Static layouts: fixed mappings, single-mount placement, even spread.

``SingleMountPolicy`` drives Experiment 2 ("we measure the I/O performance
of each storage point if all files are placed and read solely on those
points"); ``EvenSpreadPolicy`` is the paper's "basic spread policy (evenly
across all available mounts)" baseline; ``FixedLayoutPolicy`` pins any
externally computed layout (e.g. Geomancy static's one-shot prediction).
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policies.base import PlacementPolicy, spread_in_groups
from repro.workloads.files import FileSpec


class FixedLayoutPolicy(PlacementPolicy):
    """A caller-supplied fid -> device mapping, never changed."""

    name = "fixed layout"
    dynamic = False

    def __init__(self, layout: dict[int, str], *, name: str | None = None) -> None:
        if not layout:
            raise PolicyError("fixed layout must not be empty")
        self.layout = dict(layout)
        if name is not None:
            self.name = name

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        missing = [f.fid for f in files if f.fid not in self.layout]
        if missing:
            raise PolicyError(f"fixed layout missing files {missing}")
        unknown = set(self.layout.values()) - set(devices)
        if unknown:
            raise PolicyError(f"fixed layout names unknown devices {sorted(unknown)}")
        return {f.fid: self.layout[f.fid] for f in files}


class SingleMountPolicy(PlacementPolicy):
    """Every file on one device (Experiment 2 / Table IV rows)."""

    dynamic = False

    def __init__(self, device: str) -> None:
        if not device:
            raise PolicyError("device name must be non-empty")
        self.device = device
        self.name = f"all-on-{device}"

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        if self.device not in devices:
            raise PolicyError(
                f"device {self.device!r} not in cluster (have {devices})"
            )
        return {f.fid: self.device for f in files}


class EvenSpreadPolicy(PlacementPolicy):
    """Files spread evenly over all mounts in fid order, then left alone."""

    name = "even spread"
    dynamic = False

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        return spread_in_groups(sorted(f.fid for f in files), list(devices))
