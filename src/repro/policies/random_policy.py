"""Random baselines (paper section VI).

"In random static, we randomly shuffle the locations of every file requested
by the workload.  The files are never moved again ... random dynamic ...
shuffles the locations of the data between several runs of the workload."
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import PlacementPolicy
from repro.replaydb.db import ReplayDB
from repro.workloads.files import FileSpec


def _random_layout(
    rng: np.random.Generator, files: list[FileSpec], devices: list[str]
) -> dict[int, str]:
    """Independently assign each file to a uniformly random device."""
    choices = rng.integers(0, len(devices), size=len(files))
    return {f.fid: devices[int(c)] for f, c in zip(files, choices)}


class RandomStaticPolicy(PlacementPolicy):
    """One random shuffle at the start, never moved again."""

    name = "random static"
    dynamic = False

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        return _random_layout(self._rng, files, list(devices))


class RandomDynamicPolicy(PlacementPolicy):
    """Reshuffles the whole layout every time it is consulted."""

    name = "random dynamic"
    dynamic = True

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        return _random_layout(self._rng, files, list(devices))

    def update_layout(
        self,
        db: ReplayDB,
        files: list[FileSpec],
        devices: list[str],
        current: dict[int, str] | None = None,
    ) -> dict[int, str] | None:
        self._require(files, devices)
        return _random_layout(self._rng, files, list(devices))
