"""Placement policies: the baselines of Experiment 1 plus Geomancy adapters.

Every policy implements the :class:`~repro.policies.base.PlacementPolicy`
interface: an initial layout for the workload's files, and an optional
between-runs relayout driven by ReplayDB telemetry.  The heuristic baselines
(LRU, MRU, LFU) follow section VI: rank devices by observed throughput,
sort files by the policy's criterion, and assign equal groups of files to
devices in rank order, remainders to the slowest device.
"""

from repro.policies.base import (
    PlacementPolicy,
    rank_devices,
    spread_in_groups,
)
from repro.policies.geomancy_policy import GeomancyDynamicPolicy, GeomancyStaticPolicy
from repro.policies.lfu import LFUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.mru import MRUPolicy
from repro.policies.random_policy import RandomDynamicPolicy, RandomStaticPolicy
from repro.policies.static import EvenSpreadPolicy, FixedLayoutPolicy, SingleMountPolicy

__all__ = [
    "PlacementPolicy",
    "rank_devices",
    "spread_in_groups",
    "GeomancyDynamicPolicy",
    "GeomancyStaticPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "RandomDynamicPolicy",
    "RandomStaticPolicy",
    "EvenSpreadPolicy",
    "FixedLayoutPolicy",
    "SingleMountPolicy",
]
