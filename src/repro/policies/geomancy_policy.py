"""Policy adapters exposing Geomancy through the PlacementPolicy interface.

``GeomancyStaticPolicy`` is the paper's *Geomancy static* baseline: "uses
one prediction of Geomancy when trained with a database of past performance
metrics.  This prediction assigns files to their storage points, and never
moves them again."

``GeomancyDynamicPolicy`` is the full system driven through the policy
interface (the experiment harness can also drive the
:class:`~repro.core.geomancy.Geomancy` facade directly for agent-level
fidelity; this adapter exists so Geomancy slots into the same comparison
loop as every baseline).
"""

from __future__ import annotations

from repro.core.action_checker import ActionChecker
from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine
from repro.core.layout import as_layout, cap_moves, layout_diff
from repro.core.scheduler import AccessGapScheduler
from repro.errors import PolicyError
from repro.policies.base import PlacementPolicy, spread_in_groups
from repro.replaydb.db import ReplayDB
from repro.workloads.files import FileSpec


class GeomancyStaticPolicy(PlacementPolicy):
    """One-shot engine prediction, then frozen."""

    name = "Geomancy static"
    dynamic = False

    def __init__(
        self,
        warmup_db: ReplayDB,
        device_by_fsid: dict[int, str],
        config: GeomancyConfig | None = None,
    ) -> None:
        if not device_by_fsid:
            raise PolicyError("device_by_fsid must not be empty")
        self.engine = DRLEngine(config)
        self.warmup_db = warmup_db
        self.device_by_fsid = dict(device_by_fsid)

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        self.engine.train(self.warmup_db)
        layout, _ = self.engine.propose_layout(
            self.warmup_db, [f.fid for f in files], self.device_by_fsid
        )
        # Files the warm-up never touched fall back to an even spread.
        missing = [f.fid for f in files if f.fid not in layout]
        if missing:
            fallback = spread_in_groups(sorted(missing), list(devices))
            layout.update(fallback)
        return layout


class GeomancyDynamicPolicy(PlacementPolicy):
    """Retrains and relayouts every time the harness consults it.

    Applies the full decision path: engine proposal, Action Checker
    validity filter + 10% exploration, and the 1-14-file move cap.
    """

    name = "Geomancy dynamic"
    dynamic = True

    def __init__(
        self,
        device_by_fsid: dict[int, str],
        config: GeomancyConfig | None = None,
    ) -> None:
        if not device_by_fsid:
            raise PolicyError("device_by_fsid must not be empty")
        self.config = config if config is not None else GeomancyConfig()
        self.engine = DRLEngine(self.config)
        self.device_by_fsid = dict(device_by_fsid)
        self.checker = ActionChecker(
            self.config.exploration_rate, seed=self.config.seed
        )
        self.gap_scheduler = (
            AccessGapScheduler() if self.config.use_gap_scheduler else None
        )
        #: assumed migration bandwidth for gap estimation (10 GbE); the
        #: policy interface has no cluster handle to measure the real link
        self.assumed_link_bytes_per_s = 1.25e9

    def initial_layout(
        self, files: list[FileSpec], devices: list[str]
    ) -> dict[int, str]:
        self._require(files, devices)
        return spread_in_groups(sorted(f.fid for f in files), list(devices))

    def update_layout(
        self,
        db: ReplayDB,
        files: list[FileSpec],
        devices: list[str],
        current: dict[int, str] | None = None,
    ) -> dict[int, str] | None:
        self._require(files, devices)
        if db.access_count() < 50:
            return None
        report = (
            self.engine.train_incremental(db)
            if self.config.online_learning
            else self.engine.train(db)
        )
        skip = (
            (self.config.require_skill and not report.skillful)
            or report.diverged
            or report.test_mare > self.config.max_actionable_mare
        )
        if skip:
            return None
        if (
            self.config.require_ranking_sanity
            and self.engine.ranking_correlation(db, self.device_by_fsid) < 0.0
        ):
            return None
        proposal, gains = self.engine.propose_layout(
            db, [f.fid for f in files], self.device_by_fsid
        )
        if current is None:
            return proposal or None
        checked = self.checker.check(proposal, set(devices), dict(current))
        changes = layout_diff(dict(current), checked)
        changes = cap_moves(changes, self.config.max_files_per_move, gains)
        if self.gap_scheduler is not None:
            # Section X extension: only move files whose observed access
            # gaps accommodate the (estimated) transfer time.
            sizes = {f.fid: f.size_bytes for f in files}
            changes = [
                change for change in changes
                if self.gap_scheduler.can_move(
                    db,
                    change.fid,
                    sizes.get(change.fid, 0) / self.assumed_link_bytes_per_s,
                )
            ]
        return as_layout(changes) or None
