"""The six-mount Bluesky testbed (paper Fig. 1, Table IV).

Device parameters are chosen so the *shape* of Table IV emerges: file0
(RAID 5) is by far the fastest but has the heaviest tail and a large
read/write imbalance; pic (Lustre) and people (NFS) receive the heaviest
external traffic; USBtmp (external HDD) is slowest and steadiest.  Absolute
numbers are calibrated to land near the paper's per-mount averages
(USBtmp 0.63, var 1.26, tmp 1.65, people 1.69, pic 2.05, file0 7.61 GB/s).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.simulation.cluster import StorageCluster
from repro.simulation.device import DeviceSpec, StorageDevice
from repro.simulation.interference import (
    BurstyLoad,
    CompositeLoad,
    ConstantLoad,
    DiurnalLoad,
    LoadProcess,
)
from repro.simulation.network import TransferLink

GB = 10**9

#: canonical device order used in figures and tables
BLUESKY_DEVICE_NAMES: tuple[str, ...] = (
    "USBtmp", "pic", "tmp", "file0", "var", "people",
)


def bluesky_device_specs() -> dict[str, DeviceSpec]:
    """Static specs for the six Bluesky mounts."""
    return {
        "USBtmp": DeviceSpec(
            name="USBtmp", fsid=0,
            read_gbps=0.75, write_gbps=0.48,
            capacity_bytes=2000 * GB, latency_s=0.008,
            noise_sigma=0.45, crowding_factor=2.0,
            interference_sensitivity=0.05,
            description="externally mounted USB hard disk drive",
        ),
        "pic": DeviceSpec(
            name="pic", fsid=1,
            read_gbps=1.7, write_gbps=1.35,
            capacity_bytes=10000 * GB, latency_s=0.004,
            noise_sigma=0.9, crowding_factor=2.5,
            interference_sensitivity=0.9,
            cache_hit_rate=0.04, cache_gbps=18.0,
            description="Lustre file system, heavy external traffic",
        ),
        "tmp": DeviceSpec(
            name="tmp", fsid=2,
            read_gbps=1.05, write_gbps=0.80,
            capacity_bytes=200 * GB, latency_s=0.003,
            noise_sigma=0.8, crowding_factor=3.0,
            interference_sensitivity=0.45,
            cache_hit_rate=0.04, cache_gbps=15.0,
            description="temporary RAID 1 mount",
        ),
        "file0": DeviceSpec(
            name="file0", fsid=3,
            read_gbps=3.3, write_gbps=1.1,
            capacity_bytes=500 * GB, latency_s=0.002,
            noise_sigma=0.85, crowding_factor=4.5,
            interference_sensitivity=0.8,
            cache_hit_rate=0.12, cache_gbps=40.0,
            description="RAID 5 mount, fastest but read/write imbalanced",
        ),
        "var": DeviceSpec(
            name="var", fsid=4,
            read_gbps=0.90, write_gbps=0.68,
            capacity_bytes=100 * GB, latency_s=0.003,
            noise_sigma=0.8, crowding_factor=3.0,
            interference_sensitivity=0.5,
            cache_hit_rate=0.03, cache_gbps=12.0,
            description="temporary RAID 1 mount",
        ),
        "people": DeviceSpec(
            name="people", fsid=5,
            read_gbps=2.05, write_gbps=1.6,
            capacity_bytes=1000 * GB, latency_s=0.006,
            noise_sigma=0.85, crowding_factor=2.5,
            interference_sensitivity=0.95,
            cache_hit_rate=0.05, cache_gbps=16.0,
            description="NFS home directory over shared 10 GbE",
        ),
    }


def bluesky_interference(seed: int = 0) -> dict[str, LoadProcess]:
    """External-load processes per mount.

    people and pic sit behind shared servers "used by multiple users who
    conduct work that stresses the system at all hours"; the scratch RAID
    mounts see light local traffic; USBtmp is private.
    """
    return {
        "USBtmp": ConstantLoad(0.0),
        "pic": CompositeLoad([
            DiurnalLoad(base=0.10, amplitude=0.35, period=1800.0, phase=0.7),
            BurstyLoad(p_on=0.30, on_level=0.35, off_level=0.02,
                       slot_seconds=45.0, seed=seed * 31 + 1),
        ]),
        "tmp": BurstyLoad(p_on=0.15, on_level=0.25, off_level=0.02,
                          slot_seconds=60.0, seed=seed * 31 + 2),
        "file0": BurstyLoad(p_on=0.18, on_level=0.85, off_level=0.0,
                            slot_seconds=300.0, seed=seed * 31 + 3),
        "var": BurstyLoad(p_on=0.20, on_level=0.30, off_level=0.03,
                          slot_seconds=60.0, seed=seed * 31 + 4),
        "people": CompositeLoad([
            DiurnalLoad(base=0.15, amplitude=0.40, period=2400.0, phase=0.0),
            BurstyLoad(p_on=0.35, on_level=0.40, off_level=0.05,
                       slot_seconds=30.0, seed=seed * 31 + 5),
        ]),
    }


def describe_bluesky() -> str:
    """A Fig. 1-style text description of the testbed."""
    specs = bluesky_device_specs()
    lines = [
        "Bluesky testbed (paper Fig. 1) -- one computation node, six mounts:",
    ]
    for name in BLUESKY_DEVICE_NAMES:
        spec = specs[name]
        lines.append(
            f"  {name:8s} fsid={spec.fsid}  "
            f"{spec.read_gbps:.2f}/{spec.write_gbps:.2f} GB/s r/w  "
            f"{spec.capacity_bytes // GB:>6d} GB  -- {spec.description}"
        )
    return "\n".join(lines)


def make_bluesky_cluster(
    seed: int = 0,
    *,
    extra_interference: dict[str, LoadProcess] | None = None,
) -> StorageCluster:
    """Build the Fig. 1 testbed.

    ``extra_interference`` layers additional load processes onto named
    mounts (Experiment 3 / Fig. 6 uses this to script the moment a
    competing workload appears).
    """
    specs = bluesky_device_specs()
    interference = bluesky_interference(seed)
    if extra_interference is not None:
        for name, process in extra_interference.items():
            if name not in interference:
                raise ConfigurationError(
                    f"unknown mount {name!r}; have {sorted(interference)}"
                )
            interference[name] = CompositeLoad([interference[name], process])
    devices = [
        StorageDevice(specs[name], interference[name], seed=seed)
        for name in BLUESKY_DEVICE_NAMES
    ]
    # 10 Gbit Ethernet interconnect (1.25 GB/s).
    return StorageCluster(devices, link=TransferLink(1.25, 0.001))
