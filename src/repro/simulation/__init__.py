"""Simulated distributed storage substrate (substitute for PNNL's Bluesky).

The paper evaluates Geomancy on a live computation node with six mounts of
very different character (NFS home, RAID1 scratch, RAID5, Lustre, USB HDD)
shared with other users.  We cannot access that hardware, so this package
provides a discrete-time storage-cluster simulator that produces the same
*signal* Geomancy learns from: per-access throughput that depends on which
device holds the data, on time-varying external interference, and on how
crowded a device is with the workload's own files.

* :mod:`repro.simulation.clock` -- simulated time, split into the
  second/millisecond parts the telemetry schema uses.
* :mod:`repro.simulation.interference` -- external-load processes
  (constant, diurnal, bursty, spikes) occupying a fraction of a device's
  bandwidth.
* :mod:`repro.simulation.device` -- storage devices with asymmetric
  read/write bandwidth, capacity, latency, heavy-tailed noise and
  crowding-dependent contention.
* :mod:`repro.simulation.network` -- migration transfer links.
* :mod:`repro.simulation.cluster` -- the cluster: namespace, access
  execution, migrations and usage accounting.
* :mod:`repro.simulation.bluesky` -- the six-mount Bluesky testbed of
  Fig. 1, parameterized to echo Table IV's device ordering and variance.
"""

from repro.simulation.bluesky import (
    BLUESKY_DEVICE_NAMES,
    bluesky_device_specs,
    describe_bluesky,
    make_bluesky_cluster,
)
from repro.simulation.clock import SimulationClock, timestamp_parts
from repro.simulation.cluster import FileInfo, StorageCluster
from repro.simulation.device import DeviceSpec, StorageDevice
from repro.simulation.interference import (
    BurstyLoad,
    CompositeLoad,
    ConstantLoad,
    DiurnalLoad,
    LoadProcess,
    SpikeLoad,
)
from repro.simulation.network import TransferLink
from repro.simulation.topologies import (
    make_homogeneous_cluster,
    make_tiered_cluster,
)

__all__ = [
    "BLUESKY_DEVICE_NAMES",
    "bluesky_device_specs",
    "describe_bluesky",
    "make_bluesky_cluster",
    "make_homogeneous_cluster",
    "make_tiered_cluster",
    "SimulationClock",
    "timestamp_parts",
    "FileInfo",
    "StorageCluster",
    "DeviceSpec",
    "StorageDevice",
    "BurstyLoad",
    "CompositeLoad",
    "ConstantLoad",
    "DiurnalLoad",
    "LoadProcess",
    "SpikeLoad",
    "TransferLink",
]
