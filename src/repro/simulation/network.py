"""Migration transfer links.

Geomancy "limits how often and how much data can be transferred at once
without creating a bottleneck in the network" (section V-A); the cluster
routes every file migration over a :class:`TransferLink` so migration cost
is part of every measured experiment.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.device import GBPS


class TransferLink:
    """A point-to-point link with fixed bandwidth and latency."""

    def __init__(self, bandwidth_gbps: float = 1.25, latency_s: float = 0.001) -> None:
        # 1.25 GB/s is 10 Gbit Ethernet, the paper's NFS interconnect.
        if bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {bandwidth_gbps}"
            )
        if latency_s < 0:
            raise ConfigurationError(
                f"latency must be non-negative, got {latency_s}"
            )
        self.bandwidth_gbps = float(bandwidth_gbps)
        self.latency_s = float(latency_s)

    @property
    def bandwidth_bytes(self) -> float:
        return self.bandwidth_gbps * GBPS

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise SimulationError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes
