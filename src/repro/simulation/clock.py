"""Simulated time.

Telemetry records carry timestamps split into second and millisecond parts
(``ots``/``otms``, ``cts``/``ctms``), matching the EOS access-log schema and
the paper's Tp formula, so the clock provides that split directly.
"""

from __future__ import annotations

from repro.errors import SimulationError


def timestamp_parts(t: float) -> tuple[int, int]:
    """Split fractional seconds into ``(seconds, milliseconds)`` parts.

    Milliseconds are truncated (not rounded) so the reassembled value
    ``s + ms/1000`` never exceeds ``t``; rounding up could produce a
    close-before-open record for very short accesses.
    """
    if t < 0:
        raise SimulationError(f"timestamps are non-negative, got {t}")
    seconds = int(t)
    millis = int((t - seconds) * 1000.0)
    if millis > 999:  # guard against float artifacts like 0.9999999 -> 1000
        millis = 999
    return seconds, millis


class SimulationClock:
    """Monotonically advancing simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"start time must be non-negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise SimulationError(f"cannot advance by negative dt={dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (never backward)."""
        if t < self._now:
            raise SimulationError(
                f"cannot move clock backward from {self._now} to {t}"
            )
        self._now = float(t)
        return self._now

    def parts(self) -> tuple[int, int]:
        """Current time as ``(seconds, milliseconds)``."""
        return timestamp_parts(self._now)
