"""Additional cluster topologies beyond the Bluesky testbed.

The related-work systems the paper contrasts against assume particular
storage shapes: Univistor/Stacker want "a tiered storage cluster with
performance strictly going up as storage densities decrease" (a burst
buffer over disk over tape), while Geomancy claims to work with "varying
levels of performance, but no one storage layer dedicated to caching."
These factories build both shapes so that claim is testable.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.simulation.cluster import StorageCluster
from repro.simulation.device import DeviceSpec, StorageDevice
from repro.simulation.interference import BurstyLoad, ConstantLoad
from repro.simulation.network import TransferLink

GB = 10**9


def make_tiered_cluster(
    *,
    seed: int = 0,
    buffer_capacity_gb: int = 50,
) -> StorageCluster:
    """A strict performance hierarchy: burst buffer > disk pool > archive.

    Performance strictly increases as capacity decreases -- the storage
    shape Univistor and Stacker are built for.
    """
    if buffer_capacity_gb < 1:
        raise ConfigurationError(
            f"buffer_capacity_gb must be >= 1, got {buffer_capacity_gb}"
        )
    devices = [
        StorageDevice(
            DeviceSpec(
                name="burst", fsid=0, read_gbps=8.0, write_gbps=6.0,
                capacity_bytes=buffer_capacity_gb * GB, latency_s=0.0003,
                noise_sigma=0.2, crowding_factor=1.5,
                interference_sensitivity=0.05,
                description="NVRAM burst buffer",
            ),
            ConstantLoad(0.02),
            seed=seed,
        ),
        StorageDevice(
            DeviceSpec(
                name="disk", fsid=1, read_gbps=1.5, write_gbps=1.0,
                capacity_bytes=2000 * GB, latency_s=0.004,
                noise_sigma=0.5, crowding_factor=2.5,
                interference_sensitivity=0.5,
                description="shared disk pool",
            ),
            BurstyLoad(p_on=0.25, on_level=0.4, off_level=0.05,
                       slot_seconds=60.0, seed=seed * 17 + 1),
            seed=seed,
        ),
        StorageDevice(
            DeviceSpec(
                name="archive", fsid=2, read_gbps=0.25, write_gbps=0.2,
                capacity_bytes=50_000 * GB, latency_s=0.05,
                noise_sigma=0.2, crowding_factor=1.0,
                interference_sensitivity=0.2,
                description="cold archive",
            ),
            ConstantLoad(0.05),
            seed=seed,
        ),
    ]
    return StorageCluster(devices, link=TransferLink(1.25, 0.001))


#: hardware templates the scaled factory cycles through, index order:
#: (read_gbps, write_gbps, latency_s, noise_sigma, crowding_factor,
#:  interference_sensitivity, p_on, on_level, slot_seconds, description)
_SCALED_TIERS: tuple[tuple, ...] = (
    (6.0, 4.5, 0.0004, 0.2, 1.5, 0.10, 0.15, 0.5, 45.0, "nvme node"),
    (3.0, 2.2, 0.0010, 0.3, 2.0, 0.40, 0.25, 0.5, 60.0, "ssd node"),
    (1.5, 1.0, 0.0040, 0.5, 2.5, 0.60, 0.30, 0.6, 90.0, "disk node"),
    (0.6, 0.45, 0.0100, 0.4, 2.0, 0.50, 0.35, 0.7, 120.0, "dense disk node"),
)


def _scaled_device(idx: int, *, seed: int, capacity_gb: int) -> StorageDevice:
    """Device ``idx`` of the scaled cluster -- pure in ``(seed, idx)``.

    Shard slices must reproduce the full build exactly, so nothing here
    may depend on which *other* indices are being built: per-device
    speed jitter comes from a Weyl-style integer hash of the index, and
    the interference schedule is seeded per index, exactly as the
    homogeneous factory seeds its nodes.
    """
    (read, write, latency, noise, crowding, sensitivity,
     p_on, on_level, slot, desc) = _SCALED_TIERS[idx % len(_SCALED_TIERS)]
    jitter = 0.85 + 0.3 * (((idx * 2654435761 + seed * 40503) % 1000) / 1000.0)
    return StorageDevice(
        DeviceSpec(
            name=f"dev{idx:05d}", fsid=idx,
            read_gbps=read * jitter, write_gbps=write * jitter,
            capacity_bytes=capacity_gb * GB, latency_s=latency,
            noise_sigma=noise, crowding_factor=crowding,
            interference_sensitivity=sensitivity,
            description=desc,
        ),
        BurstyLoad(p_on=p_on, on_level=on_level, off_level=0.05,
                   slot_seconds=slot, seed=seed * 23 + idx),
        seed=seed,
    )


def make_scaled_cluster(
    n_devices: int,
    *,
    seed: int = 0,
    indices: list[int] | None = None,
    capacity_gb: int = 100,
) -> StorageCluster:
    """A tier-cycling cluster sized for the 10^3-device scale-out sweeps.

    Device ``i`` is a pure function of ``(seed, i)``: building the slice
    ``indices=[3, 7]`` yields devices identical to positions 3 and 7 of
    the full ``n_devices`` build.  That property is what lets each shard
    of the partitioned experiment rebuild exactly its own devices from
    seeds -- the parallel-cell discipline of ``experiments/parallel.py``
    extended to topology slices.
    """
    if n_devices < 1:
        raise ConfigurationError(f"n_devices must be >= 1, got {n_devices}")
    if capacity_gb < 1:
        raise ConfigurationError(f"capacity_gb must be >= 1, got {capacity_gb}")
    if indices is None:
        indices = list(range(n_devices))
    if len(set(indices)) != len(indices):
        raise ConfigurationError(f"indices must be unique, got {indices}")
    for idx in indices:
        if not 0 <= idx < n_devices:
            raise ConfigurationError(
                f"indices must be in [0, {n_devices}), got {idx}"
            )
    if not indices:
        raise ConfigurationError("indices must select at least one device")
    devices = [
        _scaled_device(idx, seed=seed, capacity_gb=capacity_gb)
        for idx in indices
    ]
    return StorageCluster(devices, link=TransferLink(1.25, 0.001))


def make_homogeneous_cluster(
    n_devices: int = 4,
    *,
    seed: int = 0,
    read_gbps: float = 1.5,
    capacity_gb: int = 500,
) -> StorageCluster:
    """N identical devices differing only in their external interference.

    The degenerate case for heuristics that rank devices by hardware speed:
    all differentiation comes from time-varying contention, which is
    exactly the signal Geomancy's model feeds on.
    """
    if n_devices < 2:
        raise ConfigurationError(f"need >= 2 devices, got {n_devices}")
    if read_gbps <= 0:
        raise ConfigurationError(f"read_gbps must be positive, got {read_gbps}")
    if capacity_gb < 1:
        raise ConfigurationError(f"capacity_gb must be >= 1, got {capacity_gb}")
    devices = [
        StorageDevice(
            DeviceSpec(
                name=f"node{i}", fsid=i,
                read_gbps=read_gbps, write_gbps=read_gbps * 0.7,
                capacity_bytes=capacity_gb * GB, latency_s=0.003,
                noise_sigma=0.4, crowding_factor=2.5,
                interference_sensitivity=0.8,
                description="homogeneous storage node",
            ),
            # Each node gets its own bursty schedule: at any moment some
            # nodes are hot and others quiet.
            BurstyLoad(p_on=0.3, on_level=0.6, off_level=0.05,
                       slot_seconds=90.0, seed=seed * 23 + i),
            seed=seed,
        )
        for i in range(n_devices)
    ]
    return StorageCluster(devices, link=TransferLink(1.25, 0.001))
