"""The storage cluster: devices + file namespace + accesses + migrations."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    CapacityError,
    DeviceOfflineError,
    DeviceUnavailableError,
    MigrationError,
    SimulationError,
    UnknownDeviceError,
    UnknownFileError,
)
from repro.features.throughput import BYTES_PER_GB
from repro.observability import get_observability
from repro.replaydb.records import AccessRecord, MovementRecord
from repro.simulation.clock import timestamp_parts
from repro.simulation.device import GBPS, MIN_ACCESS_DURATION, StorageDevice
from repro.simulation.network import TransferLink


@dataclass
class FileInfo:
    """One file in the cluster namespace."""

    fid: int
    path: str
    size_bytes: int
    device: str

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise SimulationError(
                f"file {self.fid} must have positive size, got {self.size_bytes}"
            )


@dataclass
class BatchAccessResult:
    """Outcome of :meth:`StorageCluster.access_batch`.

    ``end_time`` is the simulated time after the last processed op
    (including think time / offline penalties), ``failed`` counts ops
    rejected by offline devices under ``tolerate_offline``, and
    ``pending_error`` carries the :class:`DeviceOfflineError` that stopped
    the batch when offline tolerance is off -- the caller finalizes its
    bookkeeping (records already completed, clock position) and re-raises.
    """

    records: list[AccessRecord] = field(default_factory=list)
    failed: int = 0
    end_time: float = 0.0
    pending_error: Exception | None = None


class _ScanDevice:
    """Per-device scratch state for one :meth:`access_batch` scan.

    Besides the pre-drawn randomness and rewind snapshots, it caches the
    device's loop-invariant serving constants so the scan's hot path pays
    slot lookups instead of ``spec`` attribute chains.  ``degradation``
    and ``online`` stay live reads on the device -- fault injectors flip
    them mid-batch through ``advance_hook``.
    """

    __slots__ = (
        "device", "cursor", "rng_state0", "rng_cache_state0",
        # per-op inputs grouped in op order (cursor-indexed)
        "rb_d", "wb_d",
        # pre-drawn randomness (cursor-indexed lists or None)
        "hit", "noise",
        # loop-invariant serving constants
        "name", "fsid", "sens", "load", "crowding", "window_capacity",
        "window_s", "read_base", "write_base", "cache_base", "latency",
        # deferred per-device outputs (served ops only, in serve order)
        "durs", "tots",
    )

    def __init__(self, device: StorageDevice) -> None:
        self.device = device
        self.cursor = 0
        self.rng_state0 = None
        self.rng_cache_state0 = None
        self.rb_d = []
        self.wb_d = []
        self.hit = None
        self.noise = None
        spec = device.spec
        self.name = spec.name
        self.fsid = spec.fsid
        self.sens = spec.interference_sensitivity
        self.load = device.interference.load
        self.crowding = spec.crowding_factor
        self.window_capacity = device._window_capacity
        self.window_s = spec.utilization_window_s
        self.read_base = spec.read_gbps * GBPS
        self.write_base = spec.write_gbps * GBPS
        self.cache_base = spec.cache_gbps * GBPS
        self.latency = spec.latency_s
        self.durs = []
        self.tots = []

    def snapshot_and_prepare(self) -> None:
        """Snapshot the RNG streams, then pre-draw for the grouped ops."""
        device = self.device
        self.rng_state0 = device._rng.bit_generator.state
        self.rng_cache_state0 = device._rng_cache.bit_generator.state
        draws = device.prepare_batch(self.rb_d, self.wb_d, validate=False)
        self.hit = draws.hit
        self.noise = draws.noise

    def flush_stats(self) -> None:
        """Apply the deferred per-device accounting.

        Bit-for-bit the scalar bookkeeping: ``busy_time`` and the
        throughput aggregates accumulate per op in serve order; only the
        loop moved out of the per-op hot path.
        """
        durs = self.durs
        if not durs:
            return
        stats = self.device.stats
        tots = self.tots
        stats.accesses += len(durs)
        stats.bytes_served += sum(tots)
        busy = stats.busy_time
        for duration in durs:
            busy += duration
        stats.busy_time = busy
        stats.extend_samples(
            [total / duration for total, duration in zip(tots, durs)]
        )

    def rewind_unconsumed_draws(self) -> None:
        """Roll the RNG streams back to cover only the ops actually reached.

        Used when a batch aborts partway (offline device, tolerance off):
        the scalar reference would have consumed draws only for the ops up
        to and including the failing one, so the pre-drawn remainder is
        undone by restoring the pre-batch states and re-consuming exactly
        ``cursor`` ops' worth of draws.
        """
        device = self.device
        spec = device.spec
        k = self.cursor
        device._rng.bit_generator.state = self.rng_state0
        device._rng_cache.bit_generator.state = self.rng_cache_state0
        misses = k
        if spec.cache_hit_rate:
            u = device._rng_cache.random(k)
            misses = k - int(np.count_nonzero(u < spec.cache_hit_rate))
        if spec.noise_sigma and misses:
            sigma = spec.noise_sigma
            device._rng.lognormal(-sigma * sigma / 2.0, sigma, misses)


class StorageCluster:
    """Devices, the files placed on them, and the operations between them.

    All methods that touch time take an explicit ``t`` (simulated seconds);
    the cluster itself is clock-free so multiple workload runners can share
    it while interleaving their own timelines.
    """

    def __init__(
        self,
        devices: list[StorageDevice],
        *,
        link: TransferLink | None = None,
    ) -> None:
        if not devices:
            raise SimulationError("a cluster needs at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate device names: {names}")
        fsids = [d.fsid for d in devices]
        if len(set(fsids)) != len(fsids):
            raise SimulationError(f"duplicate fsids: {fsids}")
        self._devices: dict[str, StorageDevice] = {d.name: d for d in devices}
        self._by_fsid: dict[int, StorageDevice] = {d.fsid: d for d in devices}
        self.link = link if link is not None else TransferLink()
        self._files: dict[int, FileInfo] = {}
        #: incremental per-device stored-byte counters; kept in sync by
        #: every namespace mutation so capacity checks are O(1) instead of
        #: an O(n-files) scan per placement
        self._stored_bytes: dict[str, int] = {d.name: 0 for d in devices}
        #: optional fault hook consulted by :meth:`migrate`.  Called with
        #: ``(fid, src, dst, t, size_bytes)``; returning a fraction in
        #: (0, 1] aborts the transfer after that share of the bytes moved
        #: (the wasted traffic still hits both devices), ``None`` lets the
        #: migration proceed.  Installed by the fault-injection framework.
        self.migration_interceptor: (
            Callable[[int, str, str, float, int], float | None] | None
        ) = None
        metrics = get_observability().metrics
        self._m_accesses = metrics.counter(
            "repro_simulation_accesses_total", "file accesses served"
        )
        self._m_migrations = metrics.counter(
            "repro_simulation_migrations_total", "file migrations completed"
        )
        self._m_migrations_aborted = metrics.counter(
            "repro_simulation_migrations_aborted_total",
            "file migrations aborted mid-transfer",
        )
        self._m_migrated_bytes = metrics.counter(
            "repro_simulation_migrated_bytes_total",
            "bytes moved by completed migrations",
        )

    # -- device access -----------------------------------------------------
    @property
    def device_names(self) -> list[str]:
        return list(self._devices)

    @property
    def fsids(self) -> list[int]:
        return [d.fsid for d in self._devices.values()]

    def device(self, name: str) -> StorageDevice:
        try:
            return self._devices[name]
        except KeyError:
            raise UnknownDeviceError(
                f"no device named {name!r}; have {self.device_names}"
            ) from None

    def device_by_fsid(self, fsid: int) -> StorageDevice:
        try:
            return self._by_fsid[fsid]
        except KeyError:
            raise UnknownDeviceError(
                f"no device with fsid {fsid}; have {self.fsids}"
            ) from None

    def add_device(self, device: StorageDevice) -> None:
        """Attach a new device to a running cluster (mid-experiment growth)."""
        if device.name in self._devices:
            raise SimulationError(f"duplicate device name: {device.name!r}")
        if device.fsid in self._by_fsid:
            raise SimulationError(f"duplicate fsid: {device.fsid}")
        self._devices[device.name] = device
        self._by_fsid[device.fsid] = device
        self._stored_bytes[device.name] = 0

    # -- availability ----------------------------------------------------
    @property
    def available_device_names(self) -> list[str]:
        """Devices currently accepting new placements (and reachable)."""
        return [
            d.name for d in self._devices.values() if d.available and d.online
        ]

    @property
    def online_device_names(self) -> list[str]:
        """Devices currently reachable (serving accesses)."""
        return [d.name for d in self._devices.values() if d.online]

    def set_device_available(self, name: str, available: bool) -> None:
        """Mark a device (un)available for *new* placements.

        Existing files on an unavailable device keep being served; only
        ``add_file`` and migrations toward it are refused.  This models
        the paper's "permissions or availability changes in the system"
        (section V-H), which the Action Checker filters against.
        """
        self.device(name).available = bool(available)

    def set_device_online(self, name: str, online: bool) -> None:
        """Take a device offline (fault) or bring it back.

        An offline device serves no accesses and accepts no placements;
        files on it are *stranded* until the control plane rescues them
        onto live devices (reading through the recovery path).
        """
        self.device(name).online = bool(online)

    def files_stranded(self) -> list[FileInfo]:
        """Files currently placed on offline devices."""
        return [
            info for info in self._files.values()
            if not self._devices[info.device].online
        ]

    def _require_available(self, name: str) -> None:
        device = self.device(name)
        if not device.online:
            raise DeviceOfflineError(f"device {name!r} is offline")
        if not device.available:
            raise DeviceUnavailableError(
                f"device {name!r} is not accepting new placements"
            )

    # -- namespace -----------------------------------------------------------
    def add_file(self, fid: int, path: str, size_bytes: int, device: str) -> FileInfo:
        """Place a new file on a device."""
        if fid in self._files:
            raise SimulationError(f"file {fid} already exists")
        self.device(device)  # validate
        self._require_available(device)
        info = FileInfo(fid=fid, path=path, size_bytes=size_bytes, device=device)
        self._check_capacity(device, size_bytes)
        self._files[fid] = info
        self._stored_bytes[device] += size_bytes
        return info

    def restore_file(
        self, fid: int, path: str, size_bytes: int, device: str
    ) -> FileInfo:
        """Re-register a file at its checkpointed placement.

        The crash-recovery path: the placement was legal when the
        checkpoint captured it, so availability and capacity admission are
        bypassed -- a file may legitimately sit on a device that has since
        stopped accepting *new* placements (or was checkpointed stranded
        on an offline one).  The device must exist and the fid must be
        fresh; recovery code re-validates the restored cluster against
        :func:`repro.faults.invariants.assert_cluster_invariants` after
        the full namespace is rebuilt.
        """
        if fid in self._files:
            raise SimulationError(f"file {fid} already exists")
        self.device(device)  # validate the device name only
        info = FileInfo(fid=fid, path=path, size_bytes=size_bytes, device=device)
        self._files[fid] = info
        self._stored_bytes[device] += size_bytes
        return info

    def file(self, fid: int) -> FileInfo:
        try:
            return self._files[fid]
        except KeyError:
            raise UnknownFileError(f"no file with fid {fid}") from None

    @property
    def files(self) -> list[FileInfo]:
        return list(self._files.values())

    def layout(self) -> dict[int, str]:
        """Current placement: fid -> device name.

        This is the paper's "configuration file" that workloads consult
        before each access (section VI).
        """
        return {fid: info.device for fid, info in self._files.items()}

    def files_on(self, device: str) -> list[FileInfo]:
        self.device(device)  # validate
        return [info for info in self._files.values() if info.device == device]

    def stored_bytes(self, device: str) -> int:
        self.device(device)  # validate
        return self._stored_bytes[device]

    def _check_capacity(self, device: str, extra_bytes: int) -> None:
        spec = self.device(device).spec
        if self._stored_bytes[device] + extra_bytes > spec.capacity_bytes:
            raise CapacityError(
                f"placing {extra_bytes} bytes on {device!r} would exceed its "
                f"capacity of {spec.capacity_bytes} bytes"
            )

    # -- operations ------------------------------------------------------
    def access(self, fid: int, t: float, *, rb: int = 0, wb: int = 0) -> AccessRecord:
        """Perform one file access starting at time ``t``.

        ``rb``/``wb`` default to a full-file read when both are zero, the
        common case for the BELLE II workload's whole-file scans.
        """
        info = self.file(fid)
        if rb == 0 and wb == 0:
            rb = info.size_bytes
        device = self.device(info.device)
        if not device.online:
            # Burn the draws a served access would have consumed so the
            # RNG position depends only on the op sequence, never on fault
            # state (the contract the batch path's pre-drawing relies on).
            device.burn_access_draws()
            raise DeviceOfflineError(
                f"file {fid} is stranded on offline device {info.device!r}"
            )
        duration = device.perform_access(t, rb, wb)
        self._m_accesses.inc()
        ots, otms = timestamp_parts(t)
        cts, ctms = timestamp_parts(t + duration)
        return AccessRecord(
            fid=fid,
            fsid=device.fsid,
            device=device.name,
            path=info.path,
            rb=rb,
            wb=wb,
            ots=ots,
            otms=otms,
            cts=cts,
            ctms=ctms,
        )

    def access_batch(
        self,
        fids,
        t0: float,
        rb=None,
        wb=None,
        *,
        think_time_s: float = 0.0,
        tolerate_offline: bool = False,
        offline_penalty_s: float = 0.0,
        advance_hook: Callable[[float], None] | None = None,
    ) -> BatchAccessResult:
        """Serve a whole run's ops in one batched scan.

        Equivalent -- bit-for-bit, including RNG draw order per device --
        to a loop of :meth:`access` calls that advances a clock by each
        record's (millisecond-truncated) duration plus ``think_time_s``,
        with offline accesses charged ``offline_penalty_s + think_time_s``
        under ``tolerate_offline`` (the :class:`WorkloadRunner` contract).

        All randomness is pre-drawn per device with vectorized generator
        calls; the sequential scan then resolves each op against the
        crowding created by its predecessors.  ``advance_hook`` is called
        with the simulated time after every *successful* access -- the
        seam fault injectors use to flip devices offline mid-batch (draws
        for rejected ops stay burned, so the pre-draw stays aligned).

        The layout must not change during the batch (no concurrent
        migrations).  When an offline device stops a non-tolerant batch,
        the error is returned in :attr:`BatchAccessResult.pending_error`
        (not raised) with the already-completed records, and the unused
        pre-drawn randomness is rolled back so the devices' RNG streams
        sit exactly where the scalar loop would have left them.
        """
        fid_list = (
            fids.tolist() if isinstance(fids, np.ndarray) else [int(f) for f in fids]
        )
        n = len(fid_list)
        if rb is None:
            rb_list = [0] * n
        else:
            rb_list = (
                rb.tolist() if isinstance(rb, np.ndarray) else [int(v) for v in rb]
            )
        if wb is None:
            wb_list = [0] * n
        else:
            wb_list = (
                wb.tolist() if isinstance(wb, np.ndarray) else [int(v) for v in wb]
            )
        if len(rb_list) != n or len(wb_list) != n:
            raise SimulationError("fids/rb/wb must be equal-length arrays")

        # Resolve files, default byte counts, pre-validate every op, and
        # group ops by device -- all in one pass, before any randomness is
        # consumed.  The fid cache is sound because the layout is frozen
        # for the duration of the batch.
        scan_devices: dict[str, _ScanDevice] = {}
        fid_cache: dict[int, tuple[FileInfo, _ScanDevice]] = {}
        op_state: list[_ScanDevice] = []
        paths: list[str] = []
        for i in range(n):
            fid = fid_list[i]
            entry = fid_cache.get(fid)
            if entry is None:
                info = self.file(fid)
                state = scan_devices.get(info.device)
                if state is None:
                    state = _ScanDevice(self._devices[info.device])
                    scan_devices[info.device] = state
                entry = (info, state)
                fid_cache[fid] = entry
            info, state = entry
            rbi = rb_list[i]
            wbi = wb_list[i]
            if rbi < 0 or wbi < 0:
                raise SimulationError(
                    f"byte counts must be non-negative (rb={rbi}, wb={wbi})"
                )
            if rbi == 0 and wbi == 0:
                rb_list[i] = info.size_bytes
            op_state.append(state)
            paths.append(info.path)
            state.rb_d.append(rb_list[i])
            state.wb_d.append(wbi)
        for state in scan_devices.values():
            state.snapshot_and_prepare()

        result = BatchAccessResult()
        t = float(t0)
        pending: Exception | None = None
        #: per-served-op record fields, materialized after the scan
        served: list[tuple] = []
        append_served = served.append
        for i in range(n):
            state = op_state[i]
            dev = state.device
            k = state.cursor
            state.cursor = k + 1
            if not dev.online:
                # This op's draws stay burned (matching burn_access_draws
                # on the scalar path).
                if not tolerate_offline:
                    pending = DeviceOfflineError(
                        f"file {fid_list[i]} is stranded on offline device "
                        f"{state.name!r}"
                    )
                    break
                result.failed += 1
                t += offline_penalty_s + think_time_s
                continue
            rbi = rb_list[i]
            wbi = wb_list[i]
            total = rbi + wbi
            hit = state.hit
            if hit is not None and hit[k]:
                # Inlined serve_prepared cache-hit path: load-independent,
                # same float-op order as the scalar branch.
                duration = state.latency + total / state.cache_base
                if duration < MIN_ACCESS_DURATION:
                    duration = MIN_ACCESS_DURATION
            else:
                # Inlined StorageDevice.serve_prepared miss path: same
                # float-op order, with the loop-invariant spec constants
                # read off the scan state.  degradation/online stay live
                # reads -- advance_hook may flip them between ops.
                ext = state.sens * state.load(t)
                if ext > 0.95:
                    ext = 0.95
                rt = dev._recent_t
                head = dev._recent_head
                if head < len(rt) and rt[head] < t - state.window_s:
                    dev._prune_recent(t)
                crowd = state.crowding * (
                    dev._recent_sum / state.window_capacity
                )
                deg = dev.degradation
                one_minus_ext = 1.0 - ext
                denom = 1.0 + crowd
                transfer = 0.0
                if rbi:
                    transfer += rbi / (
                        state.read_base * deg * one_minus_ext / denom
                    )
                if wbi:
                    transfer += wbi / (
                        state.write_base * deg * one_minus_ext / denom
                    )
                noise = state.noise
                if noise is not None:
                    transfer *= noise[k]
                duration = state.latency + transfer
                if duration < MIN_ACCESS_DURATION:
                    duration = MIN_ACCESS_DURATION
            close = t + duration
            # Inlined _window_append; stats are deferred to flush_stats.
            dev._recent_t.append(close)
            dev._recent_b.append(total)
            dev._recent_sum += total
            state.durs.append(duration)
            state.tots.append(total)
            # Inlined timestamp_parts (t is monotone non-negative here).
            ots = int(t)
            otms = int((t - ots) * 1000.0)
            if otms > 999:
                otms = 999
            cts = int(close)
            ctms = int((close - cts) * 1000.0)
            if ctms > 999:
                ctms = 999
            # ms-truncated duration: the clock advance AND the throughput
            # denominator, exactly the floats access_throughput computes.
            trunc = (cts + ctms / 1000.0) - (ots + otms / 1000.0)
            append_served(
                (fid_list[i], state.fsid, state.name, paths[i], rbi, wbi,
                 ots, otms, cts, ctms, total / trunc)
            )
            # The clock advances by the record's ms-truncated duration,
            # exactly as the scalar runner does.
            t += trunc + think_time_s
            if advance_hook is not None:
                advance_hook(t)
        # Ops completed before an abort keep their accounting, exactly as
        # the scalar loop would have left it.
        for state in scan_devices.values():
            state.flush_stats()
        records = result.records
        if served:
            self._m_accesses.inc(len(served))
            trusted = AccessRecord._trusted
            append_record = records.append
            # The scan already computed each op's throughput with the
            # exact floats of the scalar property (total / ms-truncated
            # duration), so the cached properties are pre-seeded here.
            for (fid, fsid, name, path, rbi, wbi, ots, otms, cts, ctms,
                 tp) in served:
                append_record(trusted({
                    "fid": fid,
                    "fsid": fsid,
                    "device": name,
                    "path": path,
                    "rb": rbi,
                    "wb": wbi,
                    "ots": ots,
                    "otms": otms,
                    "cts": cts,
                    "ctms": ctms,
                    "extra": {},
                    "throughput": tp,
                    "throughput_gbps": tp / BYTES_PER_GB,
                }))
        if pending is not None:
            for state in scan_devices.values():
                state.rewind_unconsumed_draws()
        result.end_time = t
        result.pending_error = pending
        return result

    def migrate(self, fid: int, dst: str, t: float) -> MovementRecord | None:
        """Move a file to device ``dst`` starting at time ``t``.

        Returns ``None`` when the file is already there (a no-op the
        policies are allowed to request).  The transfer occupies the source
        (read), the destination (write) and the network link; both devices
        absorb the traffic so migrations crowd subsequent accesses -- the
        paper's measurements always "includ[e] moving overhead".

        A file on an *offline* source can still be rescued: the read side
        falls back to the recovery path at link speed instead of the dead
        device's bandwidth.  When a :attr:`migration_interceptor` aborts
        the transfer partway, the file is rolled back to the source, the
        partial traffic is still charged to both (online) devices, and a
        :class:`~repro.errors.MigrationError` is raised.
        """
        info = self.file(fid)
        dst_device = self.device(dst)
        if info.device == dst:
            return None
        self._require_available(dst)
        self._check_capacity(dst, info.size_bytes)
        src_device = self.device(info.device)
        if src_device.online:
            read_bw = src_device.effective_bandwidth(t, is_read=True)
        else:
            read_bw = self.link.bandwidth_bytes
        write_bw = dst_device.effective_bandwidth(t, is_read=False)
        bottleneck = min(read_bw, write_bw, self.link.bandwidth_bytes)
        if self.migration_interceptor is not None:
            fraction = self.migration_interceptor(
                fid, info.device, dst, t, info.size_bytes
            )
            if fraction is not None:
                if not 0.0 < fraction <= 1.0:
                    raise SimulationError(
                        f"abort fraction must be in (0, 1], got {fraction}"
                    )
                partial = int(info.size_bytes * fraction)
                duration = self.link.latency_s + partial / bottleneck
                if src_device.online:
                    src_device.absorb_transfer(t, partial, duration)
                dst_device.absorb_transfer(t, partial, duration)
                self._m_migrations_aborted.inc()
                raise MigrationError(
                    f"migration of file {fid} to {dst!r} aborted after "
                    f"{partial} of {info.size_bytes} bytes",
                    fid=fid,
                    src=info.device,
                    dst=dst,
                    bytes_attempted=info.size_bytes,
                    bytes_transferred=partial,
                    duration=duration,
                )
        duration = self.link.latency_s + info.size_bytes / bottleneck
        if src_device.online:
            src_device.absorb_transfer(t, info.size_bytes, duration)
        dst_device.absorb_transfer(t, info.size_bytes, duration)
        self._m_migrations.inc()
        self._m_migrated_bytes.inc(info.size_bytes)
        move = MovementRecord(
            timestamp=t,
            fid=fid,
            src_device=info.device,
            dst_device=dst,
            bytes_moved=info.size_bytes,
            duration=duration,
        )
        self._stored_bytes[info.device] -= info.size_bytes
        self._stored_bytes[dst] += info.size_bytes
        info.device = dst
        return move

    def migrate_incremental(
        self, fid: int, dst: str, t: float, *, chunk_bytes: int
    ) -> MovementRecord | None:
        """Move a file in chunks instead of one bulk transfer.

        The paper's future work: "Currently Geomancy moves whole files in
        one movement; however, in the future, we will incrementally move a
        file to address parallel accesses."  Each chunk is a separate
        transfer on both devices, so the crowding cost is spread over the
        whole window instead of landing as one burst; the total duration
        is correspondingly longer (per-chunk link latency re-paid).

        Returns one :class:`MovementRecord` covering the whole migration,
        or ``None`` if the file is already at ``dst``.
        """
        if chunk_bytes <= 0:
            raise SimulationError(
                f"chunk_bytes must be positive, got {chunk_bytes}"
            )
        info = self.file(fid)
        dst_device = self.device(dst)
        if info.device == dst:
            return None
        self._require_available(dst)
        self._check_capacity(dst, info.size_bytes)
        src_device = self.device(info.device)
        abort_after = None
        if self.migration_interceptor is not None:
            fraction = self.migration_interceptor(
                fid, info.device, dst, t, info.size_bytes
            )
            if fraction is not None:
                if not 0.0 < fraction <= 1.0:
                    raise SimulationError(
                        f"abort fraction must be in (0, 1], got {fraction}"
                    )
                abort_after = int(info.size_bytes * fraction)
        remaining = info.size_bytes
        now = t
        while remaining > 0:
            chunk = min(chunk_bytes, remaining)
            if src_device.online:
                read_bw = src_device.effective_bandwidth(now, is_read=True)
            else:
                read_bw = self.link.bandwidth_bytes
            write_bw = dst_device.effective_bandwidth(now, is_read=False)
            bottleneck = min(read_bw, write_bw, self.link.bandwidth_bytes)
            chunk_duration = self.link.latency_s + chunk / bottleneck
            if src_device.online:
                src_device.absorb_transfer(now, chunk, chunk_duration)
            dst_device.absorb_transfer(now, chunk, chunk_duration)
            now += chunk_duration
            remaining -= chunk
            moved = info.size_bytes - remaining
            if abort_after is not None and moved >= abort_after:
                self._m_migrations_aborted.inc()
                raise MigrationError(
                    f"migration of file {fid} to {dst!r} aborted after "
                    f"{moved} of {info.size_bytes} bytes",
                    fid=fid,
                    src=info.device,
                    dst=dst,
                    bytes_attempted=info.size_bytes,
                    bytes_transferred=moved,
                    duration=now - t,
                )
        self._m_migrations.inc()
        self._m_migrated_bytes.inc(info.size_bytes)
        move = MovementRecord(
            timestamp=t,
            fid=fid,
            src_device=info.device,
            dst_device=dst,
            bytes_moved=info.size_bytes,
            duration=now - t,
        )
        self._stored_bytes[info.device] -= info.size_bytes
        self._stored_bytes[dst] += info.size_bytes
        info.device = dst
        return move

    def apply_layout(
        self, layout: dict[int, str], t: float, *, strict: bool = True
    ) -> list[MovementRecord]:
        """Migrate every file whose target differs from its current device.

        Returns the movements actually performed, in fid order; the caller
        charges their total duration to its timeline.  With
        ``strict=False`` individually unsatisfiable moves (capacity
        exceeded, device stopped accepting placements) are skipped instead
        of aborting the whole layout mid-application -- the behaviour the
        Geomancy loop wants, since conditions can change between the
        Action Checker's validation and execution.
        """
        moves = []
        for fid in sorted(layout):
            try:
                move = self.migrate(fid, layout[fid], t)
            except (CapacityError, DeviceUnavailableError):
                if strict:
                    raise
                continue
            except MigrationError as exc:
                # Injected mid-transfer failure: the file stayed on its
                # source; charge the wasted time and carry on.
                if strict:
                    raise
                t += exc.duration
                continue
            if move is not None:
                moves.append(move)
                t += move.duration
        return moves

    # -- accounting ------------------------------------------------------
    def usage_percent(self) -> dict[str, float]:
        """Share of all workload accesses served per device (Table IV)."""
        total = sum(d.stats.accesses for d in self._devices.values())
        if total == 0:
            return {name: 0.0 for name in self._devices}
        return {
            name: 100.0 * dev.stats.accesses / total
            for name, dev in self._devices.items()
        }

    def reset_stats(self) -> None:
        for device in self._devices.values():
            device.reset_stats()
