"""The storage cluster: devices + file namespace + accesses + migrations."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import (
    CapacityError,
    DeviceOfflineError,
    DeviceUnavailableError,
    MigrationError,
    SimulationError,
    UnknownDeviceError,
    UnknownFileError,
)
from repro.observability import get_observability
from repro.replaydb.records import AccessRecord, MovementRecord
from repro.simulation.clock import timestamp_parts
from repro.simulation.device import StorageDevice
from repro.simulation.network import TransferLink


@dataclass
class FileInfo:
    """One file in the cluster namespace."""

    fid: int
    path: str
    size_bytes: int
    device: str

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise SimulationError(
                f"file {self.fid} must have positive size, got {self.size_bytes}"
            )


class StorageCluster:
    """Devices, the files placed on them, and the operations between them.

    All methods that touch time take an explicit ``t`` (simulated seconds);
    the cluster itself is clock-free so multiple workload runners can share
    it while interleaving their own timelines.
    """

    def __init__(
        self,
        devices: list[StorageDevice],
        *,
        link: TransferLink | None = None,
    ) -> None:
        if not devices:
            raise SimulationError("a cluster needs at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate device names: {names}")
        fsids = [d.fsid for d in devices]
        if len(set(fsids)) != len(fsids):
            raise SimulationError(f"duplicate fsids: {fsids}")
        self._devices: dict[str, StorageDevice] = {d.name: d for d in devices}
        self._by_fsid: dict[int, StorageDevice] = {d.fsid: d for d in devices}
        self.link = link if link is not None else TransferLink()
        self._files: dict[int, FileInfo] = {}
        #: optional fault hook consulted by :meth:`migrate`.  Called with
        #: ``(fid, src, dst, t, size_bytes)``; returning a fraction in
        #: (0, 1] aborts the transfer after that share of the bytes moved
        #: (the wasted traffic still hits both devices), ``None`` lets the
        #: migration proceed.  Installed by the fault-injection framework.
        self.migration_interceptor: (
            Callable[[int, str, str, float, int], float | None] | None
        ) = None
        metrics = get_observability().metrics
        self._m_accesses = metrics.counter(
            "repro_simulation_accesses_total", "file accesses served"
        )
        self._m_migrations = metrics.counter(
            "repro_simulation_migrations_total", "file migrations completed"
        )
        self._m_migrations_aborted = metrics.counter(
            "repro_simulation_migrations_aborted_total",
            "file migrations aborted mid-transfer",
        )
        self._m_migrated_bytes = metrics.counter(
            "repro_simulation_migrated_bytes_total",
            "bytes moved by completed migrations",
        )

    # -- device access -----------------------------------------------------
    @property
    def device_names(self) -> list[str]:
        return list(self._devices)

    @property
    def fsids(self) -> list[int]:
        return [d.fsid for d in self._devices.values()]

    def device(self, name: str) -> StorageDevice:
        try:
            return self._devices[name]
        except KeyError:
            raise UnknownDeviceError(
                f"no device named {name!r}; have {self.device_names}"
            ) from None

    def device_by_fsid(self, fsid: int) -> StorageDevice:
        try:
            return self._by_fsid[fsid]
        except KeyError:
            raise UnknownDeviceError(
                f"no device with fsid {fsid}; have {self.fsids}"
            ) from None

    def add_device(self, device: StorageDevice) -> None:
        """Attach a new device to a running cluster (mid-experiment growth)."""
        if device.name in self._devices:
            raise SimulationError(f"duplicate device name: {device.name!r}")
        if device.fsid in self._by_fsid:
            raise SimulationError(f"duplicate fsid: {device.fsid}")
        self._devices[device.name] = device
        self._by_fsid[device.fsid] = device

    # -- availability ----------------------------------------------------
    @property
    def available_device_names(self) -> list[str]:
        """Devices currently accepting new placements (and reachable)."""
        return [
            d.name for d in self._devices.values() if d.available and d.online
        ]

    @property
    def online_device_names(self) -> list[str]:
        """Devices currently reachable (serving accesses)."""
        return [d.name for d in self._devices.values() if d.online]

    def set_device_available(self, name: str, available: bool) -> None:
        """Mark a device (un)available for *new* placements.

        Existing files on an unavailable device keep being served; only
        ``add_file`` and migrations toward it are refused.  This models
        the paper's "permissions or availability changes in the system"
        (section V-H), which the Action Checker filters against.
        """
        self.device(name).available = bool(available)

    def set_device_online(self, name: str, online: bool) -> None:
        """Take a device offline (fault) or bring it back.

        An offline device serves no accesses and accepts no placements;
        files on it are *stranded* until the control plane rescues them
        onto live devices (reading through the recovery path).
        """
        self.device(name).online = bool(online)

    def files_stranded(self) -> list[FileInfo]:
        """Files currently placed on offline devices."""
        return [
            info for info in self._files.values()
            if not self._devices[info.device].online
        ]

    def _require_available(self, name: str) -> None:
        device = self.device(name)
        if not device.online:
            raise DeviceOfflineError(f"device {name!r} is offline")
        if not device.available:
            raise DeviceUnavailableError(
                f"device {name!r} is not accepting new placements"
            )

    # -- namespace -----------------------------------------------------------
    def add_file(self, fid: int, path: str, size_bytes: int, device: str) -> FileInfo:
        """Place a new file on a device."""
        if fid in self._files:
            raise SimulationError(f"file {fid} already exists")
        self.device(device)  # validate
        self._require_available(device)
        info = FileInfo(fid=fid, path=path, size_bytes=size_bytes, device=device)
        self._check_capacity(device, size_bytes)
        self._files[fid] = info
        return info

    def restore_file(
        self, fid: int, path: str, size_bytes: int, device: str
    ) -> FileInfo:
        """Re-register a file at its checkpointed placement.

        The crash-recovery path: the placement was legal when the
        checkpoint captured it, so availability and capacity admission are
        bypassed -- a file may legitimately sit on a device that has since
        stopped accepting *new* placements (or was checkpointed stranded
        on an offline one).  The device must exist and the fid must be
        fresh; recovery code re-validates the restored cluster against
        :func:`repro.faults.invariants.assert_cluster_invariants` after
        the full namespace is rebuilt.
        """
        if fid in self._files:
            raise SimulationError(f"file {fid} already exists")
        self.device(device)  # validate the device name only
        info = FileInfo(fid=fid, path=path, size_bytes=size_bytes, device=device)
        self._files[fid] = info
        return info

    def file(self, fid: int) -> FileInfo:
        try:
            return self._files[fid]
        except KeyError:
            raise UnknownFileError(f"no file with fid {fid}") from None

    @property
    def files(self) -> list[FileInfo]:
        return list(self._files.values())

    def layout(self) -> dict[int, str]:
        """Current placement: fid -> device name.

        This is the paper's "configuration file" that workloads consult
        before each access (section VI).
        """
        return {fid: info.device for fid, info in self._files.items()}

    def files_on(self, device: str) -> list[FileInfo]:
        self.device(device)  # validate
        return [info for info in self._files.values() if info.device == device]

    def stored_bytes(self, device: str) -> int:
        return sum(info.size_bytes for info in self.files_on(device))

    def _check_capacity(self, device: str, extra_bytes: int) -> None:
        spec = self.device(device).spec
        if self.stored_bytes(device) + extra_bytes > spec.capacity_bytes:
            raise CapacityError(
                f"placing {extra_bytes} bytes on {device!r} would exceed its "
                f"capacity of {spec.capacity_bytes} bytes"
            )

    # -- operations ------------------------------------------------------
    def access(self, fid: int, t: float, *, rb: int = 0, wb: int = 0) -> AccessRecord:
        """Perform one file access starting at time ``t``.

        ``rb``/``wb`` default to a full-file read when both are zero, the
        common case for the BELLE II workload's whole-file scans.
        """
        info = self.file(fid)
        if rb == 0 and wb == 0:
            rb = info.size_bytes
        device = self.device(info.device)
        if not device.online:
            raise DeviceOfflineError(
                f"file {fid} is stranded on offline device {info.device!r}"
            )
        duration = device.perform_access(t, rb, wb)
        self._m_accesses.inc()
        ots, otms = timestamp_parts(t)
        cts, ctms = timestamp_parts(t + duration)
        return AccessRecord(
            fid=fid,
            fsid=device.fsid,
            device=device.name,
            path=info.path,
            rb=rb,
            wb=wb,
            ots=ots,
            otms=otms,
            cts=cts,
            ctms=ctms,
        )

    def migrate(self, fid: int, dst: str, t: float) -> MovementRecord | None:
        """Move a file to device ``dst`` starting at time ``t``.

        Returns ``None`` when the file is already there (a no-op the
        policies are allowed to request).  The transfer occupies the source
        (read), the destination (write) and the network link; both devices
        absorb the traffic so migrations crowd subsequent accesses -- the
        paper's measurements always "includ[e] moving overhead".

        A file on an *offline* source can still be rescued: the read side
        falls back to the recovery path at link speed instead of the dead
        device's bandwidth.  When a :attr:`migration_interceptor` aborts
        the transfer partway, the file is rolled back to the source, the
        partial traffic is still charged to both (online) devices, and a
        :class:`~repro.errors.MigrationError` is raised.
        """
        info = self.file(fid)
        dst_device = self.device(dst)
        if info.device == dst:
            return None
        self._require_available(dst)
        self._check_capacity(dst, info.size_bytes)
        src_device = self.device(info.device)
        if src_device.online:
            read_bw = src_device.effective_bandwidth(t, is_read=True)
        else:
            read_bw = self.link.bandwidth_bytes
        write_bw = dst_device.effective_bandwidth(t, is_read=False)
        bottleneck = min(read_bw, write_bw, self.link.bandwidth_bytes)
        if self.migration_interceptor is not None:
            fraction = self.migration_interceptor(
                fid, info.device, dst, t, info.size_bytes
            )
            if fraction is not None:
                if not 0.0 < fraction <= 1.0:
                    raise SimulationError(
                        f"abort fraction must be in (0, 1], got {fraction}"
                    )
                partial = int(info.size_bytes * fraction)
                duration = self.link.latency_s + partial / bottleneck
                if src_device.online:
                    src_device.absorb_transfer(t, partial, duration)
                dst_device.absorb_transfer(t, partial, duration)
                self._m_migrations_aborted.inc()
                raise MigrationError(
                    f"migration of file {fid} to {dst!r} aborted after "
                    f"{partial} of {info.size_bytes} bytes",
                    fid=fid,
                    src=info.device,
                    dst=dst,
                    bytes_attempted=info.size_bytes,
                    bytes_transferred=partial,
                    duration=duration,
                )
        duration = self.link.latency_s + info.size_bytes / bottleneck
        if src_device.online:
            src_device.absorb_transfer(t, info.size_bytes, duration)
        dst_device.absorb_transfer(t, info.size_bytes, duration)
        self._m_migrations.inc()
        self._m_migrated_bytes.inc(info.size_bytes)
        move = MovementRecord(
            timestamp=t,
            fid=fid,
            src_device=info.device,
            dst_device=dst,
            bytes_moved=info.size_bytes,
            duration=duration,
        )
        info.device = dst
        return move

    def migrate_incremental(
        self, fid: int, dst: str, t: float, *, chunk_bytes: int
    ) -> MovementRecord | None:
        """Move a file in chunks instead of one bulk transfer.

        The paper's future work: "Currently Geomancy moves whole files in
        one movement; however, in the future, we will incrementally move a
        file to address parallel accesses."  Each chunk is a separate
        transfer on both devices, so the crowding cost is spread over the
        whole window instead of landing as one burst; the total duration
        is correspondingly longer (per-chunk link latency re-paid).

        Returns one :class:`MovementRecord` covering the whole migration,
        or ``None`` if the file is already at ``dst``.
        """
        if chunk_bytes <= 0:
            raise SimulationError(
                f"chunk_bytes must be positive, got {chunk_bytes}"
            )
        info = self.file(fid)
        dst_device = self.device(dst)
        if info.device == dst:
            return None
        self._require_available(dst)
        self._check_capacity(dst, info.size_bytes)
        src_device = self.device(info.device)
        abort_after = None
        if self.migration_interceptor is not None:
            fraction = self.migration_interceptor(
                fid, info.device, dst, t, info.size_bytes
            )
            if fraction is not None:
                if not 0.0 < fraction <= 1.0:
                    raise SimulationError(
                        f"abort fraction must be in (0, 1], got {fraction}"
                    )
                abort_after = int(info.size_bytes * fraction)
        remaining = info.size_bytes
        now = t
        while remaining > 0:
            chunk = min(chunk_bytes, remaining)
            if src_device.online:
                read_bw = src_device.effective_bandwidth(now, is_read=True)
            else:
                read_bw = self.link.bandwidth_bytes
            write_bw = dst_device.effective_bandwidth(now, is_read=False)
            bottleneck = min(read_bw, write_bw, self.link.bandwidth_bytes)
            chunk_duration = self.link.latency_s + chunk / bottleneck
            if src_device.online:
                src_device.absorb_transfer(now, chunk, chunk_duration)
            dst_device.absorb_transfer(now, chunk, chunk_duration)
            now += chunk_duration
            remaining -= chunk
            moved = info.size_bytes - remaining
            if abort_after is not None and moved >= abort_after:
                self._m_migrations_aborted.inc()
                raise MigrationError(
                    f"migration of file {fid} to {dst!r} aborted after "
                    f"{moved} of {info.size_bytes} bytes",
                    fid=fid,
                    src=info.device,
                    dst=dst,
                    bytes_attempted=info.size_bytes,
                    bytes_transferred=moved,
                    duration=now - t,
                )
        self._m_migrations.inc()
        self._m_migrated_bytes.inc(info.size_bytes)
        move = MovementRecord(
            timestamp=t,
            fid=fid,
            src_device=info.device,
            dst_device=dst,
            bytes_moved=info.size_bytes,
            duration=now - t,
        )
        info.device = dst
        return move

    def apply_layout(
        self, layout: dict[int, str], t: float, *, strict: bool = True
    ) -> list[MovementRecord]:
        """Migrate every file whose target differs from its current device.

        Returns the movements actually performed, in fid order; the caller
        charges their total duration to its timeline.  With
        ``strict=False`` individually unsatisfiable moves (capacity
        exceeded, device stopped accepting placements) are skipped instead
        of aborting the whole layout mid-application -- the behaviour the
        Geomancy loop wants, since conditions can change between the
        Action Checker's validation and execution.
        """
        moves = []
        for fid in sorted(layout):
            try:
                move = self.migrate(fid, layout[fid], t)
            except (CapacityError, DeviceUnavailableError):
                if strict:
                    raise
                continue
            except MigrationError as exc:
                # Injected mid-transfer failure: the file stayed on its
                # source; charge the wasted time and carry on.
                if strict:
                    raise
                t += exc.duration
                continue
            if move is not None:
                moves.append(move)
                t += move.duration
        return moves

    # -- accounting ------------------------------------------------------
    def usage_percent(self) -> dict[str, float]:
        """Share of all workload accesses served per device (Table IV)."""
        total = sum(d.stats.accesses for d in self._devices.values())
        if total == 0:
            return {name: 0.0 for name in self._devices}
        return {
            name: 100.0 * dev.stats.accesses / total
            for name, dev in self._devices.items()
        }

    def reset_stats(self) -> None:
        for device in self._devices.values():
            device.reset_stats()
