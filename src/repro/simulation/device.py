"""Storage-device model.

Each device serves accesses at a bandwidth shaped by four effects the paper's
live system exhibits:

* **Asymmetric read/write speed** -- "placement policies like LRU have
  difficulty dealing with nodes -- such as the RAID-5 node -- that have
  large imbalance between read- and write-speeds" (section VII).
* **External interference** -- other users' demand, a
  :class:`~repro.simulation.interference.LoadProcess`.
* **Crowding** -- the more of the workload's own traffic lands on a device,
  the slower it gets ("if we were to move all files onto files0, its
  performance would suffer greatly", section VII).  Modelled as a recent-
  bytes utilization window feeding a queueing-style slowdown.
* **Heavy-tailed noise** -- Table IV's per-device standard deviations exceed
  the means, which a cache-hit mechanism (occasional much-faster accesses)
  plus lognormal service noise reproduces.

Two access paths share this model:

* the **scalar reference** (:meth:`StorageDevice.perform_access_reference`,
  aliased as ``perform_access``) serves one access per call and is the
  oracle the fast path is regression-tested against;
* the **batch kernels** (:meth:`StorageDevice.prepare_batch` +
  :meth:`StorageDevice.serve_prepared`, or the one-shot
  :meth:`StorageDevice.serve_batch`) pre-draw all randomness for a whole
  array of accesses with vectorized generator calls, then serve them in a
  tight scan.

RNG-draw-order contract: each device owns two independent streams -- a
cache-hit uniform stream (``default_rng((seed, fsid, 1))``) and a
service-noise lognormal stream (``default_rng((seed, fsid))``).  A served
access consumes one uniform (iff ``cache_hit_rate > 0``) and one lognormal
(iff it missed the cache and ``noise_sigma > 0``).  An access *rejected by
an offline device* burns the same draws (:meth:`burn_access_draws`), so the
number of draws consumed depends only on the op sequence, never on fault
state -- which is what makes whole-batch pre-drawing safe across mid-batch
online/offline transitions.  Numpy's batched ``random(n)`` /
``lognormal(.., n)`` produce bit-identical values and end states to ``n``
sequential scalar calls, so the batch path replays the reference exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.interference import ConstantLoad, LoadProcess

GBPS = 1e9  # bytes per second in one GB/s

#: accesses can never finish faster than this, so the millisecond-truncated
#: close timestamp always lands strictly after the open timestamp
MIN_ACCESS_DURATION = 0.002


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one storage device (mount)."""

    name: str
    fsid: int
    read_gbps: float
    write_gbps: float
    capacity_bytes: int
    latency_s: float = 0.002
    #: sigma of the multiplicative lognormal service-time noise
    noise_sigma: float = 0.25
    #: strength of the self-contention (crowding) slowdown
    crowding_factor: float = 3.0
    #: fraction of external load that actually steals bandwidth here
    interference_sensitivity: float = 1.0
    #: probability an access is served from cache at ``cache_gbps``
    cache_hit_rate: float = 0.0
    cache_gbps: float = 20.0
    #: sliding window over which crowding utilization is measured
    utilization_window_s: float = 30.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.read_gbps <= 0 or self.write_gbps <= 0:
            raise ConfigurationError(
                f"{self.name}: bandwidths must be positive "
                f"(read={self.read_gbps}, write={self.write_gbps})"
            )
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"{self.name}: capacity must be positive, got {self.capacity_bytes}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"{self.name}: latency must be non-negative, got {self.latency_s}"
            )
        if self.noise_sigma < 0:
            raise ConfigurationError(
                f"{self.name}: noise_sigma must be non-negative"
            )
        if self.crowding_factor < 0:
            raise ConfigurationError(
                f"{self.name}: crowding_factor must be non-negative"
            )
        if not 0.0 <= self.interference_sensitivity <= 1.0:
            raise ConfigurationError(
                f"{self.name}: interference_sensitivity must be in [0, 1]"
            )
        if not 0.0 <= self.cache_hit_rate <= 1.0:
            raise ConfigurationError(
                f"{self.name}: cache_hit_rate must be in [0, 1]"
            )
        if self.cache_gbps <= 0:
            raise ConfigurationError(f"{self.name}: cache_gbps must be positive")
        if self.utilization_window_s <= 0:
            raise ConfigurationError(
                f"{self.name}: utilization_window_s must be positive"
            )


class DeviceStats:
    """Cumulative accounting for one device.

    Throughput samples live in a growable float64 buffer, and the mean/std
    telemetry reads come from Welford running mean/M2 aggregates, so a
    telemetry query costs O(1) instead of an O(n) ``np.mean``/``np.std``
    over the full history.  Welford (rather than sum/sum-of-squares) keeps
    the variance numerically stable for large nearly-equal samples, where
    the naive formula cancels catastrophically.
    """

    __slots__ = ("accesses", "bytes_served", "busy_time", "_buf", "_n", "_mean", "_m2")

    _INITIAL_CAPACITY = 256

    def __init__(
        self,
        accesses: int = 0,
        bytes_served: int = 0,
        busy_time: float = 0.0,
        throughput_samples: list[float] | None = None,
    ) -> None:
        self.accesses = int(accesses)
        self.bytes_served = int(bytes_served)
        self.busy_time = float(busy_time)
        self._buf = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        if throughput_samples:
            for value in throughput_samples:
                self.append_sample(float(value))

    # -- samples -----------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return self._n

    @property
    def throughput_samples(self) -> list[float]:
        """The recorded samples as a plain list (copy)."""
        return self._buf[: self._n].tolist()

    @throughput_samples.setter
    def throughput_samples(self, samples) -> None:
        self._buf = np.empty(
            max(self._INITIAL_CAPACITY, len(samples)), dtype=np.float64
        )
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        for value in samples:
            self.append_sample(float(value))

    def sample_array(self) -> np.ndarray:
        """Read-only view of the sample buffer (no copy)."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def append_sample(self, value: float) -> None:
        n = self._n
        buf = self._buf
        if n == buf.shape[0]:
            grown = np.empty(n * 2, dtype=np.float64)
            grown[:n] = buf
            self._buf = buf = grown
        buf[n] = value
        n += 1
        self._n = n
        delta = value - self._mean
        self._mean += delta / n
        self._m2 += delta * (value - self._mean)

    def extend_samples(self, values: list[float]) -> None:
        """Append many samples at once.

        Bit-for-bit equivalent to calling :meth:`append_sample` per value
        -- the running aggregates accumulate in the same left-to-right
        order -- but grows the buffer at most once and accumulates in a
        tight local loop.
        """
        m = len(values)
        if not m:
            return
        n = self._n
        buf = self._buf
        need = n + m
        if need > buf.shape[0]:
            grown = np.empty(max(need, buf.shape[0] * 2), dtype=np.float64)
            grown[:n] = buf[:n]
            self._buf = buf = grown
        buf[n:need] = values
        self._n = need
        mean = self._mean
        m2 = self._m2
        for value in values:
            n += 1
            delta = value - mean
            mean += delta / n
            m2 += delta * (value - mean)
        self._mean = mean
        self._m2 = m2

    # -- telemetry reads ---------------------------------------------------
    def mean_throughput_gbps(self) -> float:
        if not self._n:
            raise SimulationError("no accesses recorded on this device")
        return self._mean / GBPS

    def std_throughput_gbps(self) -> float:
        if not self._n:
            raise SimulationError("no accesses recorded on this device")
        variance = self._m2 / self._n
        if variance < 0.0:
            variance = 0.0
        return float(np.sqrt(variance)) / GBPS

    def __repr__(self) -> str:
        return (
            f"DeviceStats(accesses={self.accesses}, "
            f"bytes_served={self.bytes_served}, busy_time={self.busy_time}, "
            f"samples={self._n})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeviceStats):
            return NotImplemented
        return (
            self.accesses == other.accesses
            and self.bytes_served == other.bytes_served
            and self.busy_time == other.busy_time
            and self.throughput_samples == other.throughput_samples
        )


class _BatchDraws:
    """Pre-drawn randomness for a batch of accesses on one device.

    ``hit`` is a per-op cache-hit flag list (``None`` when the device has
    no cache), ``noise`` a per-op lognormal factor list aligned with the
    ops (``None`` when ``noise_sigma == 0``; entries at cache-hit
    positions are placeholders and never read).
    """

    __slots__ = ("n", "hit", "noise")

    def __init__(self, n: int, hit, noise) -> None:
        self.n = n
        self.hit = hit
        self.noise = noise


class StorageDevice:
    """Runtime state and service model for one device."""

    def __init__(
        self,
        spec: DeviceSpec,
        interference: LoadProcess | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.interference = interference if interference is not None else ConstantLoad(0.0)
        #: service-noise (lognormal) stream
        self._rng = np.random.default_rng((seed, spec.fsid))
        #: cache-hit (uniform) stream -- independent of the noise stream so
        #: each can be pre-drawn as one vectorized call per batch
        self._rng_cache = np.random.default_rng((seed, spec.fsid, 1))
        # Crowding window: parallel (completion_time, bytes) arrays with a
        # head cursor and a running byte sum, so pruning is amortized O(1)
        # and the window sum needs no per-query O(window) scan.
        self._recent_t: list[float] = []
        self._recent_b: list[int] = []
        self._recent_head = 0
        self._recent_sum = 0
        self._window_capacity = (
            spec.read_gbps * GBPS * spec.utilization_window_s
        )
        self.stats = DeviceStats()
        #: whether the device accepts *new* placements; existing data keeps
        #: being served ("permissions or availability changes", paper V-H)
        self.available = True
        #: whether the device is reachable at all; an offline device serves
        #: no accesses and accepts no data (fault-injection "kill" events)
        self.online = True
        #: bandwidth multiplier in (0, 1] applied by fault-injection
        #: "degrade" events; 1.0 means healthy
        self.degradation = 1.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def fsid(self) -> int:
        return self.spec.fsid

    # -- contention model ----------------------------------------------------
    def _window_entries(self) -> list[tuple[float, int]]:
        """Live (completion_time, bytes) entries, oldest first."""
        head = self._recent_head
        return list(zip(self._recent_t[head:], self._recent_b[head:]))

    def _window_append(self, completion: float, nbytes: int) -> None:
        self._recent_t.append(completion)
        self._recent_b.append(nbytes)
        self._recent_sum += nbytes

    def _prune_recent(self, t: float) -> None:
        horizon = t - self.spec.utilization_window_s
        times = self._recent_t
        n = len(times)
        head = self._recent_head
        total = self._recent_sum
        while head < n and times[head] < horizon:
            total -= self._recent_b[head]
            head += 1
        if head != self._recent_head:
            self._recent_sum = total
            if head > 512 and head * 2 > n:
                del self._recent_t[:head]
                del self._recent_b[:head]
                head = 0
            self._recent_head = head

    def utilization(self, t: float) -> float:
        """Recent traffic as a fraction of what the device could serve.

        Bytes completed in the sliding window divided by the window's read
        capacity; can exceed 1 when migrations pile on extra load.
        """
        self._prune_recent(t)
        return self._recent_sum / self._window_capacity

    def external_load(self, t: float) -> float:
        """Interference at ``t`` scaled by this device's sensitivity."""
        return self.spec.interference_sensitivity * self.interference.load(t)

    def effective_bandwidth(self, t: float, *, is_read: bool) -> float:
        """Deterministic (noise-free) bandwidth in bytes/s at time ``t``."""
        base = (self.spec.read_gbps if is_read else self.spec.write_gbps) * GBPS
        ext = min(0.95, self.external_load(t))
        crowd = self.spec.crowding_factor * self.utilization(t)
        return base * self.degradation * (1.0 - ext) / (1.0 + crowd)

    # -- scalar reference path ---------------------------------------------
    def service_time(self, t: float, rb: int, wb: int) -> float:
        """Sampled duration of an access starting at ``t`` (seconds)."""
        if rb < 0 or wb < 0:
            raise SimulationError(
                f"byte counts must be non-negative (rb={rb}, wb={wb})"
            )
        if rb == 0 and wb == 0:
            raise SimulationError("access must read or write at least one byte")
        if self.spec.cache_hit_rate and self._rng_cache.random() < self.spec.cache_hit_rate:
            transfer = (rb + wb) / (self.spec.cache_gbps * GBPS)
        else:
            transfer = 0.0
            if rb:
                transfer += rb / self.effective_bandwidth(t, is_read=True)
            if wb:
                transfer += wb / self.effective_bandwidth(t, is_read=False)
            if self.spec.noise_sigma:
                sigma = self.spec.noise_sigma
                # Mean-one multiplicative noise on the transfer time.
                transfer *= self._rng.lognormal(-sigma * sigma / 2.0, sigma)
        return max(self.spec.latency_s + transfer, MIN_ACCESS_DURATION)

    def perform_access_reference(self, t: float, rb: int, wb: int) -> float:
        """Scalar oracle: serve one access and account for it.

        This is the reference implementation the batch kernels are
        equivalence-tested against; it stays the semantic source of truth.
        Returns the access duration.
        """
        duration = self.service_time(t, rb, wb)
        total = rb + wb
        self._window_append(t + duration, total)
        self.stats.accesses += 1
        self.stats.bytes_served += total
        self.stats.busy_time += duration
        self.stats.append_sample(total / duration)
        return duration

    #: canonical name used by the cluster's scalar path
    perform_access = perform_access_reference

    def burn_access_draws(self) -> None:
        """Consume the draws a served access would have, discarding them.

        Called when an access is rejected (offline device) so the RNG
        draw count stays a function of the op sequence alone.  This keeps
        fault-free and faulted runs on shared noise streams, and lets the
        batch path pre-draw a whole run regardless of mid-run faults.
        """
        spec = self.spec
        if spec.cache_hit_rate:
            if self._rng_cache.random() < spec.cache_hit_rate:
                return  # would have been a cache hit: no noise draw
        if spec.noise_sigma:
            sigma = spec.noise_sigma
            self._rng.lognormal(-sigma * sigma / 2.0, sigma)

    # -- batch kernels -----------------------------------------------------
    def prepare_batch(self, rb, wb, *, validate: bool = True) -> _BatchDraws:
        """Pre-draw all randomness for ``n`` accesses in op order.

        ``rb``/``wb`` are the per-op byte counts (array-likes of equal
        length).  Consumes exactly the draws ``n`` sequential
        :meth:`service_time` calls would: one uniform per op on the
        cache stream (iff the device caches), one lognormal per cache
        *miss* on the noise stream (iff it has noise).  Ops that later
        fail against an offline device keep their draws burned, matching
        :meth:`burn_access_draws` on the scalar path.  ``validate=False``
        skips the byte-count checks for callers that already validated
        (the cluster's batch scan pre-validates every op); only the op
        *count* matters for the draws, so the byte arrays are not even
        converted.
        """
        if validate:
            rb = np.asarray(rb, dtype=np.int64)
            wb = np.asarray(wb, dtype=np.int64)
            if rb.shape != wb.shape or rb.ndim != 1:
                raise SimulationError("rb/wb must be equal-length 1-D arrays")
            if rb.size and (int(rb.min()) < 0 or int(wb.min()) < 0):
                raise SimulationError("byte counts must be non-negative")
            if rb.size and not int(np.min(rb + wb)) > 0:
                raise SimulationError(
                    "access must read or write at least one byte"
                )
            n = rb.size
        else:
            n = len(rb)
        spec = self.spec
        hit_list = None
        miss_count = n
        hit = None
        if spec.cache_hit_rate and n:
            u = self._rng_cache.random(n)
            hit = u < spec.cache_hit_rate
            miss_count = n - int(np.count_nonzero(hit))
            hit_list = hit.tolist()
        elif spec.cache_hit_rate:
            hit_list = []
        noise_list = None
        if spec.noise_sigma:
            sigma = spec.noise_sigma
            if miss_count:
                z = self._rng.lognormal(-sigma * sigma / 2.0, sigma, miss_count)
            else:
                z = np.empty(0, dtype=np.float64)
            if hit is None:
                noise = z
            else:
                noise = np.ones(n, dtype=np.float64)
                noise[~hit] = z
            noise_list = noise.tolist()
        return _BatchDraws(n, hit_list, noise_list)

    def serve_prepared(
        self,
        t: float,
        rb: int,
        wb: int,
        hit: bool,
        noise: float,
        ext: float | None = None,
    ) -> float:
        """Serve one pre-drawn access; returns its duration.

        Mirrors :meth:`perform_access_reference` float-op for float-op,
        with the randomness (``hit``, ``noise``) supplied from
        :meth:`prepare_batch` instead of drawn inline.  ``ext`` optionally
        supplies a precomputed sensitivity-scaled external load (the
        vectorized path); when ``None`` the scalar interference process is
        queried, which is bit-identical to the reference.
        """
        spec = self.spec
        if hit:
            transfer = (rb + wb) / (spec.cache_gbps * GBPS)
        else:
            if ext is None:
                ext = spec.interference_sensitivity * self.interference.load(t)
            if ext > 0.95:
                ext = 0.95
            self._prune_recent(t)
            crowd = spec.crowding_factor * (
                self._recent_sum / self._window_capacity
            )
            # Same left-to-right float-op order as effective_bandwidth().
            deg = self.degradation
            one_minus_ext = 1.0 - ext
            denom = 1.0 + crowd
            transfer = 0.0
            if rb:
                transfer += rb / (
                    spec.read_gbps * GBPS * deg * one_minus_ext / denom
                )
            if wb:
                transfer += wb / (
                    spec.write_gbps * GBPS * deg * one_minus_ext / denom
                )
            if spec.noise_sigma:
                transfer *= noise
        duration = spec.latency_s + transfer
        if duration < MIN_ACCESS_DURATION:
            duration = MIN_ACCESS_DURATION
        total = rb + wb
        self._window_append(t + duration, total)
        stats = self.stats
        stats.accesses += 1
        stats.bytes_served += total
        stats.busy_time += duration
        stats.append_sample(total / duration)
        return duration

    def serve_batch(self, t, rb, wb) -> np.ndarray:
        """Serve a whole array of accesses; returns their durations.

        ``t`` carries the per-op start times (already known to the
        caller), ``rb``/``wb`` the byte counts.  Randomness is pre-drawn
        with one vectorized generator call per stream, external loads are
        evaluated with :meth:`LoadProcess.load_batch`, and the ops are
        then served in order so each sees the crowding created by its
        predecessors.  Equivalent to ``n`` ``perform_access_reference``
        calls -- bit-for-bit except for sinusoidal interference, where
        ``np.sin`` may differ from ``math.sin`` by one ulp.
        """
        t = np.asarray(t, dtype=np.float64)
        if t.ndim != 1:
            raise SimulationError("t must be a 1-D array")
        draws = self.prepare_batch(rb, wb)
        if t.size != draws.n:
            raise SimulationError("t/rb/wb must be equal-length arrays")
        n = draws.n
        durations = np.empty(n, dtype=np.float64)
        if not n:
            return durations
        ext_arr = (
            self.spec.interference_sensitivity
            * self.interference.load_batch(t)
        ).tolist()
        t_list = t.tolist()
        rb_list = np.asarray(rb, dtype=np.int64).tolist()
        wb_list = np.asarray(wb, dtype=np.int64).tolist()
        hit = draws.hit
        noise = draws.noise
        serve = self.serve_prepared
        for i in range(n):
            durations[i] = serve(
                t_list[i],
                rb_list[i],
                wb_list[i],
                hit[i] if hit is not None else False,
                noise[i] if noise is not None else 1.0,
                ext_arr[i],
            )
        return durations

    # -- migrations --------------------------------------------------------
    def absorb_transfer(self, t: float, nbytes: int, duration: float) -> None:
        """Account for migration traffic that hits this device.

        Migration bytes crowd the device (they enter the utilization
        window) but are not workload accesses, so they do not contribute
        throughput samples.
        """
        if nbytes < 0 or duration < 0:
            raise SimulationError("transfer bytes/duration must be non-negative")
        self._window_append(t + duration, nbytes)
        self.stats.busy_time += duration

    def reset_stats(self) -> None:
        self.stats = DeviceStats()
        self._recent_t = []
        self._recent_b = []
        self._recent_head = 0
        self._recent_sum = 0

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable runtime state (spec excluded -- it is static).

        Covers everything that influences future service times: both RNG
        streams, the crowding window, fault flags, and the cumulative
        stats, so a restored device replays the exact same access
        durations as the original would have.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "rng_cache": self._rng_cache.bit_generator.state,
            "recent": [[t, b] for t, b in self._window_entries()],
            "stats": {
                "accesses": self.stats.accesses,
                "bytes_served": self.stats.bytes_served,
                "busy_time": self.stats.busy_time,
                "throughput_samples": self.stats.throughput_samples,
            },
            "available": self.available,
            "online": self.online,
            "degradation": self.degradation,
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        if "rng_cache" in state:
            self._rng_cache.bit_generator.state = state["rng_cache"]
        self._recent_t = [float(t) for t, _ in state["recent"]]
        self._recent_b = [int(b) for _, b in state["recent"]]
        self._recent_head = 0
        self._recent_sum = sum(self._recent_b)
        stats = state["stats"]
        self.stats = DeviceStats(
            accesses=int(stats["accesses"]),
            bytes_served=int(stats["bytes_served"]),
            busy_time=float(stats["busy_time"]),
            throughput_samples=[float(v) for v in stats["throughput_samples"]],
        )
        self.available = bool(state["available"])
        self.online = bool(state["online"])
        self.degradation = float(state["degradation"])
