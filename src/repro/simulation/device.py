"""Storage-device model.

Each device serves accesses at a bandwidth shaped by four effects the paper's
live system exhibits:

* **Asymmetric read/write speed** -- "placement policies like LRU have
  difficulty dealing with nodes -- such as the RAID-5 node -- that have
  large imbalance between read- and write-speeds" (section VII).
* **External interference** -- other users' demand, a
  :class:`~repro.simulation.interference.LoadProcess`.
* **Crowding** -- the more of the workload's own traffic lands on a device,
  the slower it gets ("if we were to move all files onto files0, its
  performance would suffer greatly", section VII).  Modelled as a recent-
  bytes utilization window feeding a queueing-style slowdown.
* **Heavy-tailed noise** -- Table IV's per-device standard deviations exceed
  the means, which a cache-hit mechanism (occasional much-faster accesses)
  plus lognormal service noise reproduces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.simulation.interference import ConstantLoad, LoadProcess

GBPS = 1e9  # bytes per second in one GB/s

#: accesses can never finish faster than this, so the millisecond-truncated
#: close timestamp always lands strictly after the open timestamp
MIN_ACCESS_DURATION = 0.002


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one storage device (mount)."""

    name: str
    fsid: int
    read_gbps: float
    write_gbps: float
    capacity_bytes: int
    latency_s: float = 0.002
    #: sigma of the multiplicative lognormal service-time noise
    noise_sigma: float = 0.25
    #: strength of the self-contention (crowding) slowdown
    crowding_factor: float = 3.0
    #: fraction of external load that actually steals bandwidth here
    interference_sensitivity: float = 1.0
    #: probability an access is served from cache at ``cache_gbps``
    cache_hit_rate: float = 0.0
    cache_gbps: float = 20.0
    #: sliding window over which crowding utilization is measured
    utilization_window_s: float = 30.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.read_gbps <= 0 or self.write_gbps <= 0:
            raise ConfigurationError(
                f"{self.name}: bandwidths must be positive "
                f"(read={self.read_gbps}, write={self.write_gbps})"
            )
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"{self.name}: capacity must be positive, got {self.capacity_bytes}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"{self.name}: latency must be non-negative, got {self.latency_s}"
            )
        if self.noise_sigma < 0:
            raise ConfigurationError(
                f"{self.name}: noise_sigma must be non-negative"
            )
        if self.crowding_factor < 0:
            raise ConfigurationError(
                f"{self.name}: crowding_factor must be non-negative"
            )
        if not 0.0 <= self.interference_sensitivity <= 1.0:
            raise ConfigurationError(
                f"{self.name}: interference_sensitivity must be in [0, 1]"
            )
        if not 0.0 <= self.cache_hit_rate <= 1.0:
            raise ConfigurationError(
                f"{self.name}: cache_hit_rate must be in [0, 1]"
            )
        if self.cache_gbps <= 0:
            raise ConfigurationError(f"{self.name}: cache_gbps must be positive")
        if self.utilization_window_s <= 0:
            raise ConfigurationError(
                f"{self.name}: utilization_window_s must be positive"
            )


@dataclass
class DeviceStats:
    """Cumulative accounting for one device."""

    accesses: int = 0
    bytes_served: int = 0
    busy_time: float = 0.0
    throughput_samples: list[float] = field(default_factory=list)

    def mean_throughput_gbps(self) -> float:
        if not self.throughput_samples:
            raise SimulationError("no accesses recorded on this device")
        return float(np.mean(self.throughput_samples)) / GBPS

    def std_throughput_gbps(self) -> float:
        if not self.throughput_samples:
            raise SimulationError("no accesses recorded on this device")
        return float(np.std(self.throughput_samples)) / GBPS


class StorageDevice:
    """Runtime state and service model for one device."""

    def __init__(
        self,
        spec: DeviceSpec,
        interference: LoadProcess | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.interference = interference if interference is not None else ConstantLoad(0.0)
        self._rng = np.random.default_rng((seed, spec.fsid))
        self._recent: deque[tuple[float, int]] = deque()
        self.stats = DeviceStats()
        #: whether the device accepts *new* placements; existing data keeps
        #: being served ("permissions or availability changes", paper V-H)
        self.available = True
        #: whether the device is reachable at all; an offline device serves
        #: no accesses and accepts no data (fault-injection "kill" events)
        self.online = True
        #: bandwidth multiplier in (0, 1] applied by fault-injection
        #: "degrade" events; 1.0 means healthy
        self.degradation = 1.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def fsid(self) -> int:
        return self.spec.fsid

    # -- contention model ----------------------------------------------------
    def _prune_recent(self, t: float) -> None:
        horizon = t - self.spec.utilization_window_s
        while self._recent and self._recent[0][0] < horizon:
            self._recent.popleft()

    def utilization(self, t: float) -> float:
        """Recent traffic as a fraction of what the device could serve.

        Bytes completed in the sliding window divided by the window's read
        capacity; can exceed 1 when migrations pile on extra load.
        """
        self._prune_recent(t)
        window_bytes = sum(b for _, b in self._recent)
        window_capacity = self.spec.read_gbps * GBPS * self.spec.utilization_window_s
        return window_bytes / window_capacity

    def external_load(self, t: float) -> float:
        """Interference at ``t`` scaled by this device's sensitivity."""
        return self.spec.interference_sensitivity * self.interference.load(t)

    def effective_bandwidth(self, t: float, *, is_read: bool) -> float:
        """Deterministic (noise-free) bandwidth in bytes/s at time ``t``."""
        base = (self.spec.read_gbps if is_read else self.spec.write_gbps) * GBPS
        ext = min(0.95, self.external_load(t))
        crowd = self.spec.crowding_factor * self.utilization(t)
        return base * self.degradation * (1.0 - ext) / (1.0 + crowd)

    # -- service ---------------------------------------------------------
    def service_time(self, t: float, rb: int, wb: int) -> float:
        """Sampled duration of an access starting at ``t`` (seconds)."""
        if rb < 0 or wb < 0:
            raise SimulationError(
                f"byte counts must be non-negative (rb={rb}, wb={wb})"
            )
        if rb == 0 and wb == 0:
            raise SimulationError("access must read or write at least one byte")
        if self.spec.cache_hit_rate and self._rng.random() < self.spec.cache_hit_rate:
            transfer = (rb + wb) / (self.spec.cache_gbps * GBPS)
        else:
            transfer = 0.0
            if rb:
                transfer += rb / self.effective_bandwidth(t, is_read=True)
            if wb:
                transfer += wb / self.effective_bandwidth(t, is_read=False)
            if self.spec.noise_sigma:
                sigma = self.spec.noise_sigma
                # Mean-one multiplicative noise on the transfer time.
                transfer *= self._rng.lognormal(-sigma * sigma / 2.0, sigma)
        return max(self.spec.latency_s + transfer, MIN_ACCESS_DURATION)

    def perform_access(self, t: float, rb: int, wb: int) -> float:
        """Serve an access and account for it; returns the duration."""
        duration = self.service_time(t, rb, wb)
        total = rb + wb
        self._recent.append((t + duration, total))
        self.stats.accesses += 1
        self.stats.bytes_served += total
        self.stats.busy_time += duration
        self.stats.throughput_samples.append(total / duration)
        return duration

    def absorb_transfer(self, t: float, nbytes: int, duration: float) -> None:
        """Account for migration traffic that hits this device.

        Migration bytes crowd the device (they enter the utilization
        window) but are not workload accesses, so they do not contribute
        throughput samples.
        """
        if nbytes < 0 or duration < 0:
            raise SimulationError("transfer bytes/duration must be non-negative")
        self._recent.append((t + duration, nbytes))
        self.stats.busy_time += duration

    def reset_stats(self) -> None:
        self.stats = DeviceStats()
        self._recent.clear()

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable runtime state (spec excluded -- it is static).

        Covers everything that influences future service times: the noise
        RNG stream, the crowding window, fault flags, and the cumulative
        stats, so a restored device replays the exact same access
        durations as the original would have.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "recent": [[t, b] for t, b in self._recent],
            "stats": {
                "accesses": self.stats.accesses,
                "bytes_served": self.stats.bytes_served,
                "busy_time": self.stats.busy_time,
                "throughput_samples": list(self.stats.throughput_samples),
            },
            "available": self.available,
            "online": self.online,
            "degradation": self.degradation,
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self._recent = deque(
            (float(t), int(b)) for t, b in state["recent"]
        )
        stats = state["stats"]
        self.stats = DeviceStats(
            accesses=int(stats["accesses"]),
            bytes_served=int(stats["bytes_served"]),
            busy_time=float(stats["busy_time"]),
            throughput_samples=[float(v) for v in stats["throughput_samples"]],
        )
        self.available = bool(state["available"])
        self.online = bool(state["online"])
        self.degradation = float(state["degradation"])
