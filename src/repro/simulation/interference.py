"""External-load processes.

Bluesky's mounts are shared: "The NFS home directory is connected ... to a
shared storage server used by multiple users who conduct work that stresses
the system at all hours" (section III).  Each process models other users'
demand on one device as a fraction of its bandwidth, ``load(t) in [0, 1]``.

Processes are deterministic functions of time given their construction
seed -- two queries at the same ``t`` agree, and interleaving queries from
multiple workloads (Experiment 3) cannot perturb the environment.

Every process also exposes :meth:`LoadProcess.load_batch`, the array form
used by the simulation fast path: one call evaluates the load at a whole
vector of timestamps.  ``load_batch`` is elementwise-equivalent to
``load`` (bit-for-bit for the constant/bursty/spike/composite processes;
within one ulp for the sinusoidal diurnal process, whose batched form
goes through ``np.sin`` instead of ``math.sin``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError


class LoadProcess:
    """Base class: fraction of device bandwidth consumed by external users."""

    def load(self, t: float) -> float:
        """External load at time ``t``, in [0, 1]."""
        raise NotImplementedError

    def load_batch(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`load` over an array of timestamps.

        The base implementation loops; subclasses override with true
        numpy kernels.
        """
        t = np.asarray(t, dtype=np.float64)
        return np.fromiter(
            (self.load(float(x)) for x in t), dtype=np.float64, count=t.size
        ).reshape(t.shape)

    def __add__(self, other: "LoadProcess") -> "CompositeLoad":
        return CompositeLoad([self, other])


class ConstantLoad(LoadProcess):
    """A fixed background load."""

    def __init__(self, level: float) -> None:
        if not 0.0 <= level <= 1.0:
            raise SimulationError(f"load level must be in [0, 1], got {level}")
        self.level = float(level)

    def load(self, t: float) -> float:
        return self.level

    def load_batch(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        return np.full(t.shape, self.level, dtype=np.float64)


class DiurnalLoad(LoadProcess):
    """Sinusoidal demand cycle (peak-hour traffic on shared mounts).

    ``load(t) = base + amplitude * (1 + sin(2*pi*t/period + phase)) / 2``,
    clipped to [0, 1].
    """

    def __init__(
        self,
        base: float = 0.1,
        amplitude: float = 0.4,
        period: float = 3600.0,
        phase: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        if base < 0 or amplitude < 0:
            raise SimulationError("base and amplitude must be non-negative")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def load(self, t: float) -> float:
        wave = (1.0 + math.sin(2.0 * math.pi * t / self.period + self.phase)) / 2.0
        return min(1.0, self.base + self.amplitude * wave)

    def load_batch(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        wave = (1.0 + np.sin(2.0 * np.pi * t / self.period + self.phase)) / 2.0
        return np.minimum(1.0, self.base + self.amplitude * wave)


class BurstyLoad(LoadProcess):
    """On/off bursts: intervals of heavy demand separated by quiet periods.

    Time is divided into slots of ``slot_seconds``; each slot is
    independently "on" with probability ``p_on`` (hash-seeded, so the
    process is a pure function of ``t``).  On-slots carry ``on_level`` load
    and off-slots ``off_level``.

    Slot decisions are counter-based -- slot ``k``'s coin flip is the
    first uniform of ``default_rng((seed, k))`` -- and memoized, so each
    slot's generator is constructed exactly once per process instead of
    once per access (the former hot-path cost on every cache-miss access).
    """

    def __init__(
        self,
        p_on: float = 0.25,
        on_level: float = 0.7,
        off_level: float = 0.05,
        slot_seconds: float = 60.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= p_on <= 1.0:
            raise SimulationError(f"p_on must be in [0, 1], got {p_on}")
        if not 0.0 <= off_level <= on_level <= 1.0:
            raise SimulationError(
                f"need 0 <= off_level <= on_level <= 1, got "
                f"({off_level}, {on_level})"
            )
        if slot_seconds <= 0:
            raise SimulationError(
                f"slot_seconds must be positive, got {slot_seconds}"
            )
        self.p_on = float(p_on)
        self.on_level = float(on_level)
        self.off_level = float(off_level)
        self.slot_seconds = float(slot_seconds)
        self.seed = int(seed)
        #: memoized slot -> on/off table; values are pure functions of
        #: ``(seed, slot)`` so the cache never needs invalidation
        self._slot_table: dict[int, bool] = {}

    def _slot_on(self, slot: int) -> bool:
        cached = self._slot_table.get(slot)
        if cached is None:
            # Counter-based determinism: one generator per *slot*, built
            # on first touch and remembered for every later access.
            rng = np.random.default_rng((self.seed, slot))
            cached = bool(rng.random() < self.p_on)
            self._slot_table[slot] = cached
        return cached

    def load(self, t: float) -> float:
        if t < 0:
            raise SimulationError(f"time must be non-negative, got {t}")
        slot = int(t / self.slot_seconds)
        return self.on_level if self._slot_on(slot) else self.off_level

    def load_batch(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        if t.size and float(t.min()) < 0:
            raise SimulationError("time must be non-negative")
        # int() truncates toward zero; so does astype for non-negative t.
        slots = (t / self.slot_seconds).astype(np.int64)
        unique = np.unique(slots)
        on_by_slot = {int(s): self._slot_on(int(s)) for s in unique}
        on = np.fromiter(
            (on_by_slot[int(s)] for s in slots.ravel()),
            dtype=bool,
            count=slots.size,
        ).reshape(t.shape)
        return np.where(on, self.on_level, self.off_level)


class SpikeLoad(LoadProcess):
    """Scheduled load spikes: ``(start, duration, level)`` windows.

    Useful for scripted scenarios (e.g. Fig. 6's "another workload is
    started" moment) where the experiment needs a load change at an exact
    time.
    """

    def __init__(self, spikes: list[tuple[float, float, float]]) -> None:
        for start, duration, level in spikes:
            if start < 0 or duration <= 0:
                raise SimulationError(
                    f"spike windows need start >= 0 and duration > 0, got "
                    f"({start}, {duration})"
                )
            if not 0.0 <= level <= 1.0:
                raise SimulationError(f"spike level must be in [0, 1], got {level}")
        self.spikes = sorted(spikes)

    def load(self, t: float) -> float:
        level = 0.0
        for start, duration, spike_level in self.spikes:
            if start <= t < start + duration:
                level = max(level, spike_level)
        return level

    def load_batch(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        level = np.zeros(t.shape, dtype=np.float64)
        for start, duration, spike_level in self.spikes:
            inside = (start <= t) & (t < start + duration)
            level = np.where(inside, np.maximum(level, spike_level), level)
        return level


class CompositeLoad(LoadProcess):
    """Sum of component loads, saturating at 1.0."""

    def __init__(self, components: list[LoadProcess]) -> None:
        if not components:
            raise SimulationError("composite load needs at least one component")
        self.components = list(components)

    def load(self, t: float) -> float:
        # Plain accumulation loop: same left-to-right float adds as
        # ``sum`` over a generator, without the generator machinery (this
        # sits on the cache-miss hot path of every composite-loaded
        # device).
        total = 0.0
        for component in self.components:
            total += component.load(t)
        return total if total < 1.0 else 1.0

    def load_batch(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        # Accumulate in component order so the float-add sequence matches
        # the scalar ``sum`` exactly.
        total = np.zeros(t.shape, dtype=np.float64)
        for component in self.components:
            total = total + component.load_batch(t)
        return np.minimum(1.0, total)
