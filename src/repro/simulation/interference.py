"""External-load processes.

Bluesky's mounts are shared: "The NFS home directory is connected ... to a
shared storage server used by multiple users who conduct work that stresses
the system at all hours" (section III).  Each process models other users'
demand on one device as a fraction of its bandwidth, ``load(t) in [0, 1]``.

Processes are deterministic functions of time given their construction
seed -- two queries at the same ``t`` agree, and interleaving queries from
multiple workloads (Experiment 3) cannot perturb the environment.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError


class LoadProcess:
    """Base class: fraction of device bandwidth consumed by external users."""

    def load(self, t: float) -> float:
        """External load at time ``t``, in [0, 1]."""
        raise NotImplementedError

    def __add__(self, other: "LoadProcess") -> "CompositeLoad":
        return CompositeLoad([self, other])


class ConstantLoad(LoadProcess):
    """A fixed background load."""

    def __init__(self, level: float) -> None:
        if not 0.0 <= level <= 1.0:
            raise SimulationError(f"load level must be in [0, 1], got {level}")
        self.level = float(level)

    def load(self, t: float) -> float:
        return self.level


class DiurnalLoad(LoadProcess):
    """Sinusoidal demand cycle (peak-hour traffic on shared mounts).

    ``load(t) = base + amplitude * (1 + sin(2*pi*t/period + phase)) / 2``,
    clipped to [0, 1].
    """

    def __init__(
        self,
        base: float = 0.1,
        amplitude: float = 0.4,
        period: float = 3600.0,
        phase: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        if base < 0 or amplitude < 0:
            raise SimulationError("base and amplitude must be non-negative")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def load(self, t: float) -> float:
        wave = (1.0 + math.sin(2.0 * math.pi * t / self.period + self.phase)) / 2.0
        return min(1.0, self.base + self.amplitude * wave)


class BurstyLoad(LoadProcess):
    """On/off bursts: intervals of heavy demand separated by quiet periods.

    Time is divided into slots of ``slot_seconds``; each slot is
    independently "on" with probability ``p_on`` (hash-seeded, so the
    process is a pure function of ``t``).  On-slots carry ``on_level`` load
    and off-slots ``off_level``.
    """

    def __init__(
        self,
        p_on: float = 0.25,
        on_level: float = 0.7,
        off_level: float = 0.05,
        slot_seconds: float = 60.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= p_on <= 1.0:
            raise SimulationError(f"p_on must be in [0, 1], got {p_on}")
        if not 0.0 <= off_level <= on_level <= 1.0:
            raise SimulationError(
                f"need 0 <= off_level <= on_level <= 1, got "
                f"({off_level}, {on_level})"
            )
        if slot_seconds <= 0:
            raise SimulationError(
                f"slot_seconds must be positive, got {slot_seconds}"
            )
        self.p_on = float(p_on)
        self.on_level = float(on_level)
        self.off_level = float(off_level)
        self.slot_seconds = float(slot_seconds)
        self.seed = int(seed)

    def _slot_on(self, slot: int) -> bool:
        # Counter-based determinism: one throwaway generator per slot.
        rng = np.random.default_rng((self.seed, slot))
        return rng.random() < self.p_on

    def load(self, t: float) -> float:
        if t < 0:
            raise SimulationError(f"time must be non-negative, got {t}")
        slot = int(t / self.slot_seconds)
        return self.on_level if self._slot_on(slot) else self.off_level


class SpikeLoad(LoadProcess):
    """Scheduled load spikes: ``(start, duration, level)`` windows.

    Useful for scripted scenarios (e.g. Fig. 6's "another workload is
    started" moment) where the experiment needs a load change at an exact
    time.
    """

    def __init__(self, spikes: list[tuple[float, float, float]]) -> None:
        for start, duration, level in spikes:
            if start < 0 or duration <= 0:
                raise SimulationError(
                    f"spike windows need start >= 0 and duration > 0, got "
                    f"({start}, {duration})"
                )
            if not 0.0 <= level <= 1.0:
                raise SimulationError(f"spike level must be in [0, 1], got {level}")
        self.spikes = sorted(spikes)

    def load(self, t: float) -> float:
        level = 0.0
        for start, duration, spike_level in self.spikes:
            if start <= t < start + duration:
                level = max(level, spike_level)
        return level


class CompositeLoad(LoadProcess):
    """Sum of component loads, saturating at 1.0."""

    def __init__(self, components: list[LoadProcess]) -> None:
        if not components:
            raise SimulationError("composite load needs at least one component")
        self.components = list(components)

    def load(self, t: float) -> float:
        return min(1.0, sum(c.load(t) for c in self.components))
