"""Quality-of-service primitives for the control plane under overload.

The paper's control plane assumes telemetry always fits in the pipe; at
"millions of users" scale the telemetry flood and the decision traffic
contend for the same transports and the same Interface Daemon.  This
module supplies the two arbitration mechanisms the overload-resilient
plane is built from:

* :class:`Priority` -- the three traffic classes, ordered so decision
  traffic survives telemetry floods: layout commands (``CONTROL``)
  outrank movement records (``MOVEMENT``), which outrank access
  telemetry (``TELEMETRY``);
* :class:`TokenBucket` / :class:`AdmissionController` -- deterministic
  (simulated-time driven) per-tenant rate limiting in front of the
  Interface Daemon, with a configurable token reserve that only
  higher-priority classes may draw down.

Nothing here touches wall clocks or unseeded RNGs: buckets refill from
the simulated timestamps the messages already carry, so a run's shed
pattern is a pure function of the workload and the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.agents.messages import LayoutCommand, TelemetryBatch
from repro.errors import ConfigurationError
from repro.replaydb.records import MovementRecord


class Priority(IntEnum):
    """Traffic classes, lower value = higher priority."""

    CONTROL = 0
    MOVEMENT = 1
    TELEMETRY = 2


#: message type -> priority, filled lazily by :func:`classify`.  Lists
#: and tuples are never cached -- their class depends on their contents.
_CLASSIFY_CACHE: dict[type, Priority] = {}


def _classify_uncached(message) -> Priority:
    if isinstance(message, LayoutCommand):
        return Priority.CONTROL
    if isinstance(message, MovementRecord):
        return Priority.MOVEMENT
    if isinstance(message, (list, tuple)) and message and all(
        isinstance(item, MovementRecord) for item in message
    ):
        return Priority.MOVEMENT
    if isinstance(message, TelemetryBatch):
        return Priority.TELEMETRY
    return Priority.TELEMETRY


def classify(message) -> Priority:
    """The priority class of a control-plane message.

    Unknown message types (including corrupted garbage a chaos transport
    delivers) rank with telemetry: they must never displace decision
    traffic.  The class of a non-container message is a pure function of
    its type, so the isinstance ladder runs once per type ever seen and
    the hot transport send path pays one dict lookup.
    """
    cached = _CLASSIFY_CACHE.get(type(message))
    if cached is not None:
        return cached
    priority = _classify_uncached(message)
    if not isinstance(message, (list, tuple)):
        _CLASSIFY_CACHE[type(message)] = priority
    return priority


class TokenBucket:
    """A deterministic token bucket driven by simulated time.

    Holds at most ``burst`` tokens and refills at ``rate`` tokens per
    simulated second.  Timestamps may arrive slightly out of order (a
    reordering transport); refill only ever moves forward, so a stale
    timestamp neither refunds nor double-counts tokens.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill_t", "granted",
                 "denied")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ConfigurationError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_refill_t = 0.0
        self.granted = 0.0
        self.denied = 0.0

    def refill(self, now: float) -> None:
        """Advance the bucket to simulated time ``now``."""
        if now > self.last_refill_t:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self.last_refill_t) * self.rate,
            )
            self.last_refill_t = now

    def available(self, now: float) -> float:
        self.refill(now)
        return self.tokens

    def try_acquire(
        self, cost: float, now: float, *, reserve: float = 0.0
    ) -> bool:
        """Take ``cost`` tokens if the bucket keeps ``reserve`` afterwards.

        ``reserve`` is the floor lower-priority traffic may not draw the
        bucket below, so capacity stays available for decision traffic
        even mid-flood.  Returns whether the tokens were granted.
        """
        if cost < 0:
            raise ConfigurationError(f"cost must be >= 0, got {cost}")
        self.refill(now)
        if self.tokens - cost >= reserve:
            self.tokens -= cost
            self.granted += cost
            return True
        self.denied += cost
        return False


@dataclass
class TenantUsage:
    """Per-tenant admission accounting."""

    admitted_records: int = 0
    shed_records: int = 0
    admitted_messages: int = 0
    shed_messages: int = 0

    @property
    def shed_rate(self) -> float:
        offered = self.admitted_records + self.shed_records
        return self.shed_records / offered if offered else 0.0


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller did with one message."""

    admitted: bool
    tenant: str
    priority: Priority
    cost: float


class AdmissionController:
    """Token-bucket admission in front of the Interface Daemon.

    One bucket per tenant (rate overrides per tenant, a shared default
    otherwise).  Priority classes map to reserve floors: ``TELEMETRY``
    may only draw a bucket down to ``control_reserve_fraction * burst``,
    ``MOVEMENT`` down to half of that, and ``CONTROL`` is exempt -- a
    layout command is never shed by admission, so the decision path
    stays open while telemetry is being shed.
    """

    def __init__(
        self,
        *,
        rate_records_s: float,
        burst_records: float,
        tenant_rates: dict[str, float] | None = None,
        control_reserve_fraction: float = 0.1,
    ) -> None:
        if rate_records_s <= 0:
            raise ConfigurationError(
                f"rate_records_s must be positive, got {rate_records_s}"
            )
        if burst_records <= 0:
            raise ConfigurationError(
                f"burst_records must be positive, got {burst_records}"
            )
        if not 0.0 <= control_reserve_fraction < 1.0:
            raise ConfigurationError(
                f"control_reserve_fraction must be in [0, 1), "
                f"got {control_reserve_fraction}"
            )
        self.rate_records_s = float(rate_records_s)
        self.burst_records = float(burst_records)
        self.tenant_rates = dict(tenant_rates or {})
        for tenant, rate in self.tenant_rates.items():
            if rate <= 0:
                raise ConfigurationError(
                    f"tenant {tenant!r} rate must be positive, got {rate}"
                )
        self.control_reserve_fraction = float(control_reserve_fraction)
        self._buckets: dict[str, TokenBucket] = {}
        self.usage: dict[str, TenantUsage] = {}
        self.admitted_records = 0
        self.shed_records = 0

    def bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate = self.tenant_rates.get(tenant, self.rate_records_s)
            bucket = TokenBucket(rate, self.burst_records)
            self._buckets[tenant] = bucket
        return bucket

    def _usage(self, tenant: str) -> TenantUsage:
        usage = self.usage.get(tenant)
        if usage is None:
            usage = TenantUsage()
            self.usage[tenant] = usage
        return usage

    def _reserve_for(self, priority: Priority) -> float:
        if priority is Priority.TELEMETRY:
            return self.control_reserve_fraction * self.burst_records
        if priority is Priority.MOVEMENT:
            return self.control_reserve_fraction * self.burst_records / 2.0
        return 0.0

    def admit(
        self, tenant: str, priority: Priority, cost: float, now: float
    ) -> AdmissionDecision:
        """Decide one message carrying ``cost`` records at time ``now``."""
        usage = self._usage(tenant)
        if priority is Priority.CONTROL:
            # Decision traffic is exempt: it still consumes tokens (so
            # accounting conserves) but is admitted even when the bucket
            # cannot cover it -- the bucket just goes to its floor.
            bucket = self.bucket(tenant)
            bucket.refill(now)
            taken = min(cost, bucket.tokens)
            bucket.tokens -= taken
            bucket.granted += taken
            admitted = True
        else:
            admitted = self.bucket(tenant).try_acquire(
                cost, now, reserve=self._reserve_for(priority)
            )
        records = int(cost)
        if admitted:
            usage.admitted_records += records
            usage.admitted_messages += 1
            self.admitted_records += records
        else:
            usage.shed_records += records
            usage.shed_messages += 1
            self.shed_records += records
        return AdmissionDecision(
            admitted=admitted, tenant=tenant, priority=priority, cost=cost
        )

    @property
    def offered_records(self) -> int:
        return self.admitted_records + self.shed_records

    @property
    def shed_rate(self) -> float:
        offered = self.offered_records
        return self.shed_records / offered if offered else 0.0


@dataclass
class QosReport:
    """Admission + shedding summary for reporting surfaces."""

    admitted_records: int = 0
    shed_records: int = 0
    tenants: dict[str, TenantUsage] = field(default_factory=dict)

    @classmethod
    def from_controller(cls, controller: AdmissionController) -> "QosReport":
        return cls(
            admitted_records=controller.admitted_records,
            shed_records=controller.shed_records,
            tenants=dict(controller.usage),
        )
