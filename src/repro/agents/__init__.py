"""Monitoring/control agents and the Interface Daemon (paper section V-A).

"Monitoring agents collect access features from the target system and send
back performance information from each I/O operation ... Each monitoring
agent only measures the performance of one storage device ... When a new
data layout is determined, Geomancy sends the updated data layout to
Control Agents. ... the Interface Daemon stores the raw performance data
into the ReplayDB ... Overall transferring data from the target system to
Geomancy's dataset takes around 3ms on average."

Geomancy and the target system are decoupled behind message passing; here
the wire is an in-memory transport whose latency cost is tracked so the
overhead study can report it.
"""

from repro.agents.control import ControlAgent
from repro.agents.daemon import InterfaceDaemon
from repro.agents.messages import LayoutCommand, TelemetryBatch
from repro.agents.monitoring import MonitoringAgent
from repro.agents.transport import InMemoryTransport

__all__ = [
    "ControlAgent",
    "InterfaceDaemon",
    "LayoutCommand",
    "TelemetryBatch",
    "MonitoringAgent",
    "InMemoryTransport",
]
