"""Message types exchanged between the target system and Geomancy."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AgentError
from repro.replaydb.records import AccessRecord


@dataclass(frozen=True)
class TelemetryBatch:
    """Access records from one monitoring agent, batched to cut overhead.

    "Geomancy captures groups of accesses as one access to lower the
    overhead of transferring the performance data" (section V-A).
    """

    device: str
    records: tuple[AccessRecord, ...]
    sent_at: float
    #: workload tenant the records belong to; the admission controller
    #: rate-limits per tenant so one flooding tenant cannot starve the rest
    tenant: str = "default"
    #: causal trace id stamped at emission (see
    #: ``observability.provenance.CausalContext``); None on a legacy plane
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if not self.records:
            raise AgentError("telemetry batch must not be empty")
        wrong = [r.device for r in self.records if r.device != self.device]
        if wrong:
            raise AgentError(
                f"batch for device {self.device!r} contains records from "
                f"{sorted(set(wrong))}"
            )
        if self.sent_at < 0:
            raise AgentError(f"sent_at must be non-negative, got {self.sent_at}")


@dataclass(frozen=True)
class LayoutCommand:
    """A layout update pushed from Geomancy to the control agents."""

    layout: dict[int, str] = field(default_factory=dict)
    issued_at: float = 0.0
    #: causal trace id linking this command to its decision epoch and the
    #: movements it produces; None on a legacy plane
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.issued_at < 0:
            raise AgentError(
                f"issued_at must be non-negative, got {self.issued_at}"
            )
