"""In-memory message transports with accounted latency and bounded queues.

The paper's agents talk over a real network; here delivery is immediate but
every message is charged the configured one-way latency (default 3 ms, the
paper's measured average for telemetry transfer) into a running total that
the overhead study reports.

Two channels are provided:

* :class:`InMemoryTransport` -- the plain FIFO the ordinary control plane
  uses.  Optionally bounded (``maxsize``): a full queue sheds per the
  configured policy instead of growing without limit, so even non-QoS
  runs cannot strand the process in an allocation death spiral.
* :class:`BoundedTransport` -- the QoS channel: a required capacity plus
  per-priority lanes (:class:`~repro.agents.qos.Priority`), so layout
  commands are delivered before movement records before telemetry, and
  shedding under pressure evicts the lowest-priority traffic first.

``send`` returns ``True`` when the message was enqueued and ``False``
when it was shed or rejected -- the backpressure signal monitoring
agents use to coalesce instead of silently losing telemetry.
"""

from __future__ import annotations

from collections import deque

from repro.agents.qos import Priority, classify
from repro.errors import AgentError, TransportError

#: shed policies a bounded queue may apply when full
SHED_POLICIES = ("drop-oldest", "drop-newest", "reject")


class InMemoryTransport:
    """FIFO channel between the target system and Geomancy."""

    def __init__(
        self,
        latency_s: float = 0.003,
        *,
        maxsize: int | None = None,
        policy: str = "drop-oldest",
    ) -> None:
        if latency_s < 0:
            raise AgentError(f"latency must be non-negative, got {latency_s}")
        if maxsize is not None and maxsize < 1:
            raise TransportError(
                f"maxsize must be >= 1 or None, got {maxsize}"
            )
        if policy not in SHED_POLICIES:
            raise TransportError(
                f"policy must be one of {SHED_POLICIES}, got {policy!r}"
            )
        self.latency_s = float(latency_s)
        self.maxsize = int(maxsize) if maxsize is not None else None
        self.policy = policy
        self._queue: deque = deque()
        self.messages_sent = 0
        self.total_latency_s = 0.0
        #: messages evicted or refused because the queue was full
        self.shed = 0
        #: sends refused with backpressure (``reject``/``drop-newest``)
        self.rejected = 0
        #: high-water mark of the pending queue
        self.peak_pending = 0
        #: optional :class:`~repro.observability.provenance.CausalContext`;
        #: when attached, messages this transport *evicts* have their
        #: trace ids resolved as ``queue-shed`` (refused offers return
        #: ``False`` and stay the sender's responsibility)
        self.causal = None

    def _resolve_causal(self, message, outcome: str) -> None:
        if self.causal is not None:
            self.causal.resolve(getattr(message, "trace_id", None), outcome)

    def _enqueue(self, message) -> bool:
        """Queue ``message``, shedding per policy when full.

        Returns whether the *offered* message was enqueued; a
        ``drop-oldest`` shed evicts queued traffic instead, so the offer
        itself still succeeds (the sender is not backpressured).
        """
        if self.maxsize is not None and len(self._queue) >= self.maxsize:
            if self.policy == "drop-oldest":
                evicted = self._queue.popleft()
                self.shed += 1
                self._resolve_causal(evicted, "queue-shed")
            else:  # drop-newest / reject: the new message is refused
                self.shed += 1
                self.rejected += 1
                return False
        self._queue.append(message)
        if len(self._queue) > self.peak_pending:
            self.peak_pending = len(self._queue)
        return True

    def send(self, message) -> bool:
        """Enqueue a message, charging one latency unit.

        Returns ``False`` when a bounded queue refused the message
        (``drop-newest``/``reject`` policies) -- the sender's cue to
        coalesce or down-sample; ``True`` otherwise.
        """
        self.messages_sent += 1
        self.total_latency_s += self.latency_s
        return self._enqueue(message)

    def receive(self):
        """Pop the oldest pending message."""
        if not self._queue:
            raise AgentError("no pending messages")
        return self._queue.popleft()

    def receive_all(self) -> list:
        """Drain every pending message in order."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    @property
    def pending(self) -> int:
        return len(self._queue)


class BoundedTransport(InMemoryTransport):
    """Priority-laned bounded channel for the QoS control plane.

    ``capacity`` bounds the *total* queued messages across lanes.  Each
    message is classified (:func:`~repro.agents.qos.classify`) into a
    lane; draining always serves higher-priority lanes first (FIFO
    within a lane).  When full:

    * ``drop-oldest`` evicts the oldest message of the lowest-priority
      non-empty lane -- telemetry sheds before movement records before
      control, and a layout command can displace queued telemetry;
    * ``drop-newest`` refuses the offer unless a strictly lower-priority
      message can be evicted instead;
    * ``reject`` refuses any offer that does not fit, full stop, and
      relies on sender backpressure.
    """

    def __init__(
        self,
        latency_s: float = 0.003,
        *,
        capacity: int,
        policy: str = "drop-oldest",
    ) -> None:
        super().__init__(latency_s, maxsize=capacity, policy=policy)
        self._lanes: dict[int, deque] = {
            int(priority): deque() for priority in Priority
        }
        # Lane order is fixed at construction; resolving it per send
        # (sorting the dict on every enqueue/evict/drain) showed up on
        # the saturation harness profile, so precompute both walks and
        # track the pending total as a counter instead of re-summing.
        self._lane_order: tuple[int, ...] = tuple(sorted(self._lanes))
        self._lane_order_desc: tuple[int, ...] = tuple(
            reversed(self._lane_order)
        )
        self._pending_total = 0
        #: messages shed per priority class
        self.shed_by_priority: dict[int, int] = {
            int(priority): 0 for priority in Priority
        }

    @property
    def capacity(self) -> int:
        return self.maxsize  # type: ignore[return-value]

    def _total(self) -> int:
        return self._pending_total

    def _evict_lowest(self, below: int | None = None) -> bool:
        """Drop the oldest message of the lowest-priority non-empty lane.

        ``below`` restricts eviction to lanes strictly lower-priority
        (greater value) than the given class.  Returns whether a message
        was evicted.
        """
        for priority in self._lane_order_desc:
            if below is not None and priority <= below:
                continue
            lane = self._lanes[priority]
            if lane:
                evicted = lane.popleft()
                self._pending_total -= 1
                self.shed += 1
                self.shed_by_priority[priority] += 1
                self._resolve_causal(evicted, "queue-shed")
                return True
        return False

    def _enqueue(self, message) -> bool:
        priority = int(classify(message))
        if self._pending_total >= self.maxsize:
            if self.policy == "drop-oldest":
                if not self._evict_lowest():  # pragma: no cover - capacity>=1
                    return False
            elif self.policy == "drop-newest":
                # A higher-priority offer may displace queued
                # lower-priority traffic; otherwise refuse the new one.
                if not self._evict_lowest(below=priority):
                    self.shed += 1
                    self.rejected += 1
                    self.shed_by_priority[priority] += 1
                    return False
            else:  # reject
                self.shed += 1
                self.rejected += 1
                self.shed_by_priority[priority] += 1
                return False
        self._lanes[priority].append(message)
        self._pending_total += 1
        if self._pending_total > self.peak_pending:
            self.peak_pending = self._pending_total
        return True

    def receive(self):
        for priority in self._lane_order:
            lane = self._lanes[priority]
            if lane:
                self._pending_total -= 1
                return lane.popleft()
        raise AgentError("no pending messages")

    def receive_all(self) -> list:
        drained: list = []
        for priority in self._lane_order:
            lane = self._lanes[priority]
            drained.extend(lane)
            lane.clear()
        self._pending_total = 0
        return drained

    @property
    def pending(self) -> int:
        return self._pending_total

    def pending_by_priority(self) -> dict[int, int]:
        return {
            priority: len(lane) for priority, lane in self._lanes.items()
        }
