"""In-memory message transport with accounted latency.

The paper's agents talk over a real network; here delivery is immediate but
every message is charged the configured one-way latency (default 3 ms, the
paper's measured average for telemetry transfer) into a running total that
the overhead study reports.
"""

from __future__ import annotations

from collections import deque

from repro.errors import AgentError


class InMemoryTransport:
    """FIFO channel between the target system and Geomancy."""

    def __init__(self, latency_s: float = 0.003) -> None:
        if latency_s < 0:
            raise AgentError(f"latency must be non-negative, got {latency_s}")
        self.latency_s = float(latency_s)
        self._queue: deque = deque()
        self.messages_sent = 0
        self.total_latency_s = 0.0

    def send(self, message) -> None:
        """Enqueue a message, charging one latency unit."""
        self._queue.append(message)
        self.messages_sent += 1
        self.total_latency_s += self.latency_s

    def receive(self):
        """Pop the oldest pending message."""
        if not self._queue:
            raise AgentError("no pending messages")
        return self._queue.popleft()

    def receive_all(self) -> list:
        """Drain every pending message in order."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    @property
    def pending(self) -> int:
        return len(self._queue)
