"""The Interface Daemon (paper section V-A).

"the Interface Daemon stores the raw performance data into the ReplayDB, a
SQLite database located outside the target system.  The Interface Daemon is
a networking middleware that allows parallel requests to be sent between
the target system, Geomancy, and internally within Geomancy."

Overload hardening (beyond the paper): an optional
:class:`~repro.agents.qos.AdmissionController` rate-limits ingestion per
tenant with priority classes, so decision traffic survives telemetry
floods; dead-lettered messages are persisted to a bounded
:class:`~repro.agents.deadletter.DeadLetterStore` (and announced on the
event bus) instead of being counted and thrown away; and
:meth:`pump_telemetry` accepts a service ``budget`` so saturation studies
can model a daemon with finite ingest capacity.
"""

from __future__ import annotations

from repro.agents.deadletter import DeadLetterStore
from repro.agents.messages import LayoutCommand, TelemetryBatch
from repro.agents.qos import AdmissionController, Priority
from repro.agents.transport import InMemoryTransport
from repro.errors import ReplayDBError
from repro.observability import Observability, get_observability
from repro.observability.logs import get_logger
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import MovementRecord

logger = get_logger("agents.daemon")


class InterfaceDaemon:
    """Routes telemetry into the ReplayDB and commands toward the system."""

    def __init__(
        self,
        db: ReplayDB,
        telemetry: InMemoryTransport,
        commands: InMemoryTransport,
        *,
        obs: Observability | None = None,
        admission: AdmissionController | None = None,
        dead_letter_store: DeadLetterStore | None = None,
    ) -> None:
        self.db = db
        self.telemetry = telemetry
        self.commands = commands
        self.obs = obs if obs is not None else get_observability()
        #: optional per-tenant token-bucket admission in front of the DB;
        #: None keeps the legacy ingest-everything behaviour bit-for-bit
        self.admission = admission
        #: malformed messages land here (bounded ring) instead of being
        #: discarded; None keeps the count-only legacy behaviour
        self.dead_letter_store = dead_letter_store
        self.batches_ingested = 0
        self.records_ingested = 0
        #: malformed messages counted and dropped instead of crashing the
        #: drain -- one bad batch must not strand everything queued behind it
        self.dead_letters = 0
        #: records the admission controller refused (deliberate shedding,
        #: distinct from malformed dead letters)
        self.records_shed = 0
        self.batches_shed = 0
        metrics = self.obs.metrics
        self._m_batches = metrics.counter(
            "repro_agents_batches_ingested_total",
            "telemetry batches stored into the ReplayDB",
        )
        self._m_records = metrics.counter(
            "repro_agents_records_ingested_total",
            "access records stored into the ReplayDB",
        )
        self._m_dead = metrics.counter(
            "repro_agents_dead_letters_total",
            "telemetry messages dropped as malformed or rejected",
        )
        self._m_shed = metrics.counter(
            "repro_agents_records_shed_total",
            "telemetry records refused by the admission controller",
        )
        self._m_layouts = metrics.counter(
            "repro_agents_layout_commands_total",
            "layout commands forwarded to the control agents",
        )
        #: drain time minus ``sent_at`` per ingested batch -- the queue +
        #: transport delay the causal layer and the queue-delay SLO read
        self.queue_delay_histogram = metrics.histogram(
            "repro_agents_ingest_queue_delay_seconds",
            "delay between a batch's sent_at and its drain into the DB",
        )
        #: optional :class:`~repro.observability.provenance.CausalContext`
        #: (see :meth:`attach_causal`)
        self.causal = None
        #: cumulative ReplayDB access rows landed through this daemon,
        #: tracked so each batch's rowid span is known without a DB query
        self._rows_landed = 0

    def attach_causal(self, causal) -> None:
        """Resolve batch fates (with rowid spans) through ``causal``.

        Must be attached before telemetry flows: the landed-row counter
        is seeded from the DB's current count so rowid spans line up with
        the write-behind buffer's arrival-order rowid assignment.
        """
        self.causal = causal
        self._rows_landed = self.db.access_count()

    def _dead_letter(self, reason: str, message, at: float) -> None:
        self.dead_letters += 1
        self._m_dead.inc()
        if self.dead_letter_store is not None:
            self.dead_letter_store.add(reason, message, at)
        if self.obs.enabled:
            self.obs.emit(
                "dead-letter", t=at, step=0,
                reason=reason, kind=type(message).__name__,
            )

    def _resolve(self, message, outcome: str, **fields) -> None:
        if self.causal is not None:
            self.causal.resolve(
                getattr(message, "trace_id", None), outcome, **fields
            )

    def _ingest(self, message, now: float, drained_at: float | None = None) -> int:
        """Route one drained message; returns records stored from it."""
        if not isinstance(message, TelemetryBatch):
            self._dead_letter("non-telemetry message", message, now)
            self._resolve(message, "dead-letter", drained_at=drained_at)
            logger.warning(
                "dead-lettered non-telemetry message of type %s "
                "on the telemetry transport (trace %s)",
                type(message).__name__,
                getattr(message, "trace_id", None),
            )
            return 0
        if self.admission is not None:
            decision = self.admission.admit(
                message.tenant, Priority.TELEMETRY,
                cost=len(message.records), now=message.sent_at,
            )
            if not decision.admitted:
                self.batches_shed += 1
                self.records_shed += len(message.records)
                self._m_shed.inc(len(message.records))
                self._resolve(message, "admission-shed", drained_at=drained_at)
                if self.obs.enabled:
                    self.obs.emit(
                        "telemetry-shed", t=message.sent_at, step=0,
                        tenant=message.tenant, records=len(message.records),
                    )
                return 0
        try:
            self.db.insert_accesses(message.records)
        except ReplayDBError as exc:
            self._dead_letter(f"rejected by the ReplayDB: {exc}", message, now)
            self._resolve(message, "dead-letter", drained_at=drained_at)
            logger.warning(
                "dead-lettered telemetry batch of %d records "
                "rejected by the ReplayDB: %s (trace %s)",
                len(message.records), exc, message.trace_id,
            )
            return 0
        self.batches_ingested += 1
        self._m_batches.inc()
        stored = len(message.records)
        if self.causal is not None:
            # Write-behind rowids are assigned in arrival order, so the
            # batch's span is the next `stored` rows after the last land.
            lo = self._rows_landed + 1
            self._rows_landed += stored
            self.causal.resolve(
                message.trace_id, "ingested",
                drained_at=drained_at,
                rowid_lo=lo, rowid_hi=self._rows_landed,
            )
        if drained_at is not None:
            self.queue_delay_histogram.observe(
                max(0.0, drained_at - message.sent_at)
            )
        return stored

    def ingest(
        self,
        message,
        *,
        now: float | None = None,
        drained_at: float | None = None,
    ) -> int:
        """Route one already-received message; returns records stored.

        The seam for harnesses that drain a shared transport themselves
        (e.g. the saturation study multiplexing control and telemetry
        over one bounded channel) but still want the daemon to be the
        single authority on admission, dead-lettering, and DB writes.
        """
        at = now if now is not None else _message_time(message)
        stored = self._ingest(message, at, drained_at)
        self.records_ingested += stored
        self._m_records.inc(stored)
        return stored

    def pump_telemetry(
        self,
        *,
        budget: int | None = None,
        now: float | None = None,
        drained_at: float | None = None,
    ) -> int:
        """Drain pending telemetry batches into the ReplayDB.

        Returns the number of records stored.  Messages that are not
        telemetry batches (or batches the DB rejects) are dead-lettered --
        counted, persisted when a store is attached, logged at WARNING --
        so the rest of the queue still lands.  With an admission
        controller attached, each batch must also win its tenant's token
        bucket or it is shed (counted, announced on the bus).

        ``budget`` bounds the records ingested in this call (a daemon
        with finite service capacity); unserved messages stay queued for
        the next pump.  ``now`` is only used to timestamp dead letters
        (defaults to each batch's ``sent_at``).  ``drained_at`` is the
        simulated drain time the causal layer attributes queue delay
        against (delay = ``drained_at - sent_at`` per batch); None skips
        the attribution.
        """
        stored = 0
        with self.obs.span("replaydb_write"):
            if budget is None:
                for message in self.telemetry.receive_all():
                    at = now if now is not None else _message_time(message)
                    stored += self._ingest(message, at, drained_at)
            else:
                while self.telemetry.pending and stored < budget:
                    message = self.telemetry.receive()
                    at = now if now is not None else _message_time(message)
                    stored += self._ingest(message, at, drained_at)
        self.records_ingested += stored
        self._m_records.inc(stored)
        return stored

    def send_layout(
        self, layout: dict[int, str], at: float, *, trace_id: str | None = None
    ) -> None:
        """Forward a layout decision to the control agents."""
        self.commands.send(
            LayoutCommand(layout=dict(layout), issued_at=at, trace_id=trace_id)
        )
        self._m_layouts.inc()

    def record_movements(self, moves: list[MovementRecord]) -> None:
        """Log executed movements so the layout evolution is queryable."""
        if moves:
            self.db.insert_movements(moves)

    @property
    def transfer_overhead_s(self) -> float:
        """Accumulated simulated network latency (the paper's ~3 ms/batch)."""
        return self.telemetry.total_latency_s + self.commands.total_latency_s


def _message_time(message) -> float:
    at = getattr(message, "sent_at", None)
    return float(at) if isinstance(at, (int, float)) else 0.0
