"""The Interface Daemon (paper section V-A).

"the Interface Daemon stores the raw performance data into the ReplayDB, a
SQLite database located outside the target system.  The Interface Daemon is
a networking middleware that allows parallel requests to be sent between
the target system, Geomancy, and internally within Geomancy."
"""

from __future__ import annotations

from repro.agents.messages import LayoutCommand, TelemetryBatch
from repro.agents.transport import InMemoryTransport
from repro.errors import ReplayDBError
from repro.observability import Observability, get_observability
from repro.observability.logs import get_logger
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import MovementRecord

logger = get_logger("agents.daemon")


class InterfaceDaemon:
    """Routes telemetry into the ReplayDB and commands toward the system."""

    def __init__(
        self,
        db: ReplayDB,
        telemetry: InMemoryTransport,
        commands: InMemoryTransport,
        *,
        obs: Observability | None = None,
    ) -> None:
        self.db = db
        self.telemetry = telemetry
        self.commands = commands
        self.obs = obs if obs is not None else get_observability()
        self.batches_ingested = 0
        self.records_ingested = 0
        #: malformed messages counted and dropped instead of crashing the
        #: drain -- one bad batch must not strand everything queued behind it
        self.dead_letters = 0
        metrics = self.obs.metrics
        self._m_batches = metrics.counter(
            "repro_agents_batches_ingested_total",
            "telemetry batches stored into the ReplayDB",
        )
        self._m_records = metrics.counter(
            "repro_agents_records_ingested_total",
            "access records stored into the ReplayDB",
        )
        self._m_dead = metrics.counter(
            "repro_agents_dead_letters_total",
            "telemetry messages dropped as malformed or rejected",
        )
        self._m_layouts = metrics.counter(
            "repro_agents_layout_commands_total",
            "layout commands forwarded to the control agents",
        )

    def pump_telemetry(self) -> int:
        """Drain pending telemetry batches into the ReplayDB.

        Returns the number of records stored.  Messages that are not
        telemetry batches (or batches the DB rejects) are dead-lettered --
        counted, logged at WARNING, and discarded -- so the rest of the
        queue still lands.
        """
        stored = 0
        with self.obs.span("replaydb_write"):
            for message in self.telemetry.receive_all():
                if not isinstance(message, TelemetryBatch):
                    self.dead_letters += 1
                    self._m_dead.inc()
                    logger.warning(
                        "dead-lettered non-telemetry message of type %s "
                        "on the telemetry transport",
                        type(message).__name__,
                    )
                    continue
                try:
                    self.db.insert_accesses(message.records)
                except ReplayDBError as exc:
                    self.dead_letters += 1
                    self._m_dead.inc()
                    logger.warning(
                        "dead-lettered telemetry batch of %d records "
                        "rejected by the ReplayDB: %s",
                        len(message.records),
                        exc,
                    )
                    continue
                self.batches_ingested += 1
                self._m_batches.inc()
                stored += len(message.records)
        self.records_ingested += stored
        self._m_records.inc(stored)
        return stored

    def send_layout(self, layout: dict[int, str], at: float) -> None:
        """Forward a layout decision to the control agents."""
        self.commands.send(LayoutCommand(layout=dict(layout), issued_at=at))
        self._m_layouts.inc()

    def record_movements(self, moves: list[MovementRecord]) -> None:
        """Log executed movements so the layout evolution is queryable."""
        if moves:
            self.db.insert_movements(moves)

    @property
    def transfer_overhead_s(self) -> float:
        """Accumulated simulated network latency (the paper's ~3 ms/batch)."""
        return self.telemetry.total_latency_s + self.commands.total_latency_s
