"""Control agents (paper section V-A).

"When a new data layout is determined, Geomancy sends the updated data
layout to Control Agents ... they do not interfere with the system's
activities except for instructing the target system to move data in the
background."

Execution is transactional per file: a migration a fault aborts
mid-transfer leaves the file on its source device, is recorded as a failed
:class:`MovementRecord`, and is retried on later commands with exponential
backoff until a per-file retry cap gives up on it.  Destinations that went
unavailable between the Action Checker's validation and execution are
skipped, not fatal.  A :class:`~repro.faults.health.HealthTracker`, when
attached, hears about every outcome so repeatedly failing devices get
quarantined upstream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.agents.messages import LayoutCommand
from repro.errors import (
    AgentError,
    CapacityError,
    DeviceUnavailableError,
    MigrationError,
    RetryExhaustedError,
    UnknownFileError,
)
from repro.faults.health import HealthTracker
from repro.observability import get_observability
from repro.observability.logs import get_logger
from repro.replaydb.records import MovementRecord
from repro.simulation.cluster import StorageCluster

logger = get_logger("agents.control")


@dataclass
class _RetryState:
    """A failed move waiting for another attempt."""

    dst: str
    attempts: int
    next_eligible_t: float


class ControlAgent:
    """Executes layout commands against the target cluster."""

    def __init__(
        self,
        cluster: StorageCluster,
        *,
        max_move_retries: int = 3,
        retry_backoff_s: float = 5.0,
        retry_backoff_max_s: float = 300.0,
        retry_jitter: bool = False,
        seed: int = 0,
        health: HealthTracker | None = None,
    ) -> None:
        if max_move_retries < 0:
            raise AgentError(
                f"max_move_retries must be >= 0, got {max_move_retries}"
            )
        if retry_backoff_s <= 0:
            raise AgentError(
                f"retry_backoff_s must be positive, got {retry_backoff_s}"
            )
        if retry_backoff_max_s < retry_backoff_s:
            raise AgentError(
                f"retry_backoff_max_s must be >= retry_backoff_s, "
                f"got {retry_backoff_max_s} < {retry_backoff_s}"
            )
        self.cluster = cluster
        self.max_move_retries = int(max_move_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        #: cap on the exponential backoff, so deep retry chains cannot
        #: push a file's next attempt arbitrarily far into the future
        self.retry_backoff_max_s = float(retry_backoff_max_s)
        #: seeded full jitter: the actual delay is uniform in
        #: (0, capped backoff], drawn from a generator keyed to
        #: (seed, fid, attempts) -- deterministic per run, but different
        #: files never retry in lockstep, so an overload burst cannot
        #: synchronize into a retry storm
        self.retry_jitter = bool(retry_jitter)
        self.seed = int(seed)
        self.health = health
        self.commands_executed = 0
        self.files_moved = 0
        self.moves_failed = 0
        self.moves_skipped = 0
        self.moves_retried = 0
        self._retries: dict[int, _RetryState] = {}
        #: moves that ran out of retries, kept as data for reporting
        self.exhausted: list[RetryExhaustedError] = []
        metrics = get_observability().metrics
        self._m_commands = metrics.counter(
            "repro_agents_commands_executed_total",
            "layout commands executed against the cluster",
        )
        self._m_retries = metrics.counter(
            "repro_agents_moves_retried_total",
            "failed moves re-attempted after backoff",
        )
        self._m_exhausted = metrics.counter(
            "repro_agents_retries_exhausted_total",
            "moves abandoned after exhausting their retry budget",
        )

    # -- retry bookkeeping -------------------------------------------------
    @property
    def pending_retries(self) -> int:
        return len(self._retries)

    def has_due_retries(self, t: float) -> bool:
        return any(state.next_eligible_t <= t for state in self._retries.values())

    def _note_failure(self, fid: int, dst: str, t: float) -> None:
        state = self._retries.get(fid)
        attempts = state.attempts + 1 if state is not None else 1
        if attempts > self.max_move_retries:
            self._retries.pop(fid, None)
            self.exhausted.append(
                RetryExhaustedError(
                    f"gave up moving file {fid} to {dst!r} after "
                    f"{attempts} attempts",
                    fid=fid, dst=dst, attempts=attempts,
                )
            )
            self._m_exhausted.inc()
            logger.warning(
                "gave up moving file %d to %r after %d attempts",
                fid, dst, attempts,
            )
            return
        backoff = self._backoff(fid, attempts)
        self._retries[fid] = _RetryState(
            dst=dst, attempts=attempts, next_eligible_t=t + backoff
        )

    def _backoff(self, fid: int, attempts: int) -> float:
        """Exponential backoff, capped, with optional seeded full jitter."""
        backoff = min(
            self.retry_backoff_max_s,
            self.retry_backoff_s * 2 ** (attempts - 1),
        )
        if not self.retry_jitter:
            return backoff
        # Full jitter (uniform over (0, backoff]): spreads simultaneous
        # failures across the whole window instead of re-colliding them
        # at the same instant.  (1 - u) keeps the delay strictly positive.
        u = np.random.default_rng((self.seed, fid, attempts)).random()
        return backoff * (1.0 - u)

    def _due_retries(self, t: float) -> dict[int, str]:
        return {
            fid: state.dst
            for fid, state in self._retries.items()
            if state.next_eligible_t <= t
        }

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable agent state (counters, retry queue, give-ups)."""
        return {
            "commands_executed": self.commands_executed,
            "files_moved": self.files_moved,
            "moves_failed": self.moves_failed,
            "moves_skipped": self.moves_skipped,
            "moves_retried": self.moves_retried,
            "retries": {
                str(fid): {
                    "dst": state.dst,
                    "attempts": state.attempts,
                    "next_eligible_t": state.next_eligible_t,
                }
                for fid, state in self._retries.items()
            },
            "exhausted": [
                {
                    "message": str(exc),
                    "fid": exc.fid,
                    "dst": exc.dst,
                    "attempts": exc.attempts,
                }
                for exc in self.exhausted
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.commands_executed = int(state["commands_executed"])
        self.files_moved = int(state["files_moved"])
        self.moves_failed = int(state["moves_failed"])
        self.moves_skipped = int(state["moves_skipped"])
        self.moves_retried = int(state["moves_retried"])
        self._retries = {
            int(fid): _RetryState(
                dst=str(entry["dst"]),
                attempts=int(entry["attempts"]),
                next_eligible_t=float(entry["next_eligible_t"]),
            )
            for fid, entry in state["retries"].items()
        }
        self.exhausted = [
            RetryExhaustedError(
                entry["message"],
                fid=int(entry["fid"]),
                dst=str(entry["dst"]),
                attempts=int(entry["attempts"]),
            )
            for entry in state["exhausted"]
        ]

    # -- execution ---------------------------------------------------------
    def execute(self, command: LayoutCommand) -> list[MovementRecord]:
        """Apply a layout command; returns the movements attempted.

        Unknown device targets are rejected wholesale -- the Action Checker
        upstream is responsible for validity, so reaching here with an
        invalid target is a programming error worth surfacing loudly.
        Everything else is handled per file: aborted transfers roll back
        and queue a retry, unavailable/full destinations are skipped, and
        retries from earlier commands ride along once their backoff
        expires (a fresh target for the same file supersedes its retry).
        """
        valid = set(self.cluster.device_names)
        invalid = {
            device for device in command.layout.values() if device not in valid
        }
        if invalid:
            raise AgentError(
                f"layout command names unknown devices {sorted(invalid)}"
            )
        work = dict(command.layout)
        for fid, dst in self._due_retries(command.issued_at).items():
            if fid not in work:
                work[fid] = dst
                self.moves_retried += 1
                self._m_retries.inc()
        t = command.issued_at
        records: list[MovementRecord] = []
        for fid in sorted(work):
            dst = work[fid]
            try:
                move = self.cluster.migrate(fid, dst, t)
            except MigrationError as exc:
                failed = MovementRecord(
                    timestamp=t,
                    fid=fid,
                    src_device=exc.src,
                    dst_device=exc.dst,
                    bytes_moved=exc.bytes_transferred,
                    duration=exc.duration,
                    succeeded=False,
                    trace_id=command.trace_id,
                )
                records.append(failed)
                t += exc.duration
                self.moves_failed += 1
                self._note_failure(fid, dst, t)
                if self.health is not None:
                    self.health.record_failure(dst, t)
                continue
            except (CapacityError, DeviceUnavailableError):
                # The destination filled up, stopped accepting placements,
                # or went offline since validation; skip without charging
                # any transfer, and let health tracking cool it down.
                self.moves_skipped += 1
                self._note_failure(fid, dst, t)
                if self.health is not None:
                    self.health.record_failure(dst, t)
                continue
            except UnknownFileError:
                # The file vanished from the namespace (e.g. a competing
                # workload removed it); nothing to move.
                self.moves_skipped += 1
                self._retries.pop(fid, None)
                continue
            if move is None:
                # Already in place; a stale retry resolves itself.
                self._retries.pop(fid, None)
                continue
            if command.trace_id is not None:
                # The cluster constructs the record; stamp the causing
                # command's trace id onto it (legacy commands leave None).
                move = replace(move, trace_id=command.trace_id)
            records.append(move)
            t += move.duration
            self.files_moved += 1
            self._retries.pop(fid, None)
            if self.health is not None:
                self.health.record_success(dst, t)
        self.commands_executed += 1
        self._m_commands.inc()
        return records
