"""Control agents (paper section V-A).

"When a new data layout is determined, Geomancy sends the updated data
layout to Control Agents ... they do not interfere with the system's
activities except for instructing the target system to move data in the
background."
"""

from __future__ import annotations

from repro.agents.messages import LayoutCommand
from repro.errors import AgentError
from repro.replaydb.records import MovementRecord
from repro.simulation.cluster import StorageCluster


class ControlAgent:
    """Executes layout commands against the target cluster."""

    def __init__(self, cluster: StorageCluster) -> None:
        self.cluster = cluster
        self.commands_executed = 0
        self.files_moved = 0

    def execute(self, command: LayoutCommand) -> list[MovementRecord]:
        """Apply a layout command; returns the movements performed.

        Unknown device targets are rejected wholesale -- the Action Checker
        upstream is responsible for validity, so reaching here with an
        invalid target is a programming error worth surfacing loudly.
        """
        valid = set(self.cluster.device_names)
        invalid = {
            device for device in command.layout.values() if device not in valid
        }
        if invalid:
            raise AgentError(
                f"layout command names unknown devices {sorted(invalid)}"
            )
        # Non-strict application: a device can fill up or stop accepting
        # placements between the Action Checker's validation and this
        # execution; such moves are skipped, not fatal.
        moves = self.cluster.apply_layout(
            command.layout, command.issued_at, strict=False
        )
        self.commands_executed += 1
        self.files_moved += len(moves)
        return moves
