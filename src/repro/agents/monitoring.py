"""Per-device monitoring agents (paper section V-A).

"When a file is detected to have been accessed, the monitoring agent flags
the start of the access and the end of the access and measures the number
of bytes read and written on the file."
"""

from __future__ import annotations

from repro.agents.messages import TelemetryBatch
from repro.agents.transport import InMemoryTransport
from repro.errors import AgentError
from repro.observability import get_observability
from repro.replaydb.records import AccessRecord


class MonitoringAgent:
    """Observes one storage device; batches telemetry toward Geomancy."""

    def __init__(
        self,
        device: str,
        transport: InMemoryTransport,
        *,
        batch_size: int = 32,
    ) -> None:
        if not device:
            raise AgentError("device name must be non-empty")
        if batch_size < 1:
            raise AgentError(f"batch_size must be >= 1, got {batch_size}")
        self.device = device
        self.transport = transport
        self.batch_size = int(batch_size)
        self._buffer: list[AccessRecord] = []
        self.observed = 0
        metrics = get_observability().metrics
        self._m_observed = metrics.counter(
            "repro_agents_accesses_observed_total",
            "accesses seen by the monitoring agents",
        )
        self._m_batches_sent = metrics.counter(
            "repro_agents_telemetry_batches_sent_total",
            "telemetry batches sent toward the Interface Daemon",
        )

    def observe(self, record: AccessRecord) -> None:
        """Record one access on this agent's device.

        Auto-flushes a full batch ("Geomancy captures groups of accesses as
        one access to lower the overhead").
        """
        if record.device != self.device:
            raise AgentError(
                f"agent for {self.device!r} observed access on "
                f"{record.device!r}"
            )
        self._buffer.append(record)
        self.observed += 1
        self._m_observed.inc()
        if len(self._buffer) >= self.batch_size:
            self.flush(at=record.close_time)

    def observe_many(self, records: list[AccessRecord]) -> None:
        """Record a chunk of accesses on this agent's device.

        Equivalent to calling :meth:`observe` once per record -- the same
        batch boundaries fire at the same records with the same ``at``
        timestamps -- but appends chunk-wise instead of paying the
        per-record call overhead.
        """
        n = len(records)
        i = 0
        buffer = self._buffer
        batch_size = self.batch_size
        while i < n:
            take = min(batch_size - len(buffer), n - i)
            chunk = records[i : i + take]
            for record in chunk:
                if record.device != self.device:
                    raise AgentError(
                        f"agent for {self.device!r} observed access on "
                        f"{record.device!r}"
                    )
            buffer.extend(chunk)
            i += take
            if len(buffer) >= batch_size:
                self.flush(at=buffer[-1].close_time)
        self.observed += n
        self._m_observed.inc(n)

    def flush(self, at: float) -> bool:
        """Send any buffered records; returns whether a batch was sent."""
        if not self._buffer:
            return False
        batch = TelemetryBatch(
            device=self.device, records=tuple(self._buffer), sent_at=at
        )
        self._buffer.clear()
        self.transport.send(batch)
        self._m_batches_sent.inc()
        return True

    @property
    def buffered(self) -> int:
        return len(self._buffer)
