"""Per-device monitoring agents (paper section V-A).

"When a file is detected to have been accessed, the monitoring agent flags
the start of the access and the end of the access and measures the number
of bytes read and written on the file."

Under overload the transport may refuse a batch (a bounded queue with a
``reject``/``drop-newest`` policy returns ``False`` from ``send``).  The
agent then *coalesces* instead of silently losing telemetry: the refused
batch is down-sampled (every ``downsample_factor``-th record kept) into a
bounded backlog that rides along with the next flush.  Lower-resolution
telemetry still reaches the engine; the flood never grows an unbounded
buffer on the sender side either.
"""

from __future__ import annotations

from repro.agents.messages import TelemetryBatch
from repro.agents.transport import InMemoryTransport
from repro.errors import AgentError
from repro.observability import get_observability
from repro.replaydb.records import AccessRecord


class MonitoringAgent:
    """Observes one storage device; batches telemetry toward Geomancy."""

    def __init__(
        self,
        device: str,
        transport: InMemoryTransport,
        *,
        batch_size: int = 32,
        tenant: str = "default",
        downsample_factor: int = 2,
        backlog_batches: int = 4,
    ) -> None:
        if not device:
            raise AgentError("device name must be non-empty")
        if batch_size < 1:
            raise AgentError(f"batch_size must be >= 1, got {batch_size}")
        if downsample_factor < 1:
            raise AgentError(
                f"downsample_factor must be >= 1, got {downsample_factor}"
            )
        if backlog_batches < 0:
            raise AgentError(
                f"backlog_batches must be >= 0, got {backlog_batches}"
            )
        self.device = device
        self.transport = transport
        self.batch_size = int(batch_size)
        self.tenant = tenant
        #: when a batch is refused, keep every Nth record of it
        self.downsample_factor = int(downsample_factor)
        #: backlog capacity in units of ``batch_size`` records
        self.backlog_limit = int(backlog_batches) * self.batch_size
        self._buffer: list[AccessRecord] = []
        #: down-sampled survivors of refused batches, oldest first
        self._backlog: list[AccessRecord] = []
        #: optional :class:`~repro.observability.provenance.CausalContext`;
        #: when attached, every batch is stamped with a trace id at
        #: emission and refused batches resolve as ``shed-backpressure``
        self.causal = None
        #: batch id of the refused batch whose survivors ride next -- the
        #: parent link that keeps coalesced telemetry attributable
        self._backlog_parent: str | None = None
        self.observed = 0
        #: records dropped after a refusal (not even kept down-sampled)
        self.shed_records = 0
        #: records preserved through down-sampling after a refusal
        self.coalesced_records = 0
        #: flush attempts the transport refused
        self.sends_rejected = 0
        metrics = get_observability().metrics
        self._m_observed = metrics.counter(
            "repro_agents_accesses_observed_total",
            "accesses seen by the monitoring agents",
        )
        self._m_batches_sent = metrics.counter(
            "repro_agents_telemetry_batches_sent_total",
            "telemetry batches sent toward the Interface Daemon",
        )
        self._m_shed = metrics.counter(
            "repro_agents_telemetry_records_shed_total",
            "records dropped at the sender after transport backpressure",
        )
        self._m_coalesced = metrics.counter(
            "repro_agents_telemetry_records_coalesced_total",
            "records preserved by down-sampling after transport backpressure",
        )

    def observe(self, record: AccessRecord) -> None:
        """Record one access on this agent's device.

        Auto-flushes a full batch ("Geomancy captures groups of accesses as
        one access to lower the overhead").
        """
        if record.device != self.device:
            raise AgentError(
                f"agent for {self.device!r} observed access on "
                f"{record.device!r}"
            )
        self._buffer.append(record)
        self.observed += 1
        self._m_observed.inc()
        if len(self._buffer) >= self.batch_size:
            self.flush(at=record.close_time)

    def observe_many(self, records: list[AccessRecord]) -> None:
        """Record a chunk of accesses on this agent's device.

        Equivalent to calling :meth:`observe` once per record -- the same
        batch boundaries fire at the same records with the same ``at``
        timestamps -- but appends chunk-wise instead of paying the
        per-record call overhead.
        """
        n = len(records)
        i = 0
        buffer = self._buffer
        batch_size = self.batch_size
        while i < n:
            take = min(batch_size - len(buffer), n - i)
            chunk = records[i : i + take]
            for record in chunk:
                if record.device != self.device:
                    raise AgentError(
                        f"agent for {self.device!r} observed access on "
                        f"{record.device!r}"
                    )
            buffer.extend(chunk)
            i += take
            if len(buffer) >= batch_size:
                self.flush(at=buffer[-1].close_time)
        self.observed += n
        self._m_observed.inc(n)

    def flush(self, at: float) -> bool:
        """Send any buffered records; returns whether a batch was sent.

        A refused send (transport backpressure) down-samples the batch
        into the bounded backlog instead of losing it outright; the
        survivors ride along with the next flush.
        """
        if not self._buffer and not self._backlog:
            return False
        records = self._backlog + self._buffer
        self._backlog = []
        self._buffer.clear()
        trace_id = None
        if self.causal is not None:
            trace_id = self.causal.stamp_batch(
                self.device, self.tenant, len(records), at,
                parent=self._backlog_parent,
            )
            self._backlog_parent = None
        batch = TelemetryBatch(
            device=self.device, records=tuple(records), sent_at=at,
            tenant=self.tenant, trace_id=trace_id,
        )
        if self.transport.send(batch) is False:
            self.sends_rejected += 1
            self._shed(records)
            if self.causal is not None:
                self.causal.resolve(trace_id, "shed-backpressure")
                if self._backlog:
                    self._backlog_parent = trace_id
            return False
        self._m_batches_sent.inc()
        return True

    def _shed(self, records: list[AccessRecord]) -> None:
        """Coalesce a refused batch into the bounded backlog."""
        kept = records[:: self.downsample_factor]
        if len(kept) > self.backlog_limit:
            # Keep the most recent survivors; telemetry value decays.
            kept = kept[len(kept) - self.backlog_limit:]
        self._backlog = kept
        shed = len(records) - len(kept)
        self.shed_records += shed
        self.coalesced_records += len(kept)
        self._m_shed.inc(shed)
        self._m_coalesced.inc(len(kept))

    @property
    def buffered(self) -> int:
        return len(self._buffer) + len(self._backlog)
