"""Bounded dead-letter storage for the Interface Daemon.

Malformed or rejected telemetry used to be counted and discarded; under
overload that throws away the very evidence needed to debug the flood.
The :class:`DeadLetterStore` keeps the most recent dead letters in a
bounded ring -- oldest evicted first, so the store itself can never
become the memory leak it exists to prevent -- and can persist them as
JSONL so ``repro deadletters`` can inspect and requeue them after the
run that shed them has exited.

Telemetry batches are stored with their full record payload, so a
requeue reconstructs real :class:`~repro.agents.messages.TelemetryBatch`
messages and replays them through the normal ingestion path.  Foreign or
corrupt messages keep only a ``repr`` -- there is nothing to replay.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.agents.messages import TelemetryBatch
from repro.errors import AgentError
from repro.replaydb.records import AccessRecord

_RECORD_FIELDS = (
    "fid", "fsid", "device", "path", "rb", "wb", "ots", "otms", "cts", "ctms",
)


def _record_to_dict(record: AccessRecord) -> dict:
    raw = {name: getattr(record, name) for name in _RECORD_FIELDS}
    if record.extra:
        raw["extra"] = dict(record.extra)
    return raw


def _record_from_dict(raw: dict) -> AccessRecord:
    return AccessRecord(
        fid=int(raw["fid"]), fsid=int(raw["fsid"]),
        device=str(raw["device"]), path=str(raw["path"]),
        rb=int(raw["rb"]), wb=int(raw["wb"]),
        ots=int(raw["ots"]), otms=int(raw["otms"]),
        cts=int(raw["cts"]), ctms=int(raw["ctms"]),
        extra=dict(raw.get("extra", {})),
    )


@dataclass
class DeadLetter:
    """One dead-lettered message with enough context to triage it."""

    reason: str
    kind: str
    at: float
    #: reconstructable telemetry payload, or None for foreign messages
    payload: dict | None = None
    requeued: bool = False
    summary: str = ""
    #: causal trace id of the dead-lettered message (None on a legacy
    #: plane) -- joins ``repro deadletters`` output with ``repro explain``
    trace_id: str | None = None

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "kind": self.kind,
            "at": self.at,
            "payload": self.payload,
            "requeued": self.requeued,
            "summary": self.summary,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DeadLetter":
        return cls(
            reason=str(raw["reason"]),
            kind=str(raw["kind"]),
            at=float(raw["at"]),
            payload=raw.get("payload"),
            requeued=bool(raw.get("requeued", False)),
            summary=str(raw.get("summary", "")),
            trace_id=raw.get("trace_id"),
        )

    def to_batch(self) -> TelemetryBatch:
        """Reconstruct the telemetry batch this letter preserved."""
        if self.payload is None:
            raise AgentError(
                f"dead letter ({self.reason}) carries no replayable payload"
            )
        return TelemetryBatch(
            device=str(self.payload["device"]),
            records=tuple(
                _record_from_dict(r) for r in self.payload["records"]
            ),
            sent_at=float(self.payload["sent_at"]),
            tenant=str(self.payload.get("tenant", "default")),
            trace_id=self.trace_id,
        )


class DeadLetterStore:
    """Bounded ring of recent dead letters with optional JSONL persistence."""

    def __init__(
        self, capacity: int = 256, *, path: str | Path | None = None
    ) -> None:
        if capacity < 1:
            raise AgentError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.path = Path(path) if path is not None else None
        self._ring: deque[DeadLetter] = deque(maxlen=self.capacity)
        #: dead letters seen in total, including ones the ring evicted
        self.total = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._ring)

    def add(self, reason: str, message, at: float) -> DeadLetter:
        """Record one dead-lettered message; returns the stored entry."""
        payload = None
        summary = repr(message)[:120]
        if isinstance(message, TelemetryBatch):
            payload = {
                "device": message.device,
                "tenant": message.tenant,
                "sent_at": message.sent_at,
                "records": [_record_to_dict(r) for r in message.records],
            }
            summary = (
                f"{len(message.records)} records from {message.device!r} "
                f"(tenant {message.tenant!r})"
            )
        letter = DeadLetter(
            reason=reason, kind=type(message).__name__, at=float(at),
            payload=payload, summary=summary,
            trace_id=getattr(message, "trace_id", None),
        )
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(letter)
        self.total += 1
        if self.path is not None:
            self.save(self.path)
        return letter

    def entries(self) -> list[DeadLetter]:
        return list(self._ring)

    def replayable(self) -> list[DeadLetter]:
        """Entries carrying a telemetry payload and not yet requeued."""
        return [
            letter for letter in self._ring
            if letter.payload is not None and not letter.requeued
        ]

    def requeue_into(self, transport) -> int:
        """Re-send every replayable letter; returns batches requeued.

        Letters the transport refuses (a bounded queue under pressure)
        stay un-requeued so a later attempt can retry them.
        """
        requeued = 0
        for letter in self.replayable():
            if transport.send(letter.to_batch()) is not False:
                letter.requeued = True
                requeued += 1
        if requeued and self.path is not None:
            self.save(self.path)
        return requeued

    # -- persistence -----------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the ring (oldest first) as one JSON object per line."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "capacity": self.capacity, "total": self.total,
            "evicted": self.evicted,
        }
        lines = [json.dumps(header)]
        lines.extend(json.dumps(letter.to_dict()) for letter in self._ring)
        path.write_text("\n".join(lines) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "DeadLetterStore":
        path = Path(path)
        if not path.exists():
            raise AgentError(f"no dead-letter store at {path}")
        lines = [
            line for line in path.read_text().splitlines() if line.strip()
        ]
        if not lines:
            raise AgentError(f"dead-letter store at {path} is empty")
        header = json.loads(lines[0])
        store = cls(capacity=int(header["capacity"]), path=path)
        for line in lines[1:]:
            store._ring.append(DeadLetter.from_dict(json.loads(line)))
        store.total = int(header.get("total", len(store._ring)))
        store.evicted = int(header.get("evicted", 0))
        return store
