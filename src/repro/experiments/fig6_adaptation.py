"""Fig. 6: Geomancy adapting after a competing workload appears.

Experiment 3 of the paper: a Geomancy-tuned workload runs alone, then "a
duplicate workload (not tuned by Geomancy) accessing a different set of
data" starts on the same mounts.  "Although the original performance drops,
Geomancy is able to respond to the changes and attempt to push performance
back to what it once was."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.harness import make_experiment_config
from repro.experiments.reporting import bucket_series, sparkline
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.policies.geomancy_policy import GeomancyDynamicPolicy
from repro.replaydb.db import ReplayDB
from repro.simulation.bluesky import make_bluesky_cluster
from repro.simulation.clock import SimulationClock
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import belle2_file_population
from repro.workloads.interference import make_competing_workload
from repro.workloads.runner import WorkloadRunner


@dataclass
class Fig6Result:
    """Per-access series for the tuned and competing workloads."""

    tuned_gbps: list[float] = field(default_factory=list)
    competing_gbps: list[float] = field(default_factory=list)
    #: tuned-workload access number at which the competitor started
    disturbance_access: int = 0

    def tuned_before(self) -> np.ndarray:
        return np.asarray(self.tuned_gbps[: self.disturbance_access])

    def tuned_after(self) -> np.ndarray:
        return np.asarray(self.tuned_gbps[self.disturbance_access :])

    def recovery_ratio(self, *, tail_fraction: float = 0.3) -> float:
        """Late post-disturbance throughput relative to pre-disturbance.

        1.0 means fully recovered; the immediate post-disturbance dip is
        excluded by looking only at the final ``tail_fraction`` of the
        post-disturbance series.
        """
        before = self.tuned_before()
        after = self.tuned_after()
        if before.size == 0 or after.size == 0:
            raise ExperimentError("need accesses on both sides of the disturbance")
        tail = after[int(len(after) * (1.0 - tail_fraction)) :]
        return float(tail.mean() / before.mean())

    def dip_ratio(self, *, head_fraction: float = 0.2) -> float:
        """Immediate post-disturbance throughput relative to before."""
        before = self.tuned_before()
        after = self.tuned_after()
        if before.size == 0 or after.size == 0:
            raise ExperimentError("need accesses on both sides of the disturbance")
        head = after[: max(1, int(len(after) * head_fraction))]
        return float(head.mean() / before.mean())

    def recovery_accesses(
        self, *, threshold: float = 0.9, window: int = 200
    ) -> int | None:
        """Accesses after the disturbance until throughput recovers.

        Recovery is the first post-disturbance access whose trailing
        ``window``-access mean reaches ``threshold`` of the
        pre-disturbance mean; ``None`` if the series never gets there.
        This is the "how fast did it adapt" companion to the "how far
        did it get back" :meth:`recovery_ratio`.
        """
        before = self.tuned_before()
        after = self.tuned_after()
        if before.size == 0 or after.size == 0:
            raise ExperimentError("need accesses on both sides of the disturbance")
        target = threshold * before.mean()
        window = min(window, after.size)
        rolling = np.convolve(after, np.ones(window) / window, mode="valid")
        hits = np.nonzero(rolling >= target)[0]
        if hits.size == 0:
            return None
        return int(hits[0]) + window

    def to_text(self, *, bucket: int = 500) -> str:
        _, tuned = bucket_series(self.tuned_gbps, bucket)
        _, competing = bucket_series(self.competing_gbps, bucket)
        lines = [
            "Fig. 6 -- response to a competing workload",
            f"tuned workload    : {sparkline(tuned)}",
            f"competing workload: {sparkline(competing)}",
            f"disturbance at tuned access #{self.disturbance_access}",
            f"dip ratio {self.dip_ratio():.2f}, "
            f"recovery ratio {self.recovery_ratio():.2f}",
        ]
        recovery = self.recovery_accesses()
        lines.append(
            "recovered to 90% of pre-disturbance throughput after "
            + (f"{recovery} accesses" if recovery is not None else "(never)")
        )
        return "\n".join(lines)


def run_fig6(
    *,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 0,
    runs_before: int | None = None,
    runs_after: int | None = None,
    online: bool = False,
) -> Fig6Result:
    """Regenerate Fig. 6.

    Phase 1: the tuned workload runs alone for ``runs_before`` runs with
    Geomancy relayouts.  Phase 2: the duplicate untuned workload joins on
    the same cluster (shared clock, shared device contention) for
    ``runs_after`` interleaved runs; Geomancy keeps tuning only the
    original workload.

    ``online=True`` drives every relayout through the continual-learning
    engine (``train_incremental`` + prioritized replay + drift detection)
    instead of from-scratch retraining.
    """
    if runs_before is None:
        runs_before = max(scale.runs // 2, scale.update_every)
    if runs_after is None:
        runs_after = scale.runs
    cluster = make_bluesky_cluster(seed=seed)
    clock = SimulationClock()
    files = belle2_file_population(seed=seed)
    db = ReplayDB()
    runner = WorkloadRunner(
        cluster, Belle2Workload(files, seed=1), db, clock=clock
    )
    device_by_fsid = {
        cluster.device(name).fsid: name for name in cluster.device_names
    }
    policy = GeomancyDynamicPolicy(
        device_by_fsid,
        make_experiment_config(scale, seed=seed, online_learning=online),
    )
    runner.ensure_files_placed(
        policy.initial_layout(files, cluster.device_names)
    )
    runner.warm_up(scale.warmup_accesses)

    result = Fig6Result()
    run_number = 0

    def tuned_step() -> None:
        nonlocal run_number
        run = runner.run_once()
        result.tuned_gbps.extend(r.throughput_gbps for r in run.records)
        run_number += 1
        if run_number % scale.update_every == 0:
            current = {
                fid: device
                for fid, device in cluster.layout().items()
                if fid in {f.fid for f in files}
            }
            layout = policy.update_layout(
                db, files, cluster.device_names, current
            )
            if layout:
                cluster.apply_layout(layout, clock.now)

    # Phase 1: alone.
    for _ in range(runs_before):
        tuned_step()
    result.disturbance_access = len(result.tuned_gbps)

    # Phase 2: the duplicate workload joins, untouched by Geomancy.  Its
    # files mirror the tuned workload's current placement so the two
    # "access common mounts" (section VI-c) and genuinely contend; the
    # duplicate never moves afterwards.
    dup_files, dup_workload = make_competing_workload(seed=seed + 99)
    # The duplicate gets its own clock seeded to "now": both workloads then
    # issue accesses at overlapping simulated timestamps, which is what
    # makes them contend inside the devices' utilization windows.  (On a
    # shared clock the accesses would serialize and never overlap.)
    dup_runner = WorkloadRunner(
        cluster, dup_workload, ReplayDB(), clock=SimulationClock(clock.now)
    )
    tuned_layout = cluster.layout()
    offset = dup_files[0].fid - files[0].fid
    mirror = {
        dup.fid: tuned_layout.get(
            dup.fid - offset,
            cluster.device_names[dup.fid % len(cluster.device_names)],
        )
        for dup in dup_files
    }
    dup_runner.ensure_files_placed(mirror)
    # Interleave the two workloads access-by-access so they genuinely
    # contend inside each device's utilization window.
    def interleaved_tuned_run() -> None:
        nonlocal run_number
        tuned_stream = runner.run_stream()
        dup_stream = dup_runner.run_stream()
        while True:
            progressed = False
            record = next(tuned_stream, None)
            if record is not None:
                result.tuned_gbps.append(record.throughput_gbps)
                progressed = True
            dup_record = next(dup_stream, None)
            if dup_record is not None:
                result.competing_gbps.append(dup_record.throughput_gbps)
                progressed = True
            if not progressed:
                break
        run_number += 1
        if run_number % scale.update_every == 0:
            current = {
                fid: device
                for fid, device in cluster.layout().items()
                if fid in {f.fid for f in files}
            }
            layout = policy.update_layout(
                db, files, cluster.device_names, current
            )
            if layout:
                cluster.apply_layout(layout, clock.now)

    for _ in range(runs_after):
        interleaved_tuned_run()
    return result
