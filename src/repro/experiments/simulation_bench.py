"""Simulation fast-path benchmark: batched access pipeline vs. its oracle.

The batched pipeline (``Belle2Workload.run_arrays`` ->
``StorageCluster.access_batch`` -> ``StorageDevice.serve_batch`` -> one
``ReplayDB.insert_accesses`` per run) promises bit-for-bit the results of
the scalar reference loop, only faster.  This module measures both claims
on the drivers that matter -- a raw workload-runner loop and the Fig. 5a /
Fig. 5b policy-experiment loops -- by running scalar and batched twins of
each driver from identical seeds, asserting their outputs are *exactly*
equal (records, layouts, movements, device statistics, clock), and timing
each path end to end.  The result serializes to ``BENCH_simulation.json``
so successive PRs accumulate a perf trajectory next to the decision-epoch
benchmark.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, astuple, dataclass, field
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.harness import PolicyRunResult, run_policy_experiment
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.policies.lru import LRUPolicy
from repro.policies.static import EvenSpreadPolicy
from repro.replaydb.db import ReplayDB
from repro.simulation.bluesky import make_bluesky_cluster
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import belle2_file_population
from repro.workloads.runner import WorkloadRunner


@dataclass
class SimulationCell:
    """Batched-vs-reference measurement for one driver loop."""

    name: str
    #: accesses the driver serves per invocation
    accesses: int
    batched_ms: float
    reference_ms: float
    #: outputs bit-for-bit equal between the two paths
    identical: bool
    #: raw wall-clock samples (seconds) behind the best-of numbers
    batched_samples_s: list[float] = field(default_factory=list)
    reference_samples_s: list[float] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.batched_ms <= 0:
            raise ExperimentError("batched path measured non-positive time")
        return self.reference_ms / self.batched_ms


@dataclass
class SimulationBenchResult:
    """Everything the simulation benchmark measures."""

    cells: list[SimulationCell]

    @property
    def overall_speedup(self) -> float:
        """Aggregate speedup: total reference time / total batched time.

        The headline number -- what one sweep across every benchmarked
        driver loop costs on each path.
        """
        if not self.cells:
            raise ExperimentError("no simulation cells were measured")
        batched = sum(cell.batched_ms for cell in self.cells)
        if batched <= 0:
            raise ExperimentError("batched path measured non-positive time")
        return sum(cell.reference_ms for cell in self.cells) / batched

    @property
    def min_speedup(self) -> float:
        if not self.cells:
            raise ExperimentError("no simulation cells were measured")
        return min(cell.speedup for cell in self.cells)

    @property
    def all_identical(self) -> bool:
        return all(cell.identical for cell in self.cells)

    def to_json(self) -> dict:
        return {
            "benchmark": "simulation-pipeline",
            "overall_speedup": self.overall_speedup,
            "all_identical": self.all_identical,
            "cells": [
                {**asdict(cell), "speedup": cell.speedup}
                for cell in self.cells
            ],
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def to_text(self) -> str:
        rows = [
            (
                cell.name,
                cell.accesses,
                f"{cell.batched_ms:.1f}",
                f"{cell.reference_ms:.1f}",
                f"{cell.speedup:.1f}x",
                "yes" if cell.identical else "NO",
            )
            for cell in self.cells
        ]
        table = ascii_table(
            ["driver", "accesses", "batched ms", "scalar ms", "speedup",
             "bit-identical"],
            rows,
            title="Simulation fast-path benchmark (batched vs. scalar)",
        )
        table += f"\noverall speedup: {self.overall_speedup:.1f}x"
        return table


def _policy_fingerprint(result: PolicyRunResult) -> tuple:
    """Everything a Fig. 5 cell reports, hashable and exactly comparable."""
    return (
        tuple(result.throughput_gbps),
        tuple(result.movements),
        tuple(sorted(result.usage_percent.items())),
        tuple(sorted(result.device_throughput.items())),
    )


def _runner_trial(*, runs: int, seed: int, batched: bool) -> tuple:
    """Drive a bare workload runner; returns (runner, cluster, results)."""
    cluster = make_bluesky_cluster(seed=seed)
    files = belle2_file_population(seed=seed)
    runner = WorkloadRunner(
        cluster, Belle2Workload(files, seed=seed + 1), ReplayDB(),
        batched=batched,
    )
    devices = cluster.device_names
    runner.ensure_files_placed(
        {spec.fid: devices[i % len(devices)] for i, spec in enumerate(files)}
    )
    results = runner.run_many(runs)
    return runner, cluster, results


def _runner_fingerprint(trial_out: tuple) -> tuple:
    """Reduce a runner trial to an exactly-comparable state fingerprint."""
    runner, cluster, results = trial_out
    records = tuple(
        astuple(record) for result in results for record in result.records
    )
    stats = tuple(
        (
            name,
            cluster.device(name).stats.accesses,
            cluster.device(name).stats.bytes_served,
            cluster.device(name).stats.busy_time,
            tuple(cluster.device(name).stats.throughput_samples),
        )
        for name in cluster.device_names
    )
    return (records, runner.clock.now, runner.db.access_count(), stats)


def _time_trials(fn, *, repeats: int) -> tuple[float, list[float]]:
    """Best-of-``repeats`` milliseconds plus the raw samples (seconds)."""
    samples: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples) * 1000.0, samples


def _measure_cell(
    name: str, trial, *, fingerprint, repeats: int
) -> SimulationCell:
    """Equivalence-check then time one driver on both paths.

    ``trial(batched)`` runs the driver end to end (environment
    construction included -- that is what the experiment pays) and
    returns its output; ``fingerprint`` reduces that output to an
    exactly-comparable value and the served access count.
    """
    fp_batched, accesses = fingerprint(trial(True))
    fp_reference, _ = fingerprint(trial(False))
    batched_ms, batched_samples = _time_trials(
        lambda: trial(True), repeats=repeats
    )
    reference_ms, reference_samples = _time_trials(
        lambda: trial(False), repeats=repeats
    )
    return SimulationCell(
        name=name,
        accesses=accesses,
        batched_ms=batched_ms,
        reference_ms=reference_ms,
        identical=fp_batched == fp_reference,
        batched_samples_s=batched_samples,
        reference_samples_s=reference_samples,
    )


def run_simulation_benchmark(
    *,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 0,
    runner_runs: int = 40,
    repeats: int = 3,
) -> SimulationBenchResult:
    """Time the batched access pipeline against its scalar oracle.

    Three driver loops: a bare workload runner (pure simulation), and the
    Fig. 5a / Fig. 5b policy-experiment loops with their cheapest
    policies (LRU, even spread) so the measurement is dominated by the
    simulation rather than by model training that is identical on both
    paths.  Every cell first verifies the two paths produce bit-for-bit
    identical outputs on the exact benchmark inputs.
    """
    if runner_runs < 1:
        raise ExperimentError(f"runner_runs must be >= 1, got {runner_runs}")
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    cells = [
        _measure_cell(
            "workload-runner",
            lambda batched: _runner_trial(
                runs=runner_runs, seed=seed, batched=batched
            ),
            fingerprint=lambda out: (
                _runner_fingerprint(out), out[0].total_accesses
            ),
            repeats=repeats,
        ),
        _measure_cell(
            "fig5a-lru",
            lambda batched: run_policy_experiment(
                LRUPolicy(), scale=scale, seed=seed, batched=batched
            ),
            fingerprint=lambda result: (
                _policy_fingerprint(result), result.access_count
            ),
            repeats=repeats,
        ),
        _measure_cell(
            "fig5b-even-spread",
            lambda batched: run_policy_experiment(
                EvenSpreadPolicy(), scale=scale, seed=seed, batched=batched
            ),
            fingerprint=lambda result: (
                _policy_fingerprint(result), result.access_count
            ),
            repeats=repeats,
        ),
    ]
    return SimulationBenchResult(cells=cells)
