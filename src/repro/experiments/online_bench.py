"""Online-learning benchmark: decision-epoch cost vs. ReplayDB growth.

The continual-learning engine exists so the per-decision training cost
stops tracking the size of the telemetry history.  This module measures
exactly that: one synthetic telemetry population grows through a series
of checkpoints, and at each checkpoint we time a full decision epoch
(train + ``propose_layout``) twice --

* **online**: ``train_incremental`` over the rows that arrived since the
  last decision, plus a prioritized-replay sample (bounded work);
* **from-scratch**: a fresh engine retrained on the entire history
  (work that grows with the table).

Because the synthetic population carries a known location signal
(location ``k`` sustains about ``k * 50 MB/s``), each proposal also gets
a ground-truth quality score, so the benchmark verifies the flat-cost
path does not trade away layout quality.  A pinned-seed oracle check
confirms the first incremental epoch is bit-for-bit the from-scratch
epoch.  The result serializes to ``BENCH_online.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine
from repro.errors import ExperimentError
from repro.experiments.decision_bench import synthetic_decision_records
from repro.experiments.reporting import ascii_table
from repro.nn.serialization import _weight_arrays
from repro.replaydb.db import ReplayDB


@dataclass
class OnlineCheckpointCell:
    """Timed decision epoch, both paths, at one history size."""

    db_rows: int
    online_ms: float
    scratch_ms: float
    online_quality: float
    scratch_quality: float
    online_new_rows: int
    online_replayed_rows: int

    @property
    def speedup(self) -> float:
        if self.online_ms <= 0:
            raise ExperimentError("online path measured non-positive time")
        return self.scratch_ms / self.online_ms


@dataclass
class OracleCheck:
    """First incremental epoch vs. from-scratch epoch, pinned seed."""

    mare_equal: bool
    weights_equal: bool
    layouts_equal: bool

    @property
    def equivalent(self) -> bool:
        return self.mare_equal and self.weights_equal and self.layouts_equal


@dataclass
class OnlineBenchResult:
    """Everything the online-learning benchmark measures."""

    cells: list[OnlineCheckpointCell]
    oracle: OracleCheck
    epochs_per_checkpoint: int = 3
    burst_rows: int = 512

    @property
    def online_growth(self) -> float:
        """Largest-history online epoch time over smallest-history time."""
        if not self.cells:
            raise ExperimentError("no checkpoints were measured")
        first = self.cells[0].online_ms
        if first <= 0:
            raise ExperimentError("online path measured non-positive time")
        return self.cells[-1].online_ms / first

    @property
    def scratch_growth(self) -> float:
        if not self.cells:
            raise ExperimentError("no checkpoints were measured")
        first = self.cells[0].scratch_ms
        if first <= 0:
            raise ExperimentError("scratch path measured non-positive time")
        return self.cells[-1].scratch_ms / first

    def to_json(self) -> dict:
        return {
            "benchmark": "online-epoch",
            "online_growth": self.online_growth,
            "scratch_growth": self.scratch_growth,
            "oracle_equivalent": self.oracle.equivalent,
            "epochs_per_checkpoint": self.epochs_per_checkpoint,
            "burst_rows": self.burst_rows,
            "oracle": asdict(self.oracle),
            "cells": [
                {**asdict(cell), "speedup": cell.speedup}
                for cell in self.cells
            ],
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def to_text(self) -> str:
        rows = [
            (
                cell.db_rows,
                f"{cell.online_ms:.1f}",
                f"{cell.scratch_ms:.1f}",
                f"{cell.speedup:.1f}x",
                f"{cell.online_quality:.3f}",
                f"{cell.scratch_quality:.3f}",
            )
            for cell in self.cells
        ]
        table = ascii_table(
            ["db rows", "online ms", "scratch ms", "speedup",
             "online quality", "scratch quality"],
            rows,
            title="Online decision-epoch benchmark "
                  "(train + propose_layout per history size)",
        )
        table += (
            f"\nonline epoch growth {self.online_growth:.2f}x, "
            f"from-scratch growth {self.scratch_growth:.2f}x, "
            f"oracle equivalent: "
            + ("yes" if self.oracle.equivalent else "NO")
        )
        return table


def _layout_quality(
    layout: dict[int, str], *, locations: int
) -> float:
    """Ground-truth quality of a proposal on the synthetic population.

    Location ``k`` sustains ``k * 50 MB/s``, so the expected throughput
    of an assignment is proportional to its fsid; 1.0 means every file
    landed on the fastest location.
    """
    if not layout:
        raise ExperimentError("proposal assigned no files")
    fsids = [int(device.removeprefix("dev")) for device in layout.values()]
    return float(np.mean(fsids) / locations)


def _online_config(*, seed: int, burst_rows: int) -> GeomancyConfig:
    return GeomancyConfig(
        model_number=1,
        epochs=10,
        training_rows=1000,
        batch_size=32,
        smoothing_window=5,
        learning_rate=0.05,
        seed=seed,
        probe_samples=8,
        online_learning=True,
        online_epochs=8,
        online_max_new_rows=burst_rows,
        replay_sample_rows=256,
    )


def run_oracle_check(*, seed: int = 0, rows: int = 1000) -> OracleCheck:
    """Pinned-seed equivalence of the first incremental epoch.

    ``train_incremental`` on a fresh engine must delegate to ``train``:
    identical report error, identical weights, identical proposal.
    """
    records = synthetic_decision_records(rows=rows, seed=seed)
    config = _online_config(seed=seed + 1, burst_rows=512)
    db = ReplayDB()
    db.insert_accesses(records)
    scratch, online = DRLEngine(config), DRLEngine(config)
    report_a = scratch.train(db)
    report_b = online.train_incremental(db)
    fids = db.files()
    device_by_fsid = {k: f"dev{k}" for k in range(1, 7)}
    layout_a, _ = scratch.propose_layout(db, fids, device_by_fsid)
    layout_b, _ = online.propose_layout(db, fids, device_by_fsid)
    weights_a = _weight_arrays(scratch.model)
    weights_b = _weight_arrays(online.model)
    return OracleCheck(
        mare_equal=report_a.test_mare == report_b.test_mare,
        weights_equal=(
            weights_a.keys() == weights_b.keys()
            and all(
                np.array_equal(weights_a[k], weights_b[k])
                for k in weights_a
            )
        ),
        layouts_equal=layout_a == layout_b,
    )


def run_online_benchmark(
    *,
    checkpoints: tuple[int, ...] = (1_000, 10_000, 30_000, 100_000),
    files: int = 64,
    locations: int = 6,
    seed: int = 0,
    epochs_per_checkpoint: int = 3,
    burst_rows: int = 512,
) -> OnlineBenchResult:
    """Time online vs. from-scratch decision epochs as the DB grows.

    One ReplayDB accumulates the synthetic population through
    ``checkpoints``.  At each checkpoint the *same* online engine takes
    ``epochs_per_checkpoint`` timed decision epochs (each preceded by a
    ``burst_rows`` telemetry burst; the median is reported), then a
    fresh engine is retrained from scratch on the full history and timed
    once.  Both paths end in ``propose_layout``, so each cell is the
    complete decision-point cost at that history size.
    """
    if len(checkpoints) < 2:
        raise ExperimentError("need at least two checkpoints to compare")
    if sorted(checkpoints) != list(checkpoints):
        raise ExperimentError("checkpoints must be ascending")
    total = checkpoints[-1] + epochs_per_checkpoint * burst_rows
    records = synthetic_decision_records(
        rows=total, files=files, locations=locations, seed=seed
    )
    device_by_fsid = {k: f"dev{k}" for k in range(1, locations + 1)}
    config = _online_config(seed=seed + 1, burst_rows=burst_rows)

    db = ReplayDB()
    cursor = 0

    def insert_up_to(target: int) -> None:
        nonlocal cursor
        if target > cursor:
            db.insert_accesses(records[cursor:target])
            cursor = target

    # Bootstrap: the online engine's base epoch is from-scratch by
    # design and is not what this benchmark gates.
    insert_up_to(min(1_000, checkpoints[0]))
    online = DRLEngine(config)
    online.train_incremental(db)

    cells = []
    for checkpoint in checkpoints:
        insert_up_to(checkpoint)
        timings, layout = [], {}
        last_report = None
        for _ in range(epochs_per_checkpoint):
            insert_up_to(cursor + burst_rows)
            fids = db.files()
            start = time.perf_counter()
            last_report = online.train_incremental(db)
            layout, _ = online.propose_layout(db, fids, device_by_fsid)
            timings.append((time.perf_counter() - start) * 1000.0)
        online_ms = float(np.median(timings))
        online_quality = _layout_quality(layout, locations=locations)

        db_rows = db.access_count()
        scratch = DRLEngine(
            GeomancyConfig(
                model_number=1,
                epochs=10,
                training_rows=db_rows,
                batch_size=32,
                smoothing_window=5,
                learning_rate=0.05,
                seed=seed + 1,
                probe_samples=8,
            )
        )
        fids = db.files()
        start = time.perf_counter()
        scratch.train(db)
        scratch_layout, _ = scratch.propose_layout(db, fids, device_by_fsid)
        scratch_ms = (time.perf_counter() - start) * 1000.0
        cells.append(
            OnlineCheckpointCell(
                db_rows=db_rows,
                online_ms=online_ms,
                scratch_ms=scratch_ms,
                online_quality=online_quality,
                scratch_quality=_layout_quality(
                    scratch_layout, locations=locations
                ),
                online_new_rows=last_report.new_rows,
                online_replayed_rows=last_report.replayed_rows,
            )
        )
    return OnlineBenchResult(
        cells=cells,
        oracle=run_oracle_check(seed=seed),
        epochs_per_checkpoint=epochs_per_checkpoint,
        burst_rows=burst_rows,
    )
