"""Experiment scale presets.

The paper's live experiment spans 9,000-16,000 accesses with Geomancy
consulted every 5 runs and 12,000-row / 200-epoch trainings.  Simulating
that inside unit tests would dominate the suite, so each experiment accepts
an :class:`ExperimentScale`:

* ``TEST_SCALE`` -- seconds: enough signal for shape assertions.
* ``BENCH_SCALE`` -- the default for the benchmark harness: minutes, close
  enough to paper scale that every reported trend is measured, not assumed.
* ``PAPER_SCALE`` -- the paper's actual parameters, for offline runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing for a policy-comparison experiment."""

    name: str
    #: accesses collected before the measured phase starts
    warmup_accesses: int
    #: measured workload runs
    runs: int
    #: dynamic policies are consulted every this many runs
    update_every: int
    #: engine training window (rows) and epochs
    training_rows: int
    epochs: int
    #: trace length for Fig. 4 / Table II style dataset experiments
    trace_rows: int

    def __post_init__(self) -> None:
        if self.warmup_accesses < 1:
            raise ConfigurationError("warmup_accesses must be >= 1")
        if self.runs < 1:
            raise ConfigurationError("runs must be >= 1")
        if self.update_every < 1:
            raise ConfigurationError("update_every must be >= 1")
        if self.training_rows < 10:
            raise ConfigurationError("training_rows must be >= 10")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.trace_rows < 100:
            raise ConfigurationError("trace_rows must be >= 100")


TEST_SCALE = ExperimentScale(
    name="test",
    warmup_accesses=400,
    runs=20,
    update_every=5,
    training_rows=600,
    epochs=8,
    trace_rows=2_000,
)

BENCH_SCALE = ExperimentScale(
    name="bench",
    warmup_accesses=2_500,
    runs=100,
    update_every=5,
    training_rows=4_000,
    epochs=60,
    trace_rows=12_000,
)

PAPER_SCALE = ExperimentScale(
    name="paper",
    warmup_accesses=10_000,
    runs=300,
    update_every=5,
    training_rows=12_000,
    epochs=200,
    trace_rows=12_000,
)
