"""Saturation / soak study: the control plane through and past capacity.

Sweeps offered multi-tenant telemetry load across multiples of the
Interface Daemon's service capacity and compares two control planes fed
the byte-identical flood:

* **unbounded** -- the legacy plane: an unbounded FIFO transport, no
  admission control.  Past capacity its queue grows without limit, and
  layout commands (which share the pipe) wait behind the entire
  telemetry backlog, so decision latency explodes with the overload.
* **bounded** -- the QoS plane: a :class:`BoundedTransport` with
  priority lanes (control > movement > telemetry), a per-tenant
  token-bucket :class:`AdmissionController`, and a dead-letter ring.
  Telemetry is shed by policy, queue depth stays at or below the
  configured capacity, and control traffic keeps near-unsaturated
  latency no matter the overload.

Time is discrete and simulated: each slot the tenant mix offers its
arrivals (timestamps inside the slot), the plane drains up to its
record-service budget, and queue delay is measured as drain time minus
``sent_at`` into fixed-bucket histograms (p50/p99/p999 straight from the
existing metrics machinery).  Everything is a pure function of the seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.agents.daemon import InterfaceDaemon
from repro.agents.deadletter import DeadLetterStore
from repro.agents.messages import LayoutCommand, TelemetryBatch
from repro.agents.qos import AdmissionController
from repro.agents.transport import (
    SHED_POLICIES,
    BoundedTransport,
    InMemoryTransport,
)
from repro.errors import ConfigurationError
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import TEST_SCALE, ExperimentScale
from repro.observability.metrics import Histogram
from repro.replaydb.db import ReplayDB
from repro.workloads.tenants import TenantMix, TenantSpec

#: queue-delay histogram edges (seconds): spans sub-ms immediate drains up
#: to the multi-minute waits an unbounded backlog produces
DELAY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: control plane variants the sweep compares
PLANES = ("unbounded", "bounded")


@dataclass
class SaturationCell:
    """One (plane, offered multiplier) run of the saturation sweep."""

    plane: str
    multiplier: float
    offered_records: int = 0
    offered_batches: int = 0
    delivered_records: int = 0
    #: telemetry shed anywhere: transport eviction/refusal + admission
    shed_records: int = 0
    dead_letters: int = 0
    control_sent: int = 0
    control_delivered: int = 0
    peak_queue_depth: int = 0
    final_queue_depth: int = 0
    telemetry_p50_s: float = 0.0
    telemetry_p99_s: float = 0.0
    telemetry_p999_s: float = 0.0
    control_p50_s: float = 0.0
    control_p99_s: float = 0.0

    @property
    def shed_fraction(self) -> float:
        if self.offered_records == 0:
            return 0.0
        return self.shed_records / self.offered_records

    @property
    def control_delivery_fraction(self) -> float:
        if self.control_sent == 0:
            return 1.0
        return self.control_delivered / self.control_sent

    def to_dict(self) -> dict:
        return {
            "plane": self.plane,
            "multiplier": self.multiplier,
            "offered_records": self.offered_records,
            "offered_batches": self.offered_batches,
            "delivered_records": self.delivered_records,
            "shed_records": self.shed_records,
            "shed_fraction": self.shed_fraction,
            "dead_letters": self.dead_letters,
            "control_sent": self.control_sent,
            "control_delivered": self.control_delivered,
            "control_delivery_fraction": self.control_delivery_fraction,
            "peak_queue_depth": self.peak_queue_depth,
            "final_queue_depth": self.final_queue_depth,
            "telemetry_p50_s": self.telemetry_p50_s,
            "telemetry_p99_s": self.telemetry_p99_s,
            "telemetry_p999_s": self.telemetry_p999_s,
            "control_p50_s": self.control_p50_s,
            "control_p99_s": self.control_p99_s,
        }


@dataclass
class SaturationResult:
    """The full sweep plus the parameters that produced it."""

    seed: int
    service_rate_records_s: float
    capacity: int
    policy: str
    horizon_s: float
    chaos: bool
    cells: list[SaturationCell] = field(default_factory=list)

    def cell(self, plane: str, multiplier: float) -> SaturationCell:
        for cell in self.cells:
            if cell.plane == plane and cell.multiplier == multiplier:
                return cell
        raise ConfigurationError(
            f"no cell for plane={plane!r} multiplier={multiplier}"
        )

    @property
    def multipliers(self) -> list[float]:
        seen: list[float] = []
        for cell in self.cells:
            if cell.multiplier not in seen:
                seen.append(cell.multiplier)
        return seen

    def acceptance(self) -> dict:
        """The graceful-degradation gates the bench suite asserts.

        Compared at the highest >= 2x multiplier against the lowest
        (unsaturated) one:

        * bounded queue depth never exceeds the configured capacity;
        * bounded control delivery stays >= 99%;
        * bounded control p99 stays within 2x of its unsaturated value;
        * the unbounded twin demonstrably degrades (queue depth grows
          past capacity and control latency blows up).
        """
        lo = min(self.multipliers)
        overload = [m for m in self.multipliers if m >= 2.0]
        hi = max(overload) if overload else max(self.multipliers)
        bounded_lo = self.cell("bounded", lo)
        bounded_hi = self.cell("bounded", hi)
        unbounded_hi = self.cell("unbounded", hi)
        # An unsaturated p99 of ~0 would make any ratio infinite; clamp
        # the baseline to one delay-histogram bucket.
        baseline_p99 = max(bounded_lo.control_p99_s, DELAY_BUCKETS[0])
        return {
            "unsaturated_multiplier": lo,
            "overload_multiplier": hi,
            "bounded_depth_within_capacity": (
                bounded_hi.peak_queue_depth <= self.capacity
            ),
            "bounded_control_delivery_ok": (
                bounded_hi.control_delivery_fraction >= 0.99
            ),
            "bounded_control_p99_ratio": (
                max(bounded_hi.control_p99_s, DELAY_BUCKETS[0]) / baseline_p99
            ),
            "bounded_control_p99_ok": (
                max(bounded_hi.control_p99_s, DELAY_BUCKETS[0])
                <= 2.0 * baseline_p99
            ),
            "unbounded_depth_exceeds_capacity": (
                unbounded_hi.peak_queue_depth > self.capacity
            ),
            "unbounded_degrades": (
                unbounded_hi.control_p99_s > 2.0 * baseline_p99
                or unbounded_hi.control_delivery_fraction < 0.99
            ),
        }

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "service_rate_records_s": self.service_rate_records_s,
            "capacity": self.capacity,
            "policy": self.policy,
            "horizon_s": self.horizon_s,
            "chaos": self.chaos,
            "cells": [cell.to_dict() for cell in self.cells],
            "acceptance": self.acceptance(),
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def to_text(self) -> str:
        rows = [
            [
                cell.plane,
                f"{cell.multiplier:.1f}x",
                cell.offered_records,
                cell.delivered_records,
                f"{100 * cell.shed_fraction:.1f}%",
                cell.peak_queue_depth,
                f"{100 * cell.control_delivery_fraction:.1f}%",
                f"{1000 * cell.control_p99_s:.1f}",
                f"{1000 * cell.telemetry_p99_s:.1f}",
                f"{1000 * cell.telemetry_p999_s:.1f}",
            ]
            for cell in self.cells
        ]
        table = ascii_table(
            [
                "plane", "load", "offered", "stored", "shed", "peak q",
                "ctl del", "ctl p99 ms", "tel p99 ms", "tel p999 ms",
            ],
            rows,
            title=(
                f"Saturation sweep -- service {self.service_rate_records_s:.0f}"
                f" rec/s, capacity {self.capacity}, policy {self.policy}, "
                f"horizon {self.horizon_s:.0f}s"
                + (", chaos on" if self.chaos else "")
            ),
        )
        gates = self.acceptance()
        verdict = (
            "graceful degradation: "
            f"bounded depth<=cap {gates['bounded_depth_within_capacity']}, "
            f"ctl delivery>=99% {gates['bounded_control_delivery_ok']}, "
            f"ctl p99 ratio {gates['bounded_control_p99_ratio']:.2f} "
            f"(ok {gates['bounded_control_p99_ok']}); "
            f"unbounded degrades {gates['unbounded_degrades']}"
        )
        return table + "\n" + verdict


def _tenant_mix(
    multiplier: float,
    service_rate: float,
    seed: int,
    slot_s: float,
) -> TenantMix:
    """Three tenants sharing the offered load: two smooth, one bursty."""
    offered = multiplier * service_rate
    return TenantMix(
        [
            TenantSpec("belle2", rate_records_s=0.5 * offered),
            TenantSpec(
                "eos-burst", rate_records_s=0.3 * offered, pattern="bursty",
            ),
            TenantSpec("background", rate_records_s=0.2 * offered),
        ],
        seed=seed,
        slot_s=slot_s,
    )


def _run_cell(
    plane: str,
    multiplier: float,
    *,
    seed: int,
    service_rate: float,
    capacity: int,
    policy: str,
    slots: int,
    slot_s: float,
    control_every: int,
    chaos: bool,
) -> SaturationCell:
    mix = _tenant_mix(multiplier, service_rate, seed, slot_s)
    if plane == "bounded":
        transport = BoundedTransport(
            capacity=capacity, policy=policy, latency_s=0.0
        )
        admission = AdmissionController(
            rate_records_s=service_rate / len(mix.tenants),
            burst_records=max(1, capacity * 32),
        )
    else:
        transport = InMemoryTransport(latency_s=0.0)
        admission = None
    store = DeadLetterStore(capacity=64)
    daemon = InterfaceDaemon(
        ReplayDB(), transport, transport,
        admission=admission, dead_letter_store=store,
    )
    chaos_rng = np.random.default_rng((seed, 977, int(multiplier * 16)))
    tel_hist = Histogram("tel_delay", buckets=DELAY_BUCKETS)
    ctl_hist = Histogram("ctl_delay", buckets=DELAY_BUCKETS)
    cell = SaturationCell(plane=plane, multiplier=multiplier)
    sender_shed = 0
    budget_acc = 0.0
    for slot in range(slots):
        now = (slot + 1) * slot_s
        for batch in mix.batches(slot):
            if chaos:
                draw = chaos_rng.random()
                if draw < 0.02:
                    continue  # the network silently ate the batch
                if draw < 0.03:
                    # Corrupted in flight: arrives as junk the daemon
                    # must dead-letter without stalling the drain.
                    transport.send(f"corrupt<{batch.device}@{batch.sent_at}>")
                    continue
            if transport.send(batch) is False:
                sender_shed += len(batch.records)
        if slot % control_every == 0:
            cell.control_sent += 1
            transport.send(LayoutCommand(layout={}, issued_at=slot * slot_s))
        budget_acc += service_rate * slot_s
        while budget_acc >= 1.0 and transport.pending:
            message = transport.receive()
            if isinstance(message, LayoutCommand):
                ctl_hist.observe(now - message.issued_at)
                cell.control_delivered += 1
                budget_acc -= 1.0
            elif isinstance(message, TelemetryBatch):
                tel_hist.observe(now - message.sent_at)
                daemon.ingest(message, now=now)
                budget_acc -= len(message.records)
            else:
                daemon.ingest(message, now=now)
                budget_acc -= 1.0
    cell.offered_records = mix.offered_records
    cell.offered_batches = mix.offered_batches
    cell.delivered_records = daemon.records_ingested
    if plane == "bounded":
        # Evicted messages (drop-oldest) never reach the daemon, so the
        # component counters undercount; conservation closes the books:
        # everything offered is either stored, still queued, or shed.
        cell.shed_records = (
            cell.offered_records
            - cell.delivered_records
            - _pending_records(transport)
        )
    else:
        cell.shed_records = sender_shed + daemon.records_shed
    cell.dead_letters = daemon.dead_letters
    cell.peak_queue_depth = transport.peak_pending
    cell.final_queue_depth = transport.pending
    cell.telemetry_p50_s = tel_hist.quantile(0.50)
    cell.telemetry_p99_s = tel_hist.quantile(0.99)
    cell.telemetry_p999_s = tel_hist.p999
    cell.control_p50_s = ctl_hist.quantile(0.50)
    cell.control_p99_s = ctl_hist.quantile(0.99)
    return cell


def _pending_records(transport) -> int:
    """Telemetry records still queued (undelivered, but not shed)."""
    pending = 0
    for lane in getattr(transport, "_lanes", {}).values():
        for message in lane:
            if isinstance(message, TelemetryBatch):
                pending += len(message.records)
    if not hasattr(transport, "_lanes"):
        for message in getattr(transport, "_queue", ()):
            if isinstance(message, TelemetryBatch):
                pending += len(message.records)
    return pending


def run_saturation(
    *,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 0,
    multipliers: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    service_rate_records_s: float = 4_000.0,
    capacity: int = 64,
    policy: str = "drop-oldest",
    chaos: bool = False,
) -> SaturationResult:
    """Run the full (plane x multiplier) saturation sweep."""
    if not multipliers or any(m <= 0 for m in multipliers):
        raise ConfigurationError(
            f"multipliers must be positive, got {multipliers}"
        )
    if service_rate_records_s <= 0:
        raise ConfigurationError(
            f"service_rate_records_s must be positive, "
            f"got {service_rate_records_s}"
        )
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    if policy not in SHED_POLICIES:
        raise ConfigurationError(
            f"policy must be one of {SHED_POLICIES}, got {policy!r}"
        )
    slot_s = 0.05
    slots = scale.runs * 10
    control_every = 10
    result = SaturationResult(
        seed=seed,
        service_rate_records_s=service_rate_records_s,
        capacity=capacity,
        policy=policy,
        horizon_s=slots * slot_s,
        chaos=chaos,
    )
    for multiplier in multipliers:
        for plane in PLANES:
            result.cells.append(
                _run_cell(
                    plane,
                    multiplier,
                    seed=seed,
                    service_rate=service_rate_records_s,
                    capacity=capacity,
                    policy=policy,
                    slots=slots,
                    slot_s=slot_s,
                    control_every=control_every,
                    chaos=chaos,
                )
            )
    return result
