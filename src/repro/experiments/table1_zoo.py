"""Table I: the 23 candidate model architectures."""

from __future__ import annotations

from repro.experiments.reporting import ascii_table
from repro.nn.model_zoo import MODEL_NUMBERS, model_summary


def table1_rows(z: int = 6) -> list[tuple[int, str]]:
    """(model number, architecture description) for every Table-I model."""
    return [(number, model_summary(number, z)) for number in MODEL_NUMBERS]


def table1_text(z: int = 6) -> str:
    rows = [(f"Model {number}", summary) for number, summary in table1_rows(z)]
    return ascii_table(
        ["Model number", "Components"],
        rows,
        title=f"Table I -- model architectures (Z = {z})",
    )
