"""Table IV: per-mount all-files-on-one-device study + Geomancy's usage.

Experiment 2 of the paper: "we measure the I/O performance of each storage
point if all files are placed and read solely on those points.  We compare
those performance metrics against a data layout proposed by Geomancy."  The
usage column reports how Geomancy spread its accesses across mounts
(file0 got ~65% in the paper, everything else shares the rest).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments.harness import (
    PolicyRunResult,
    make_experiment_config,
    run_policy_experiment,
)
from repro.experiments.reporting import ascii_table, mean_std
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.policies.geomancy_policy import GeomancyDynamicPolicy
from repro.policies.static import SingleMountPolicy
from repro.simulation.bluesky import BLUESKY_DEVICE_NAMES, make_bluesky_cluster


@dataclass
class Table4Result:
    """Single-mount runs plus the Geomancy run."""

    mounts: dict[str, PolicyRunResult]
    geomancy: PolicyRunResult

    def mount_mean(self, name: str) -> float:
        try:
            return self.mounts[name].mean_throughput
        except KeyError:
            raise ExperimentError(
                f"no single-mount run for {name!r}; have {sorted(self.mounts)}"
            ) from None

    def fastest_mount(self) -> str:
        return max(self.mounts, key=lambda m: self.mounts[m].mean_throughput)

    def geomancy_usage(self) -> dict[str, float]:
        """Share of Geomancy's accesses served by each mount (percent)."""
        return dict(self.geomancy.usage_percent)

    def to_text(self) -> str:
        usage = self.geomancy_usage()
        rows = [
            (
                name,
                mean_std(
                    result.mean_throughput, result.std_throughput
                ),
                f"{usage.get(name, 0.0):.2f}",
            )
            for name, result in self.mounts.items()
        ]
        rows.append(
            (
                "Geomancy",
                mean_std(
                    self.geomancy.mean_throughput,
                    self.geomancy.std_throughput,
                ),
                "100",
            )
        )
        return ascii_table(
            ["Storage point", "Average throughput (GB/s)",
             "Average usage (%)"],
            rows,
            title="Table IV -- performance and utilization of storage points",
        )


def run_table4(
    *,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 0,
    mounts: tuple[str, ...] = BLUESKY_DEVICE_NAMES,
) -> Table4Result:
    """Regenerate Table IV."""
    mount_results = {
        mount: run_policy_experiment(
            SingleMountPolicy(mount), scale=scale, seed=seed
        )
        for mount in mounts
    }
    cluster = make_bluesky_cluster(seed=seed)
    device_by_fsid = {
        cluster.device(name).fsid: name for name in cluster.device_names
    }
    geomancy = run_policy_experiment(
        GeomancyDynamicPolicy(
            device_by_fsid, make_experiment_config(scale, seed=seed)
        ),
        scale=scale,
        seed=seed,
    )
    return Table4Result(mounts=mount_results, geomancy=geomancy)
