"""The fully observed Geomancy control loop.

``run_instrumented`` drives the standard warm-up + measured Belle II
loop with a live :class:`~repro.observability.Observability` instance
installed process-wide, so every subsystem's cached metric handles are
real and every control-loop stage runs under a span:

* each measured run is one **tick** (the per-tick trace root), with
  ``simulator_advance`` -> ``telemetry_collect`` -> ``telemetry_flush``
  (containing the daemon's ``replaydb_write``) -> the Geomancy decision
  spans (``train_step``/``model_fit``, ``propose_layout``/
  ``model_predict``, ``action_check``, ``movement_dispatch``) nested
  beneath it;
* counters/gauges/histograms from every subsystem land in one
  :class:`~repro.observability.metrics.MetricsRegistry`, exportable as
  Prometheus text or appended as JSONL snapshots every
  ``snapshot_every`` runs;
* the event bus carries fault injections, circuit-breaker transitions,
  rescues and movement dispatches through one subscriber API.

Instrumentation never touches an RNG or the simulated clock, so the
run's *outputs* (layout, movements, throughput) are bit-for-bit
identical whether observability is enabled or not -- the overhead
benchmark and the integration tests both lean on that.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.config import GeomancyConfig
from repro.core.geomancy import Geomancy
from repro.errors import ExperimentError
from repro.experiments.harness import make_experiment_config
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.observability import Observability, use
from repro.observability.profiling import (
    ProfileReport,
    SpanAttribution,
    profile_call,
    span_attribution,
)
from repro.observability.slo import ControlPlaneSLOFeed, SLOMonitor
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import MovementRecord
from repro.simulation.bluesky import make_bluesky_cluster
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import belle2_file_population
from repro.workloads.runner import WorkloadRunner

#: the workload access stream seed every control-loop harness shares
WORKLOAD_SEED = 1


@dataclass
class InstrumentedRunResult:
    """Outcome of one observed control loop, plus its telemetry."""

    seed: int
    scale_name: str
    runs_completed: int
    accesses: int
    mean_gbps: float
    final_layout: dict[int, str]
    movements: list[MovementRecord]
    #: full Prometheus text exposition captured at run end
    prometheus: str
    #: per-metric snapshot dict captured at run end
    metrics: dict
    #: bus events as dicts, in publish order
    events: list[dict] = field(default_factory=list)
    #: finished span count (0 when tracing was off)
    spans_recorded: int = 0
    #: files the exports landed in (absent keys were not requested)
    artifacts: dict[str, str] = field(default_factory=dict)
    profile: ProfileReport | None = None
    attribution: SpanAttribution | None = None
    #: final SLO burn-rate statuses (None when SLO monitoring was off)
    slo: list[dict] | None = None

    def movement_fingerprint(self) -> tuple:
        """Hashable history for bit-for-bit determinism comparisons."""
        return tuple(
            (m.timestamp, m.fid, m.src_device, m.dst_device, m.succeeded)
            for m in self.movements
        )

    def to_text(self, profile_top: int = 15) -> str:
        rows = [
            ("runs completed", self.runs_completed),
            ("accesses measured", self.accesses),
            ("mean GB/s", f"{self.mean_gbps:.3f}"),
            ("files moved",
             sum(1 for m in self.movements if m.succeeded)),
            ("spans recorded", self.spans_recorded),
            ("bus events", len(self.events)),
            ("metrics registered",
             sum(len(group) for group in self.metrics.values())),
        ]
        table = ascii_table(
            ["metric", "value"], rows,
            title=f"Instrumented run (seed {self.seed}, "
                  f"{self.scale_name} scale)",
        )
        for kind, path in sorted(self.artifacts.items()):
            table += f"\n{kind}: {path}"
        if self.attribution is not None:
            table += "\n\n" + self.attribution.to_text()
        if self.profile is not None:
            table += "\n" + self.profile.top_table(profile_top)
        return table


def run_instrumented(
    *,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 0,
    obs: Observability | None = None,
    metrics_path: str | os.PathLike | None = None,
    metrics_snapshot_path: str | os.PathLike | None = None,
    snapshot_every: int = 1,
    trace_path: str | os.PathLike | None = None,
    profile: bool = False,
    schedule_specs: tuple[str, ...] = (),
    migration_failure_rate: float = 0.0,
    **config_overrides,
) -> InstrumentedRunResult:
    """One warm-up + measured loop under full observability.

    ``obs`` defaults to a fully enabled instance built from the run's
    config knobs; pass ``Observability(enabled=False)`` to measure the
    disabled baseline through the *identical* code path (the overhead
    benchmark does exactly that).  ``metrics_path`` receives the final
    Prometheus dump, ``metrics_snapshot_path`` a JSONL snapshot every
    ``snapshot_every`` measured runs, ``trace_path`` the Chrome-trace
    JSON.  ``profile=True`` additionally wraps the measured phase in
    cProfile.
    """
    if snapshot_every < 1:
        raise ExperimentError(
            f"snapshot_every must be >= 1, got {snapshot_every}"
        )
    specs = tuple(schedule_specs)
    if specs and FaultSchedule.from_specs(specs).has_fractional_times:
        raise ExperimentError(
            "the instrumented harness needs absolute fault times "
            "(fractional '@N%' times depend on a baseline twin run)"
        )
    config = make_experiment_config(
        scale,
        seed=seed,
        observability_enabled=True,
        fault_schedule=specs,
        **config_overrides,
    )
    if obs is None:
        obs = Observability.from_config(config)
    with use(obs):
        return _drive(
            config=config,
            scale=scale,
            seed=seed,
            obs=obs,
            metrics_path=metrics_path,
            metrics_snapshot_path=metrics_snapshot_path,
            snapshot_every=snapshot_every,
            trace_path=trace_path,
            profile=profile,
            specs=specs,
            migration_failure_rate=migration_failure_rate,
        )


def _drive(
    *,
    config: GeomancyConfig,
    scale: ExperimentScale,
    seed: int,
    obs: Observability,
    metrics_path,
    metrics_snapshot_path,
    snapshot_every: int,
    trace_path,
    profile: bool,
    specs: tuple[str, ...],
    migration_failure_rate: float,
) -> InstrumentedRunResult:
    # Components cache their handles at construction, so the system is
    # built *after* the instance is installed (run_instrumented's `use`).
    cluster = make_bluesky_cluster(seed=seed)
    files = belle2_file_population(seed=seed)
    geo = Geomancy(cluster, files, config, obs=obs)
    geo.place_initial()
    runner = WorkloadRunner(
        cluster,
        Belle2Workload(files, seed=WORKLOAD_SEED),
        ReplayDB(),
        tolerate_offline=True,
    )
    # Warm-up: telemetry lands through the agents but is not traced per
    # tick (ticks number the *measured* runs, matching the other
    # harnesses' run indices).
    while geo.db.access_count() < scale.warmup_accesses:
        geo.observe_run(list(runner.run_stream()))

    slo_feed = None
    if config.slo_enabled:
        monitor = SLOMonitor(
            ControlPlaneSLOFeed.default_specs(), bus=obs.bus
        )
        slo_feed = ControlPlaneSLOFeed(
            monitor,
            geo,
            queue_delay_threshold_s=config.slo_queue_delay_threshold_s,
            throughput_floor_gbps=config.slo_throughput_floor_gbps,
        )
        if config.slo_arm_guardrail and geo.guardrail is not None:
            monitor.arm(geo.guardrail)

    injector = None
    if specs or migration_failure_rate:
        # Fault times in the specs are relative to the start of the
        # measured phase.
        phase_start = runner.clock.now
        schedule = FaultSchedule(
            replace(event, at=event.at + phase_start)
            for event in FaultSchedule.from_specs(specs)
        )
        injector = FaultInjector(
            cluster,
            schedule,
            migration_failure_rate=migration_failure_rate,
            seed=seed,
        ).install()

    throughput: list[float] = []

    def measured_phase() -> None:
        for run_number in range(1, scale.runs + 1):
            with obs.tick(run_number):
                with obs.span("simulator_advance"):
                    records = []
                    for record in runner.run_stream():
                        if injector is not None:
                            injector.advance(runner.clock.now)
                        records.append(record)
                    if injector is not None:
                        injector.advance(runner.clock.now)
                with obs.span("telemetry_collect", records=len(records)):
                    run_gbps: list[float] = []
                    for record in records:
                        run_gbps.append(float(record.throughput_gbps))
                        throughput.append(run_gbps[-1])
                        geo.observe(record)
                with obs.span("telemetry_flush"):
                    geo.flush_telemetry(at=runner.clock.now)
                geo.after_run(run_number, runner.clock.now)
                if slo_feed is not None:
                    now = runner.clock.now
                    slo_feed.tick(now, run_index=run_number)
                    slo_feed.observe_run(
                        now,
                        float(np.mean(run_gbps)) if run_gbps else 0.0,
                        run_index=run_number,
                    )
                    slo_feed.monitor.evaluate(now, run_index=run_number)
            if (
                metrics_snapshot_path is not None
                and run_number % snapshot_every == 0
            ):
                obs.metrics.write_snapshot(
                    metrics_snapshot_path, run=run_number, seed=seed
                )

    report: ProfileReport | None = None
    if profile:
        report = profile_call(measured_phase)
    else:
        measured_phase()
    if injector is not None:
        injector.uninstall()

    artifacts: dict[str, str] = {}
    prometheus = obs.metrics.render_prometheus()
    if metrics_path is not None:
        path = Path(metrics_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(prometheus)
        artifacts["metrics"] = str(path)
    if metrics_snapshot_path is not None:
        artifacts["metrics_snapshots"] = str(Path(metrics_snapshot_path))
    if trace_path is not None:
        path = Path(trace_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The provenance ledger contributes a causal track (batches and
        # decisions as linked spans) alongside the tracer's own spans.
        extra = geo.ledger.chrome_events() if geo.ledger is not None else None
        obs.tracer.export_chrome(path, extra_events=extra)
        artifacts["trace"] = str(path)
    if geo.ledger is not None and geo.ledger.path is not None:
        artifacts["provenance"] = str(geo.ledger.path)

    layout = cluster.layout()
    return InstrumentedRunResult(
        seed=seed,
        scale_name=scale.name,
        runs_completed=scale.runs,
        accesses=len(throughput),
        mean_gbps=float(np.mean(throughput)) if throughput else 0.0,
        final_layout={spec.fid: layout[spec.fid] for spec in geo.files},
        movements=geo.db.movements(),
        prometheus=prometheus,
        metrics=obs.metrics.snapshot(),
        events=[event.to_dict() for event in obs.bus],
        spans_recorded=len(obs.tracer.spans),
        artifacts=artifacts,
        profile=report,
        attribution=(
            span_attribution(obs.tracer) if obs.tracer.spans else None
        ),
        slo=(
            [
                status.to_dict()
                for status in slo_feed.monitor.evaluate(runner.clock.now)
            ]
            if slo_feed is not None
            else None
        ),
    )
