"""Cross-seed robustness of the Fig. 5 comparison.

The paper evaluates one live system; our substrate lets the same comparison
re-run under many random environments.  This experiment repeats Fig. 5a
across seeds and reports Geomancy's gain over the best dynamic baseline per
seed plus summary statistics -- the honest error bars EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.fig5_comparison import GEOMANCY, run_fig5a
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import ExperimentScale, TEST_SCALE


@dataclass
class SeedOutcome:
    """One seed's Fig. 5a summary."""

    seed: int
    geomancy_gbps: float
    best_baseline: str
    best_baseline_gbps: float

    @property
    def gain_percent(self) -> float:
        return (
            (self.geomancy_gbps - self.best_baseline_gbps)
            / self.best_baseline_gbps
            * 100.0
        )

    @property
    def won(self) -> bool:
        return self.geomancy_gbps > self.best_baseline_gbps


@dataclass
class RobustnessResult:
    """Fig. 5a repeated across seeds."""

    outcomes: list[SeedOutcome]

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ExperimentError("no seeds were run")

    @property
    def win_rate(self) -> float:
        return sum(o.won for o in self.outcomes) / len(self.outcomes)

    @property
    def median_gain_percent(self) -> float:
        return float(np.median([o.gain_percent for o in self.outcomes]))

    @property
    def gain_range(self) -> tuple[float, float]:
        gains = [o.gain_percent for o in self.outcomes]
        return (min(gains), max(gains))

    def to_text(self) -> str:
        rows = [
            (
                o.seed,
                f"{o.geomancy_gbps:.2f}",
                f"{o.best_baseline} ({o.best_baseline_gbps:.2f})",
                f"{o.gain_percent:+.1f}%",
                "win" if o.won else "loss",
            )
            for o in self.outcomes
        ]
        table = ascii_table(
            ["seed", "Geomancy GB/s", "best baseline", "gain", ""],
            rows,
            title="Fig. 5a robustness across environment seeds",
        )
        lo, hi = self.gain_range
        return (
            f"{table}\n"
            f"win rate {self.win_rate:.0%}, median gain "
            f"{self.median_gain_percent:+.1f}% (range {lo:+.1f}% .. {hi:+.1f}%)"
        )


def run_robustness(
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    scale: ExperimentScale = TEST_SCALE,
) -> RobustnessResult:
    """Repeat Fig. 5a for each seed."""
    if not seeds:
        raise ExperimentError("need at least one seed")
    outcomes = []
    for seed in seeds:
        result = run_fig5a(scale=scale, seed=seed)
        best = result.best_baseline()
        outcomes.append(
            SeedOutcome(
                seed=seed,
                geomancy_gbps=result.mean(GEOMANCY),
                best_baseline=best,
                best_baseline_gbps=result.mean(best),
            )
        )
    return RobustnessResult(outcomes=outcomes)
