"""Robustness studies: cross-seed stability and chaos engineering.

The paper evaluates one live system; our substrate lets the same comparison
re-run under many random environments.  ``run_robustness`` repeats Fig. 5a
across seeds and reports Geomancy's gain over the best dynamic baseline per
seed plus summary statistics -- the honest error bars EXPERIMENTS.md quotes.

``run_chaos`` goes further: it runs the BELLE II workload twice with
identical seeds -- once fault-free, once under a fault schedule (device
kills/degradations, mid-transfer migration aborts, lossy telemetry) -- and
reports throughput retention, recovery time after outages, and every
resilience counter the control plane exposes.  Fault injection draws only
from seeded generators, so a fixed seed reproduces the byte-identical
movement history.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.geomancy import Geomancy
from repro.errors import ExperimentError
from repro.experiments.fig5_comparison import GEOMANCY, run_fig5a
from repro.experiments.harness import make_experiment_config
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.faults.chaos_transport import ChaosTransport
from repro.faults.injector import FaultInjector
from repro.faults.invariants import cluster_invariant_violations
from repro.faults.schedule import FaultSchedule
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import MovementRecord
from repro.simulation.bluesky import make_bluesky_cluster
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import belle2_file_population
from repro.workloads.runner import WorkloadRunner


@dataclass
class SeedOutcome:
    """One seed's Fig. 5a summary."""

    seed: int
    geomancy_gbps: float
    best_baseline: str
    best_baseline_gbps: float

    @property
    def gain_percent(self) -> float:
        return (
            (self.geomancy_gbps - self.best_baseline_gbps)
            / self.best_baseline_gbps
            * 100.0
        )

    @property
    def won(self) -> bool:
        return self.geomancy_gbps > self.best_baseline_gbps


@dataclass
class RobustnessResult:
    """Fig. 5a repeated across seeds."""

    outcomes: list[SeedOutcome]

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ExperimentError("no seeds were run")

    @property
    def win_rate(self) -> float:
        return sum(o.won for o in self.outcomes) / len(self.outcomes)

    @property
    def median_gain_percent(self) -> float:
        return float(np.median([o.gain_percent for o in self.outcomes]))

    @property
    def gain_range(self) -> tuple[float, float]:
        gains = [o.gain_percent for o in self.outcomes]
        return (min(gains), max(gains))

    def to_text(self) -> str:
        rows = [
            (
                o.seed,
                f"{o.geomancy_gbps:.2f}",
                f"{o.best_baseline} ({o.best_baseline_gbps:.2f})",
                f"{o.gain_percent:+.1f}%",
                "win" if o.won else "loss",
            )
            for o in self.outcomes
        ]
        table = ascii_table(
            ["seed", "Geomancy GB/s", "best baseline", "gain", ""],
            rows,
            title="Fig. 5a robustness across environment seeds",
        )
        lo, hi = self.gain_range
        return (
            f"{table}\n"
            f"win rate {self.win_rate:.0%}, median gain "
            f"{self.median_gain_percent:+.1f}% (range {lo:+.1f}% .. {hi:+.1f}%)"
        )


def run_robustness(
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    scale: ExperimentScale = TEST_SCALE,
    workers: int = 1,
) -> RobustnessResult:
    """Repeat Fig. 5a for each seed.

    ``workers > 1`` spreads the (policy x seed) grid across processes via
    :mod:`repro.experiments.parallel`; merging is seed-deterministic, so
    the result equals the serial sweep bit-for-bit.
    """
    if not seeds:
        raise ExperimentError("need at least one seed")
    if workers > 1:
        from repro.experiments import parallel

        return parallel.run_robustness(
            seeds=seeds, scale=scale, workers=workers
        )
    outcomes = []
    for seed in seeds:
        result = run_fig5a(scale=scale, seed=seed)
        best = result.best_baseline()
        outcomes.append(
            SeedOutcome(
                seed=seed,
                geomancy_gbps=result.mean(GEOMANCY),
                best_baseline=best,
                best_baseline_gbps=result.mean(best),
            )
        )
    return RobustnessResult(outcomes=outcomes)


# -- chaos engineering ---------------------------------------------------

#: kill 2 of the 6 Bluesky mounts partway through the measured phase
DEFAULT_CHAOS_SCHEDULE: tuple[str, ...] = (
    "kill:file0@40%",
    "kill:pic@55%",
)


@dataclass
class _PhaseStats:
    """Everything measured while one (baseline or chaos) loop ran."""

    mean_gbps: float
    duration_s: float
    end_time: float
    accesses: int
    failed_accesses: int
    movements: list[MovementRecord]
    rescued_files: int
    recovery_times: list[float]
    stranded_at_end: int
    invariant_violations: list[str]


@dataclass
class ChaosResult:
    """One chaos run compared against its fault-free twin."""

    seed: int
    schedule_specs: tuple[str, ...]
    migration_failure_rate: float
    baseline_gbps: float
    chaos_gbps: float
    baseline_accesses: int
    chaos_accesses: int
    failed_accesses: int
    #: (simulated time, device) per applied outage
    outages: list[tuple[float, str]]
    recovery_times: list[float]
    stranded_at_end: int
    movements: list[MovementRecord] = field(default_factory=list)
    rescued_files: int = 0
    moves_failed: int = 0
    moves_retried: int = 0
    retries_exhausted: int = 0
    dead_letters: int = 0
    batches_dropped: int = 0
    batches_delayed: int = 0
    batches_corrupted: int = 0
    quarantined_devices: list[str] = field(default_factory=list)
    invariant_violations: list[str] = field(default_factory=list)

    @property
    def throughput_retention_percent(self) -> float:
        """Chaos-run throughput as a share of the fault-free baseline."""
        if self.baseline_gbps <= 0:
            raise ExperimentError("baseline measured non-positive throughput")
        return self.chaos_gbps / self.baseline_gbps * 100.0

    @property
    def recovery_time_s(self) -> float | None:
        """Time from the last outage wave until no file was stranded."""
        return self.recovery_times[-1] if self.recovery_times else None

    def movement_fingerprint(self) -> tuple:
        """Hashable history for determinism comparisons across runs."""
        return tuple(
            (m.timestamp, m.fid, m.src_device, m.dst_device, m.succeeded)
            for m in self.movements
        )

    def to_text(self) -> str:
        rows = [
            ("baseline GB/s", f"{self.baseline_gbps:.2f}"),
            ("chaos GB/s", f"{self.chaos_gbps:.2f}"),
            ("throughput retention",
             f"{self.throughput_retention_percent:.1f}%"),
            ("outages injected",
             ", ".join(f"{d}@{t:.0f}s" for t, d in self.outages) or "none"),
            ("recovery time",
             f"{self.recovery_time_s:.1f}s" if self.recovery_time_s is not None
             else ("n/a" if not self.outages else "not recovered")),
            ("files still stranded", self.stranded_at_end),
            ("accesses failed (offline)", self.failed_accesses),
            ("moves failed mid-transfer", self.moves_failed),
            ("moves retried", self.moves_retried),
            ("retries exhausted", self.retries_exhausted),
            ("files rescued", self.rescued_files),
            ("telemetry dead-letters", self.dead_letters),
            ("batches dropped/delayed/corrupted",
             f"{self.batches_dropped}/{self.batches_delayed}"
             f"/{self.batches_corrupted}"),
            ("quarantined devices",
             ", ".join(self.quarantined_devices) or "none"),
            ("invariant violations", len(self.invariant_violations)),
        ]
        table = ascii_table(
            ["metric", "value"], rows,
            title=f"Chaos run (seed {self.seed}, "
                  f"{self.migration_failure_rate:.0%} migration failures)",
        )
        if self.invariant_violations:
            table += "\nVIOLATIONS:\n" + "\n".join(self.invariant_violations)
        return table


def _run_control_loop(
    *,
    scale: ExperimentScale,
    seed: int,
    schedule: FaultSchedule | None,
    migration_failure_rate: float,
    drop_rate: float,
    delay_rate: float,
    reorder_rate: float,
    corrupt_rate: float,
    chaos: bool,
    baseline_duration: float | None = None,
    batched: bool = True,
) -> tuple[_PhaseStats, Geomancy, FaultInjector | None]:
    """One full warm-up + measured Geomancy loop, optionally under faults.

    Telemetry flows through the monitoring agents and the (possibly lossy)
    transport rather than straight into the DB, so transport faults have
    real consequences for what the engine trains on.  ``batched`` selects
    the vectorized access pipeline; fault timing, telemetry batching, and
    every RNG draw are bit-for-bit identical either way, so chaos results
    do not depend on the flag.
    """
    cluster = make_bluesky_cluster(seed=seed)
    files = belle2_file_population(seed=seed)
    config = make_experiment_config(
        scale, seed=seed, batched_simulation=batched
    )
    telemetry = (
        ChaosTransport(
            drop_rate=drop_rate, delay_rate=delay_rate,
            reorder_rate=reorder_rate, corrupt_rate=corrupt_rate,
            seed=seed,
        )
        if chaos
        else None
    )
    geo = Geomancy(cluster, files, config, telemetry=telemetry)
    geo.place_initial()
    runner = WorkloadRunner(
        cluster, Belle2Workload(files, seed=1), ReplayDB(),
        tolerate_offline=True, batched=config.batched_simulation,
    )
    # Warm-up: telemetry lands (through the agents) but is not measured.
    while geo.db.access_count() < scale.warmup_accesses:
        if config.batched_simulation:
            geo.observe_run(runner.run_once().records)
        else:
            geo.observe_run(list(runner.run_stream()))

    injector = None
    phase_start = runner.clock.now
    if chaos:
        resolved = schedule if schedule is not None else FaultSchedule()
        if resolved.has_fractional_times:
            # Fractional times ("@40%") refer to the measured phase; the
            # fault-free twin already measured how long that phase lasts.
            if baseline_duration is None:
                raise ExperimentError(
                    "schedule has fractional times but no baseline "
                    "duration was provided to resolve them"
                )
            resolved = resolved.resolved(baseline_duration)
        # Schedule times are relative to the start of the measured phase.
        shifted = FaultSchedule(
            replace(event, at=event.at + phase_start) for event in resolved
        )
        injector = FaultInjector(
            cluster, shifted,
            migration_failure_rate=migration_failure_rate, seed=seed,
        ).install()

    throughput: list[float] = []
    measured_fail_start = runner.failed_accesses
    rescued = 0
    recovery_times: list[float] = []
    stranded_since: float | None = None
    violations: list[str] = []
    for run_number in range(1, scale.runs + 1):
        if config.batched_simulation:
            # Same event order as the scalar loop below: the injector
            # advances after every served access (access_batch invokes the
            # hook at the same clock values run_stream would show), and
            # telemetry batching sees the identical record sequence.
            run = runner.run_once(
                advance_hook=(
                    injector.advance if injector is not None else None
                )
            )
            throughput.extend(r.throughput_gbps for r in run.records)
            geo.observe_records(run.records)
        else:
            for record in runner.run_stream():
                if injector is not None:
                    injector.advance(runner.clock.now)
                throughput.append(record.throughput_gbps)
                geo.observe(record)
        if injector is not None:
            injector.advance(runner.clock.now)
        geo.flush_telemetry(at=runner.clock.now)
        outcome = geo.after_run(run_number, runner.clock.now)
        rescued += outcome.rescued_files
        stranded = len(cluster.files_stranded())
        if stranded and stranded_since is None:
            stranded_since = runner.clock.now
        elif not stranded and stranded_since is not None:
            recovery_times.append(runner.clock.now - stranded_since)
            stranded_since = None
        violations.extend(cluster_invariant_violations(cluster, files))
    if injector is not None:
        injector.uninstall()
    return _PhaseStats(
        mean_gbps=float(np.mean(throughput)) if throughput else 0.0,
        duration_s=runner.clock.now - phase_start,
        end_time=runner.clock.now,
        accesses=len(throughput),
        failed_accesses=runner.failed_accesses - measured_fail_start,
        movements=geo.db.movements(),
        rescued_files=rescued,
        recovery_times=recovery_times,
        stranded_at_end=len(cluster.files_stranded()),
        invariant_violations=violations,
    ), geo, injector


def run_chaos(
    *,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 7,
    schedule_specs: tuple[str, ...] | None = None,
    migration_failure_rate: float = 0.05,
    drop_rate: float = 0.02,
    delay_rate: float = 0.02,
    reorder_rate: float = 0.05,
    corrupt_rate: float = 0.01,
    batched: bool = True,
) -> ChaosResult:
    """Run the Belle II workload fault-free, then under the chaos schedule.

    Both runs share every seed, so the throughput delta is attributable to
    the injected faults (plus the control plane's recovery work).
    ``batched=False`` drives both twins through the scalar reference loop
    instead of the vectorized pipeline; results are bit-for-bit identical.
    """
    specs = (
        tuple(schedule_specs) if schedule_specs is not None
        else DEFAULT_CHAOS_SCHEDULE
    )
    schedule = FaultSchedule.from_specs(specs) if specs else None
    baseline, _, _ = _run_control_loop(
        scale=scale, seed=seed, schedule=None,
        migration_failure_rate=0.0, drop_rate=0.0, delay_rate=0.0,
        reorder_rate=0.0, corrupt_rate=0.0, chaos=False, batched=batched,
    )
    stats, geo, injector = _run_control_loop(
        scale=scale, seed=seed, schedule=schedule,
        migration_failure_rate=migration_failure_rate,
        drop_rate=drop_rate, delay_rate=delay_rate,
        reorder_rate=reorder_rate, corrupt_rate=corrupt_rate, chaos=True,
        baseline_duration=baseline.duration_s, batched=batched,
    )
    telemetry = geo.telemetry
    return ChaosResult(
        seed=seed,
        schedule_specs=specs,
        migration_failure_rate=migration_failure_rate,
        baseline_gbps=baseline.mean_gbps,
        chaos_gbps=stats.mean_gbps,
        baseline_accesses=baseline.accesses,
        chaos_accesses=stats.accesses,
        failed_accesses=stats.failed_accesses,
        outages=list(injector.outage_log) if injector is not None else [],
        recovery_times=stats.recovery_times,
        stranded_at_end=stats.stranded_at_end,
        movements=stats.movements,
        rescued_files=stats.rescued_files,
        moves_failed=geo.control.moves_failed,
        moves_retried=geo.control.moves_retried,
        retries_exhausted=len(geo.control.exhausted),
        dead_letters=geo.daemon.dead_letters,
        batches_dropped=getattr(telemetry, "dropped", 0),
        batches_delayed=getattr(telemetry, "delayed", 0),
        batches_corrupted=getattr(telemetry, "corrupted", 0),
        quarantined_devices=geo.health.quarantined_devices(stats.end_time),
        invariant_violations=stats.invariant_violations,
    )
