"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ExperimentError


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ExperimentError("table needs headers")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def mean_std(value: float, std: float, *, digits: int = 2) -> str:
    """Format as the paper's ``mean +/- std``."""
    return f"{value:.{digits}f} ± {std:.{digits}f}"


def bucket_series(
    values: Sequence[float], bucket: int
) -> tuple[np.ndarray, np.ndarray]:
    """Average a per-access series into fixed-size buckets.

    Fig. 5/6 plot "the average accesses throughput done by the workloads
    over 500 accesses"; returns ``(bucket_end_access_numbers, means)``.
    The final partial bucket is included.
    """
    if bucket < 1:
        raise ExperimentError(f"bucket must be >= 1, got {bucket}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return np.array([], dtype=np.int64), np.array([])
    edges = list(range(bucket, arr.size + 1, bucket))
    if not edges or edges[-1] != arr.size:
        edges.append(arr.size)
    means = [arr[max(0, end - bucket) : end].mean() for end in edges]
    return np.asarray(edges, dtype=np.int64), np.asarray(means)


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """A terminal sparkline of a series (for figure-style output)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return ""
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).astype(int)
        arr = arr[idx]
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return blocks[0] * arr.size
    scaled = ((arr - lo) / (hi - lo) * (len(blocks) - 1)).astype(int)
    return "".join(blocks[s] for s in scaled)


def movement_bars(
    movements: list[tuple[int, int]],
    total_accesses: int,
    *,
    width: int = 60,
    max_height: int = 4,
) -> str:
    """Render the Fig. 5 movement bars: when and how many files moved.

    ``movements`` is a list of ``(access_number, files_moved)`` pairs; the
    output is a ``max_height``-row text chart aligned to a ``width``-column
    timeline of ``total_accesses`` accesses.
    """
    if width < 1 or max_height < 1:
        raise ExperimentError("width and max_height must be >= 1")
    if total_accesses < 1:
        raise ExperimentError("total_accesses must be >= 1")
    columns = [0] * width
    for access_number, count in movements:
        if count < 0 or access_number < 0:
            raise ExperimentError(
                f"invalid movement entry ({access_number}, {count})"
            )
        col = min(width - 1, access_number * width // total_accesses)
        columns[col] += count
    peak = max(columns) if any(columns) else 0
    if peak == 0:
        return "(no file movements)"
    lines = []
    for level in range(max_height, 0, -1):
        threshold = peak * level / max_height
        row = "".join(
            "█" if value >= threshold and value > 0 else " "
            for value in columns
        )
        lines.append(row)
    lines.append("─" * width)
    lines.append(f"peak: {peak} files moved in one relayout")
    return "\n".join(lines)
