"""The shared policy-comparison loop (Experiment 1 and 2 machinery).

One call runs one policy on a fresh Bluesky cluster with the same seeded
workload and interference as every other policy in the comparison:

1. place files per the policy's initial layout;
2. warm up until the ReplayDB holds the configured access count ("BELLE 2
   is run until Geomancy's monitoring agents can capture 10000 accesses");
3. run the measured phase, consulting dynamic policies every
   ``update_every`` runs and applying their relayouts (movement overhead
   lands on the shared devices and is therefore part of every measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import GeomancyConfig
from repro.errors import ExperimentError
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.policies.base import PlacementPolicy
from repro.policies.random_policy import RandomDynamicPolicy
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import MovementRecord
from repro.simulation.bluesky import make_bluesky_cluster
from repro.simulation.cluster import StorageCluster
from repro.simulation.interference import LoadProcess
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import FileSpec, belle2_file_population
from repro.workloads.runner import WorkloadRunner


@dataclass
class PolicyRunResult:
    """Everything measured while one policy steered the workload."""

    policy_name: str
    #: per-access throughput (GB/s), measured phase only
    throughput_gbps: list[float] = field(default_factory=list)
    #: (access_number, files_moved) for each applied relayout
    movements: list[tuple[int, int]] = field(default_factory=list)
    #: per-device usage share (% of accesses), measured phase
    usage_percent: dict[str, float] = field(default_factory=dict)
    #: per-device observed mean/std throughput (GB/s), measured phase
    device_throughput: dict[str, tuple[float, float]] = field(
        default_factory=dict
    )

    @property
    def mean_throughput(self) -> float:
        if not self.throughput_gbps:
            raise ExperimentError("no accesses were measured")
        return float(np.mean(self.throughput_gbps))

    @property
    def std_throughput(self) -> float:
        if not self.throughput_gbps:
            raise ExperimentError("no accesses were measured")
        return float(np.std(self.throughput_gbps))

    @property
    def total_files_moved(self) -> int:
        return sum(count for _, count in self.movements)

    @property
    def access_count(self) -> int:
        return len(self.throughput_gbps)


def make_experiment_config(
    scale: ExperimentScale, *, seed: int = 0, **overrides
) -> GeomancyConfig:
    """A GeomancyConfig sized for an experiment scale."""
    params = dict(
        training_rows=scale.training_rows,
        epochs=scale.epochs,
        cooldown_runs=scale.update_every,
        seed=seed,
    )
    params.update(overrides)
    return GeomancyConfig(**params)


def run_policy_experiment(
    policy: PlacementPolicy,
    *,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 0,
    workload_seed: int = 1,
    extra_interference: dict[str, LoadProcess] | None = None,
    cluster: StorageCluster | None = None,
    files: list[FileSpec] | None = None,
    batched: bool = True,
) -> PolicyRunResult:
    """Measure one policy on the standard setup.

    All stochastic inputs (cluster interference, device noise, workload
    access stream) derive from ``seed``/``workload_seed``, so two policies
    run with the same seeds face exactly the same environment.
    ``batched`` selects the vectorized access pipeline (the default) or
    the scalar reference loop; both produce bit-for-bit identical
    results, so the flag only matters for benchmarking the fast path
    against its oracle.
    """
    if cluster is None:
        cluster = make_bluesky_cluster(
            seed=seed, extra_interference=extra_interference
        )
    if files is None:
        files = belle2_file_population(seed=seed)
    workload = Belle2Workload(files, seed=workload_seed)
    db = ReplayDB()
    runner = WorkloadRunner(cluster, workload, db, batched=batched)

    # Warm-up phase: telemetry lands in the DB but is not measured.  The
    # layout is reshuffled every few runs so the warm-up telemetry covers
    # (file, device) combinations -- the paper's warm-up data for Geomancy
    # static likewise comes "from the dynamic random experiment".  Every
    # policy gets the identical warm-up for a fair comparison.
    shuffler = RandomDynamicPolicy(seed=seed)
    runner.ensure_files_placed(
        shuffler.initial_layout(files, cluster.device_names)
    )
    warm_runs = 0
    while db.access_count() < scale.warmup_accesses:
        runner.run_once()
        warm_runs += 1
        if warm_runs % scale.update_every == 0:
            shuffled = shuffler.update_layout(db, files, cluster.device_names)
            if shuffled:
                cluster.apply_layout(shuffled, runner.clock.now)

    # Hand the cluster over to the policy under test.
    layout = policy.initial_layout(files, cluster.device_names)
    cluster.apply_layout(layout, runner.clock.now)
    cluster.reset_stats()

    result = PolicyRunResult(policy_name=policy.name)
    run_number = 0
    while run_number < scale.runs:
        # Nothing can change the cluster between two consultations of the
        # policy, so the runs up to the next decision point are handed to
        # run_many in one group -- the batched path fuses them into a
        # single access_batch call (static policies fuse the whole
        # measured phase).  Record order, decision timing, and layouts
        # are exactly those of the one-run-at-a-time loop.
        if policy.dynamic:
            group = min(
                scale.update_every - run_number % scale.update_every,
                scale.runs - run_number,
            )
        else:
            group = scale.runs - run_number
        for run in runner.run_many(group):
            result.throughput_gbps.extend(
                r.throughput_gbps for r in run.records
            )
        run_number += group
        if policy.dynamic and run_number % scale.update_every == 0:
            current = {
                fid: device
                for fid, device in cluster.layout().items()
                if fid in {f.fid for f in files}
            }
            new_layout = policy.update_layout(
                db, files, cluster.available_device_names, current
            )
            if new_layout:
                moves = cluster.apply_layout(new_layout, runner.clock.now)
                _record_moves(db, moves)
                if moves:
                    result.movements.append(
                        (result.access_count, len(moves))
                    )
    result.usage_percent = cluster.usage_percent()
    for name in cluster.device_names:
        stats = cluster.device(name).stats
        if stats.accesses:
            result.device_throughput[name] = (
                stats.mean_throughput_gbps(),
                stats.std_throughput_gbps(),
            )
    return result


def _record_moves(db: ReplayDB, moves: list[MovementRecord]) -> None:
    if moves:
        db.insert_movements(moves)
