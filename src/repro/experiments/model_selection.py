"""The section V-G model-selection narrative.

The paper does not pick the model with the lowest people-mount error: "We
chose model 1 since many other models diverged on one or more other storage
points other then the people mount.  Model 1 is the only model that
correctly captures the rise and fall in throughput for all storage points."

This experiment reproduces that selection procedure: shortlist the
best-scoring architectures from the Table II comparison, evaluate each
shortlisted model on *every* mount (Table III style), and select the
candidate that converges everywhere with the best worst-mount error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import DRLEngine
from repro.errors import ExperimentError
from repro.experiments.reporting import ascii_table
from repro.experiments.table2_comparison import (
    Table2Row,
    collect_mount_telemetry,
    run_table2,
    table_config,
)
from repro.simulation.bluesky import BLUESKY_DEVICE_NAMES


@dataclass
class CandidateEvaluation:
    """One shortlisted model's per-mount behaviour."""

    model_number: int
    people_mare: float
    #: mount -> (mare, diverged)
    per_mount: dict[str, tuple[float, bool]] = field(default_factory=dict)

    @property
    def diverged_mounts(self) -> list[str]:
        return [m for m, (_, diverged) in self.per_mount.items() if diverged]

    @property
    def converges_everywhere(self) -> bool:
        return not self.diverged_mounts

    @property
    def worst_mount_mare(self) -> float:
        if not self.per_mount:
            raise ExperimentError("candidate was not evaluated on any mount")
        return max(mare for mare, _ in self.per_mount.values())


@dataclass
class ModelSelectionResult:
    """Shortlist + per-mount evaluations + the selected model."""

    table2: list[Table2Row]
    candidates: list[CandidateEvaluation]
    selected: int

    def to_text(self) -> str:
        rows = []
        for cand in self.candidates:
            status = (
                "converges everywhere"
                if cand.converges_everywhere
                else f"diverges on {', '.join(cand.diverged_mounts)}"
            )
            marker = " <= selected" if cand.model_number == self.selected else ""
            rows.append(
                (
                    cand.model_number,
                    f"{cand.people_mare:.1f}",
                    f"{cand.worst_mount_mare:.1f}",
                    status + marker,
                )
            )
        return ascii_table(
            ["model", "people MARE (%)", "worst-mount MARE (%)", ""],
            rows,
            title="Model selection (section V-G): per-mount check of the "
                  "Table II shortlist",
        )


def run_model_selection(
    *,
    rows: int = 4000,
    epochs: int = 60,
    seed: int = 0,
    shortlist_size: int = 4,
    mounts: tuple[str, ...] = BLUESKY_DEVICE_NAMES,
) -> ModelSelectionResult:
    """Run the full selection procedure."""
    if shortlist_size < 1:
        raise ExperimentError(
            f"shortlist_size must be >= 1, got {shortlist_size}"
        )
    people = collect_mount_telemetry("people", rows, seed=seed)
    table2 = run_table2(epochs=epochs, seed=seed, records=people)
    converged = [row for row in table2 if not row.diverged]
    if not converged:
        raise ExperimentError("every architecture diverged on people")
    shortlist = sorted(converged, key=lambda row: row.mare)[:shortlist_size]
    # Model 1 always participates: it is the paper's final pick.
    if all(row.model_number != 1 for row in shortlist):
        one = next((r for r in converged if r.model_number == 1), None)
        if one is not None:
            shortlist.append(one)

    telemetry = {
        mount: collect_mount_telemetry(mount, rows, seed=seed)
        for mount in mounts
        if mount != "people"
    }
    telemetry["people"] = people

    candidates = []
    for row in shortlist:
        evaluation = CandidateEvaluation(
            model_number=row.model_number, people_mare=row.mare
        )
        for mount in mounts:
            config = table_config(
                row.model_number, rows, epochs=epochs, seed=seed
            )
            report = DRLEngine(config).train_on_records(telemetry[mount])
            evaluation.per_mount[mount] = (
                report.test_mare, report.diverged
            )
        candidates.append(evaluation)

    viable = [c for c in candidates if c.converges_everywhere]
    pool = viable if viable else candidates
    selected = min(pool, key=lambda c: c.worst_mount_mare).model_number
    return ModelSelectionResult(
        table2=table2, candidates=candidates, selected=selected
    )
