"""Parallel experiment harness: (policy x seed) cells across processes.

Every experiment in this package is a grid of independent cells -- one
policy on one seeded environment, one model on one shared telemetry set,
one seed of an adaptation run.  Each cell rebuilds *everything* it needs
(cluster, workload, ReplayDB, policy) from its seeds, so cells share no
state and their results are a pure function of ``(cell spec, code)``.

That makes parallelism trivial and, more importantly, *safe*: running the
grid across a ``ProcessPoolExecutor`` and merging in submission order is
bit-for-bit identical to the serial loop, because the serial loop computes
exactly the same pure function per cell.  The determinism rules:

1. cells never share mutable state (each worker rebuilds from seeds);
2. every stochastic input derives from the cell's seeds;
3. merge order is the submission order, never completion order;
4. ``workers=1`` bypasses multiprocessing entirely -- the deterministic
   fallback is the plain serial loop, not a one-process pool.

Wall-clock timing fields (e.g. Table II train times) are measured in the
worker and are the only non-deterministic outputs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Any, TypeVar

from repro.errors import ExperimentError
from repro.experiments.fig5_comparison import (
    GEOMANCY,
    Fig5Result,
    collect_random_dynamic_telemetry,
    _geomancy_device_map,
)
from repro.experiments.harness import make_experiment_config
from repro.experiments.robustness import RobustnessResult, SeedOutcome
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.experiments.table2_comparison import (
    Table2Row,
    collect_mount_telemetry,
    evaluate_model,
)
from repro.nn.model_zoo import MODEL_NUMBERS

_Cell = TypeVar("_Cell")

#: the Fig. 5a (dynamic) and Fig. 5b (static) policy grids, by policy name
FIG5A_POLICIES: tuple[str, ...] = (
    "LRU", "MRU", "LFU", "random dynamic", GEOMANCY,
)
FIG5B_POLICIES: tuple[str, ...] = (
    "random static", "even spread", "Geomancy static", GEOMANCY,
)


def run_cells(
    fn: Callable[[_Cell], Any],
    cells: Sequence[_Cell],
    *,
    workers: int = 1,
) -> list[Any]:
    """Evaluate ``fn`` over ``cells``, optionally across processes.

    Results come back in cell order regardless of completion order.
    ``workers=1`` is the deterministic fallback: a plain in-process loop
    with no multiprocessing machinery at all.  ``fn`` must be a
    module-level function and each cell picklable (the spawn start method
    is used so workers inherit no forked state).
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    cells = list(cells)
    if workers == 1 or len(cells) <= 1:
        return [fn(cell) for cell in cells]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(cells)),
        mp_context=get_context("spawn"),
    ) as pool:
        return list(pool.map(fn, cells))


# -- policy cells (Fig. 5a/5b, robustness) -------------------------------

def _build_policy(name: str, scale: ExperimentScale, seed: int):
    """Rebuild one comparison policy from its cell spec.

    Imported lazily per worker; the Geomancy static warm-up DB is
    regenerated from the seed, which reproduces the serial experiment's
    telemetry exactly (it too derives only from ``(scale, seed)``).
    """
    from repro.policies.geomancy_policy import (
        GeomancyDynamicPolicy,
        GeomancyStaticPolicy,
    )
    from repro.policies.lfu import LFUPolicy
    from repro.policies.lru import LRUPolicy
    from repro.policies.mru import MRUPolicy
    from repro.policies.random_policy import (
        RandomDynamicPolicy,
        RandomStaticPolicy,
    )
    from repro.policies.static import EvenSpreadPolicy

    if name == "LRU":
        return LRUPolicy()
    if name == "MRU":
        return MRUPolicy()
    if name == "LFU":
        return LFUPolicy()
    if name == "random dynamic":
        return RandomDynamicPolicy(seed=seed)
    if name == "random static":
        return RandomStaticPolicy(seed=seed)
    if name == "even spread":
        return EvenSpreadPolicy()
    if name == GEOMANCY:
        return GeomancyDynamicPolicy(
            _geomancy_device_map(seed), make_experiment_config(scale, seed=seed)
        )
    if name == "Geomancy static":
        warmup_db = collect_random_dynamic_telemetry(scale=scale, seed=seed)
        return GeomancyStaticPolicy(
            warmup_db,
            _geomancy_device_map(seed),
            make_experiment_config(scale, seed=seed),
        )
    raise ExperimentError(f"unknown comparison policy {name!r}")


def _policy_cell(cell: tuple[str, ExperimentScale, int]):
    """One (policy, scale, seed) measurement, rebuilt entirely in-worker."""
    from repro.experiments.harness import run_policy_experiment

    name, scale, seed = cell
    policy = _build_policy(name, scale, seed)
    return run_policy_experiment(policy, scale=scale, seed=seed)


def _run_fig5_grid(
    policies: Sequence[str],
    *,
    scale: ExperimentScale,
    seed: int,
    workers: int,
) -> Fig5Result:
    cells = [(name, scale, seed) for name in policies]
    results = run_cells(_policy_cell, cells, workers=workers)
    return Fig5Result(
        results={name: result for name, result in zip(policies, results)}
    )


def run_fig5a(
    *, scale: ExperimentScale = TEST_SCALE, seed: int = 0, workers: int = 1
) -> Fig5Result:
    """Fig. 5a with each policy measured in its own process."""
    return _run_fig5_grid(
        FIG5A_POLICIES, scale=scale, seed=seed, workers=workers
    )


def run_fig5b(
    *, scale: ExperimentScale = TEST_SCALE, seed: int = 0, workers: int = 1
) -> Fig5Result:
    """Fig. 5b with each policy measured in its own process."""
    return _run_fig5_grid(
        FIG5B_POLICIES, scale=scale, seed=seed, workers=workers
    )


def run_robustness(
    *,
    seeds: tuple[int, ...] = (0, 1, 2, 3),
    scale: ExperimentScale = TEST_SCALE,
    workers: int = 1,
) -> RobustnessResult:
    """Fig. 5a across seeds, parallelized over (policy x seed) cells.

    The grid is flattened to ``len(seeds) * len(FIG5A_POLICIES)`` cells --
    finer-grained than one-task-per-seed, so a handful of seeds still
    saturates the pool -- and regrouped by seed in submission order.
    """
    if not seeds:
        raise ExperimentError("need at least one seed")
    cells = [
        (name, scale, seed) for seed in seeds for name in FIG5A_POLICIES
    ]
    results = run_cells(_policy_cell, cells, workers=workers)
    outcomes = []
    per_seed = len(FIG5A_POLICIES)
    for i, seed in enumerate(seeds):
        chunk = results[i * per_seed : (i + 1) * per_seed]
        fig5 = Fig5Result(
            results={
                name: result for name, result in zip(FIG5A_POLICIES, chunk)
            }
        )
        best = fig5.best_baseline()
        outcomes.append(
            SeedOutcome(
                seed=seed,
                geomancy_gbps=fig5.mean(GEOMANCY),
                best_baseline=best,
                best_baseline_gbps=fig5.mean(best),
            )
        )
    return RobustnessResult(outcomes=outcomes)


# -- shard cells (scale sweep) -------------------------------------------

def _scale_cell(spec):
    """One shard decision-agent span, rebuilt entirely in-worker."""
    from repro.experiments.scale import run_shard_span

    return run_shard_span(spec)


def run_scale_spans(specs: Sequence[Any], *, workers: int = 1) -> list[Any]:
    """Execute shard spans (``ShardSpanSpec`` cells) across processes.

    Each span rebuilds its cluster slice, file slice, masked workload,
    ReplayDB, and agent purely from its spec, so submission-order merge
    makes any worker count bit-for-bit identical to the serial loop.
    """
    return run_cells(_scale_cell, list(specs), workers=workers)


# -- model cells (Table II) ----------------------------------------------

def _model_cell(cell: tuple[int, list, int, int]) -> Table2Row:
    """Train and score one Table-I architecture on shared telemetry."""
    model_number, records, epochs, seed = cell
    return evaluate_model(model_number, records, epochs=epochs, seed=seed)


def run_table2(
    *,
    rows: int = 12_000,
    epochs: int = 200,
    seed: int = 0,
    model_numbers: tuple[int, ...] = MODEL_NUMBERS,
    records: list | None = None,
    workers: int = 1,
) -> list[Table2Row]:
    """Table II with one model-training cell per process.

    The shared people-mount telemetry is collected once and shipped
    (pickled) to each worker; training is deterministic per
    ``(model, records, epochs, seed)``, so only the wall-clock timing
    columns differ from a serial run.
    """
    if records is None:
        records = collect_mount_telemetry("people", rows, seed=seed)
    cells = [(number, records, epochs, seed) for number in model_numbers]
    return run_cells(_model_cell, cells, workers=workers)


# -- seed cells (Fig. 6 sweep) -------------------------------------------

def _fig6_cell(cell: tuple[ExperimentScale, int]):
    """One competing-workload adaptation run."""
    from repro.experiments.fig6_adaptation import run_fig6

    scale, seed = cell
    return run_fig6(scale=scale, seed=seed)


def run_fig6_sweep(
    *,
    seeds: Iterable[int] = (0, 1, 2, 3),
    scale: ExperimentScale = TEST_SCALE,
    workers: int = 1,
) -> dict[int, Any]:
    """Fig. 6 adaptation across several seeds, one run per process."""
    seeds = tuple(seeds)
    if not seeds:
        raise ExperimentError("need at least one seed")
    cells = [(scale, seed) for seed in seeds]
    results = run_cells(_fig6_cell, cells, workers=workers)
    return dict(zip(seeds, results))
