"""Sharded multi-agent scale-out: thousands of devices, millions of files.

The paper runs one decision agent over one 6-device testbed.  This
experiment partitions a large cluster into shards
(:mod:`repro.sharding`): each shard runs its *own* full decision agent
-- engine, feature pipeline, ReplayDB slice -- over its own devices and
files, driven by the batched inner loop, and the spans are independent
seed-rebuilt cells, so ``experiments/parallel.py`` can execute them
process-parallel with submission-order merge.

At each fusion boundary the shards publish :class:`ShardDigest`
summaries and the :class:`ShardCoordinator` arbitrates cross-shard move
proposals against global capacity and throughput-margin invariants; the
accepted moves rebalance the partition for the next round.

Cost model (why sharding wins without extra cores): the decision epoch's
dominant term is the probe tensor -- (files with telemetry) x
(probe samples) x (devices).  Splitting both factors across ``n`` shards
shrinks the summed probe work to ``1/n`` of the unsharded epoch, so the
speedup is algorithmic; process parallelism stacks on top where cores
exist.

``shards=1`` is the legacy path: the masked workload view passes every
op through unchanged, so the run is bit-for-bit identical to the
unsharded oracle -- fingerprint-checked by the benchmark and the test
suite (the disabled-twin discipline).
"""

from __future__ import annotations

import hashlib
import json
import resource
import sys
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.config import GeomancyConfig
from repro.errors import ExperimentError, ShardingError
from repro.experiments.reporting import ascii_table
from repro.policies.geomancy_policy import GeomancyDynamicPolicy
from repro.replaydb.db import ReplayDB
from repro.sharding import (
    CrossShardMove,
    ShardCoordinator,
    ShardDigest,
    ShardPartitioner,
    select_exports,
    verify_moves,
)
from repro.sharding.coordinator import ExportCandidate
from repro.simulation.topologies import make_scaled_cluster
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import FileSpec, belle2_file_population
from repro.workloads.runner import WorkloadRunner


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (high-water mark)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes
        return int(peak)
    return int(peak) * 1024


@dataclass(frozen=True)
class ScalePoint:
    """One cell of the scale sweep: a cluster size and a shard count."""

    devices: int
    files: int
    shards: int = 1
    seed: int = 0
    #: unmeasured runs that seed each shard's ReplayDB slice
    warmup_runs: int = 2
    #: measured runs per fusion round
    runs: int = 10
    #: runs between decision-agent consultations
    update_every: int = 5
    #: fusion rounds (coordinator arbitration between consecutive rounds)
    rounds: int = 1
    files_per_run: int = 8
    #: global training-row budget, split evenly across shards
    training_rows: int = 400
    epochs: int = 2
    probe_samples: int = 4
    capacity_gb: int = 100
    #: apply the skill/ranking actionability gates; the benchmark pair
    #: runs with gates off so both sides always pay the full
    #: train+propose epoch (cost determinism), documented as measuring
    #: complete decision epochs
    gates: bool = True
    #: worst-served files each shard nominates per fusion boundary
    export_limit: int = 4
    margin: float = 0.10
    max_moves: int = 8

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {self.shards}")
        if self.devices < self.shards:
            raise ExperimentError(
                f"need >= {self.shards} devices for {self.shards} shards, "
                f"got {self.devices}"
            )
        if self.files < 2:
            raise ExperimentError(f"files must be >= 2, got {self.files}")
        if self.warmup_runs < 0:
            raise ExperimentError(
                f"warmup_runs must be >= 0, got {self.warmup_runs}"
            )
        if self.runs < 1:
            raise ExperimentError(f"runs must be >= 1, got {self.runs}")
        if self.update_every < 1:
            raise ExperimentError(
                f"update_every must be >= 1, got {self.update_every}"
            )
        if self.rounds < 1:
            raise ExperimentError(f"rounds must be >= 1, got {self.rounds}")
        if self.files_per_run < 1:
            raise ExperimentError(
                f"files_per_run must be >= 1, got {self.files_per_run}"
            )
        if self.export_limit < 0:
            raise ExperimentError(
                f"export_limit must be >= 0, got {self.export_limit}"
            )


@dataclass(frozen=True)
class ShardSpanSpec:
    """One shard's span of one fusion round -- a picklable parallel cell.

    Everything a worker needs to rebuild the shard from scratch: the
    sweep point, the shard id, the run-index offset of this round, and
    the accumulated cross-shard reassignments ``(fid, dst_shard)``.
    """

    point: ScalePoint
    shard: int
    run_offset: int = 0
    reassigned: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class ShardSpanResult:
    """What one shard's agent did and measured over one span."""

    shard: int
    accesses: int
    measured_accesses: int
    decision_epochs: int
    decision_seconds: float
    simulation_seconds: float
    mean_throughput_gbps: float
    moved_files: int
    exports: tuple[ExportCandidate, ...]
    free_bytes: dict[str, int]
    fingerprint: str


class ShardWorkloadView:
    """A shard's masked view of the *global* access stream.

    Wraps the full-population :class:`Belle2Workload` and filters each
    run's op arrays down to the shard's files with a boolean fid lookup
    table, so the union of all shards' streams is exactly the global op
    multiset ("same workload" across shard counts).  With every file in
    the mask the arrays pass through value-identical -- the ``shards=1``
    bit-for-bit identity the benchmark fingerprints.
    """

    def __init__(
        self,
        workload: Belle2Workload,
        shard_files: list[FileSpec],
        total_files: int,
    ) -> None:
        self._workload = workload
        self.files = list(shard_files)
        mask = np.zeros(total_files, dtype=bool)
        for spec in self.files:
            if not 0 <= spec.fid < total_files:
                raise ShardingError(
                    f"fid {spec.fid} outside the dense population "
                    f"[0, {total_files})"
                )
            mask[spec.fid] = True
        self._mask = mask

    @property
    def fids(self) -> list[int]:
        return [f.fid for f in self.files]

    def run_arrays(self, run_index: int):
        fids, rb, wb = self._workload.run_arrays(run_index)
        sel = self._mask[fids]
        return fids[sel], rb[sel], wb[sel]

    def run(self, run_index: int):
        return [
            op for op in self._workload.run(run_index) if self._mask[op.fid]
        ]

    def expected_ops_per_run(self) -> float:
        total = len(self._workload.files)
        return self._workload.expected_ops_per_run() * len(self.files) / total


def _shard_config(point: ScalePoint, shard: int) -> GeomancyConfig:
    """The decision-agent config for one shard of a point.

    Shard 0 of a 1-shard point is exactly the unsharded config, so the
    identity fingerprint holds by construction.  The global training-row
    budget is split across shards (each agent trains on its slice), and
    with gates off the actionability MARE ceiling is lifted so every
    consultation pays the full train+propose epoch on both sides of the
    speedup pair.
    """
    return GeomancyConfig(
        training_rows=max(10, point.training_rows // point.shards),
        epochs=point.epochs,
        probe_samples=point.probe_samples,
        cooldown_runs=point.update_every,
        require_skill=point.gates,
        require_ranking_sanity=point.gates,
        max_actionable_mare=300.0 if point.gates else 1e18,
        shards=point.shards,
        cross_shard_margin=point.margin,
        max_cross_shard_moves=point.max_moves,
        seed=point.seed + shard,
    )


def _run_span(
    point: ScalePoint,
    *,
    shard: int,
    config: GeomancyConfig,
    cluster,
    files: list[FileSpec],
    workload,
    run_offset: int,
) -> ShardSpanResult:
    """Drive one decision agent over one span (the harness loop shape).

    ``workload`` is either the raw global :class:`Belle2Workload` (the
    unsharded oracle) or a :class:`ShardWorkloadView`; everything else
    is identical, which is what makes the ``shards=1`` fingerprint
    comparison meaningful.
    """
    db = ReplayDB()
    runner = WorkloadRunner(cluster, workload, db)
    runner.next_run_index = run_offset
    device_by_fsid = {
        cluster.device(name).fsid: name for name in cluster.device_names
    }
    policy = GeomancyDynamicPolicy(device_by_fsid, config)
    runner.ensure_files_placed(
        policy.initial_layout(files, cluster.device_names)
    )
    digest = hashlib.sha256()

    def observe(run_results) -> tuple[int, float]:
        count, tp_sum = 0, 0.0
        chunk: list[float] = []
        for run in run_results:
            for record in run.records:
                tp = record.throughput_gbps
                chunk.append(tp)
                tp_sum += tp
                count += 1
        digest.update(repr(chunk).encode())
        return count, tp_sum

    accesses = 0
    simulation_seconds = 0.0
    if point.warmup_runs:
        t0 = time.perf_counter()
        warm = runner.run_many(point.warmup_runs)
        simulation_seconds += time.perf_counter() - t0
        count, _ = observe(warm)
        accesses += count
    cluster.reset_stats()

    fidset = {f.fid for f in files}
    measured_accesses = 0
    throughput_sum = 0.0
    decision_epochs = 0
    decision_seconds = 0.0
    moved_files = 0
    run_number = 0
    while run_number < point.runs:
        group = min(
            point.update_every - run_number % point.update_every,
            point.runs - run_number,
        )
        t0 = time.perf_counter()
        batch = runner.run_many(group)
        simulation_seconds += time.perf_counter() - t0
        count, tp_sum = observe(batch)
        accesses += count
        measured_accesses += count
        throughput_sum += tp_sum
        run_number += group
        if run_number % point.update_every == 0:
            t0 = time.perf_counter()
            current = {
                fid: device
                for fid, device in cluster.layout().items()
                if fid in fidset
            }
            new_layout = policy.update_layout(
                db, files, cluster.available_device_names, current
            )
            if new_layout:
                moves = cluster.apply_layout(new_layout, runner.clock.now)
                if moves:
                    db.insert_movements(moves)
                    moved_files += len(moves)
            decision_seconds += time.perf_counter() - t0
            decision_epochs += 1

    digest.update(
        repr(
            (sorted(cluster.layout().items()), runner.clock.now, accesses)
        ).encode()
    )
    exports = select_exports(
        policy.engine.last_chosen_scores,
        {f.fid: f.size_bytes for f in files},
        shard=shard,
        limit=point.export_limit,
    )
    free_bytes = {
        name: int(
            cluster.device(name).spec.capacity_bytes
            - cluster.stored_bytes(name)
        )
        for name in cluster.available_device_names
    }
    return ShardSpanResult(
        shard=shard,
        accesses=accesses,
        measured_accesses=measured_accesses,
        decision_epochs=decision_epochs,
        decision_seconds=decision_seconds,
        simulation_seconds=simulation_seconds,
        mean_throughput_gbps=(
            throughput_sum / measured_accesses if measured_accesses else 0.0
        ),
        moved_files=moved_files,
        exports=exports,
        free_bytes=free_bytes,
        fingerprint=digest.hexdigest(),
    )


def _device_index(name: str) -> int:
    """Invert the ``dev{idx:05d}`` naming of the scaled factory."""
    return int(name[3:])


def run_shard_span(spec: ShardSpanSpec) -> ShardSpanResult:
    """One shard's span, rebuilt entirely from the spec (a parallel cell).

    The shard's devices come from the same pure per-index factory as the
    full cluster (``make_scaled_cluster`` slice), its files from the
    deterministic partitioner plus the accumulated cross-shard
    reassignments, and its op stream from the masked global workload --
    so any worker process arrives at the identical span.
    """
    point = spec.point
    files_all = belle2_file_population(point.files, seed=point.seed)
    names = [f"dev{i:05d}" for i in range(point.devices)]
    partitioner = ShardPartitioner(point.shards, seed=point.seed)
    assignment = partitioner.assign(names, files_all)
    if spec.reassigned:
        assignment = partitioner.rebalance(assignment, spec.reassigned)
    indices = sorted(
        _device_index(name) for name in assignment.devices_of(spec.shard)
    )
    cluster = make_scaled_cluster(
        point.devices,
        seed=point.seed,
        indices=indices,
        capacity_gb=point.capacity_gb,
    )
    owned = set(assignment.files_of(spec.shard))
    files = [f for f in files_all if f.fid in owned]
    if not files:
        raise ShardingError(
            f"shard {spec.shard} owns no files -- rebalance drained it"
        )
    workload = Belle2Workload(
        files_all, seed=point.seed + 1, files_per_run=point.files_per_run
    )
    view = ShardWorkloadView(workload, files, point.files)
    return _run_span(
        point,
        shard=spec.shard,
        config=_shard_config(point, spec.shard),
        cluster=cluster,
        files=files,
        workload=view,
        run_offset=spec.run_offset,
    )


@dataclass(frozen=True)
class ScalePointResult:
    """Aggregated outcome of one sweep point (all rounds, all shards)."""

    point: ScalePoint
    accesses: int
    measured_accesses: int
    decision_epochs: int
    decision_seconds: float
    simulation_seconds: float
    wall_seconds: float
    mean_throughput_gbps: float
    moved_files: int
    cross_shard_moves: int
    cross_shard_bytes: int
    peak_rss_bytes: int
    fingerprint: str

    @property
    def total_seconds(self) -> float:
        """Decision + simulation time -- the epoch cost sharding targets."""
        return self.decision_seconds + self.simulation_seconds

    @property
    def accesses_per_second(self) -> float:
        if self.simulation_seconds <= 0.0:
            return 0.0
        return self.accesses / self.simulation_seconds

    def to_json(self) -> dict:
        return {
            **asdict(self.point),
            "accesses": self.accesses,
            "measured_accesses": self.measured_accesses,
            "decision_epochs": self.decision_epochs,
            "decision_seconds": self.decision_seconds,
            "simulation_seconds": self.simulation_seconds,
            "total_seconds": self.total_seconds,
            "wall_seconds": self.wall_seconds,
            "accesses_per_second": self.accesses_per_second,
            "mean_throughput_gbps": self.mean_throughput_gbps,
            "moved_files": self.moved_files,
            "cross_shard_moves": self.cross_shard_moves,
            "cross_shard_bytes": self.cross_shard_bytes,
            "peak_rss_bytes": self.peak_rss_bytes,
            "fingerprint": self.fingerprint,
        }


def run_scale_point(
    point: ScalePoint, *, workers: int = 1
) -> ScalePointResult:
    """Run every shard of every fusion round of one sweep point.

    Rounds are sequential (round ``r+1``'s partition depends on round
    ``r``'s arbitration); within a round the shard spans are independent
    cells executed through :func:`repro.experiments.parallel.run_scale_spans`
    and merged in submission order, so any worker count yields identical
    results.  Between rounds the coordinator arbitrates the shards'
    export digests and every accepted move is independently re-verified
    before it rebalances the partition.
    """
    from repro.experiments.parallel import run_scale_spans

    t_start = time.perf_counter()
    coordinator = ShardCoordinator(
        margin=point.margin, max_moves=point.max_moves
    )
    # Partition state lives in `reassigned`; every span re-derives the
    # full assignment from (point, reassigned), so no partitioner object
    # needs to cross the process boundary.
    reassigned: tuple[tuple[int, int], ...] = ()
    runs_per_round = point.warmup_runs + point.runs
    accesses = 0
    measured_accesses = 0
    decision_epochs = 0
    decision_seconds = 0.0
    simulation_seconds = 0.0
    throughput_weighted = 0.0
    moved_files = 0
    cross_moves: list[CrossShardMove] = []
    fingerprints: list[tuple[int, int, str]] = []
    for round_index in range(point.rounds):
        specs = [
            ShardSpanSpec(
                point=point,
                shard=shard,
                run_offset=round_index * runs_per_round,
                reassigned=reassigned,
            )
            for shard in range(point.shards)
        ]
        spans = run_scale_spans(specs, workers=workers)
        for span in spans:
            accesses += span.accesses
            measured_accesses += span.measured_accesses
            decision_epochs += span.decision_epochs
            decision_seconds += span.decision_seconds
            simulation_seconds += span.simulation_seconds
            throughput_weighted += (
                span.mean_throughput_gbps * span.measured_accesses
            )
            moved_files += span.moved_files
            fingerprints.append((round_index, span.shard, span.fingerprint))
        if point.shards > 1 and round_index < point.rounds - 1:
            digests = [
                ShardDigest(
                    shard=span.shard,
                    mean_throughput_gbps=span.mean_throughput_gbps,
                    free_bytes=span.free_bytes,
                    exports=span.exports,
                )
                for span in spans
            ]
            moves = coordinator.arbitrate(digests)
            verify_moves(
                digests, moves, margin=point.margin, max_moves=point.max_moves
            )
            cross_moves.extend(moves)
            reassigned = reassigned + tuple(
                (move.fid, move.dst_shard) for move in moves
            )
    combined = hashlib.sha256(repr(tuple(fingerprints)).encode()).hexdigest()
    return ScalePointResult(
        point=point,
        accesses=accesses,
        measured_accesses=measured_accesses,
        decision_epochs=decision_epochs,
        decision_seconds=decision_seconds,
        simulation_seconds=simulation_seconds,
        wall_seconds=time.perf_counter() - t_start,
        mean_throughput_gbps=(
            throughput_weighted / measured_accesses
            if measured_accesses
            else 0.0
        ),
        moved_files=moved_files,
        cross_shard_moves=len(cross_moves),
        cross_shard_bytes=sum(m.size_bytes for m in cross_moves),
        peak_rss_bytes=_peak_rss_bytes(),
        fingerprint=combined,
    )


def run_unsharded_oracle(point: ScalePoint) -> ScalePointResult:
    """The legacy single-agent path: raw workload, no view, no partition.

    Only valid for 1-shard points; its fingerprint must match
    :func:`run_scale_point` on the same point bit for bit (the masked
    view with an all-true mask changes nothing).
    """
    if point.shards != 1:
        raise ExperimentError(
            f"the unsharded oracle needs shards=1, got {point.shards}"
        )
    t_start = time.perf_counter()
    runs_per_round = point.warmup_runs + point.runs
    accesses = 0
    measured_accesses = 0
    decision_epochs = 0
    decision_seconds = 0.0
    simulation_seconds = 0.0
    throughput_weighted = 0.0
    moved_files = 0
    fingerprints: list[tuple[int, int, str]] = []
    for round_index in range(point.rounds):
        files = belle2_file_population(point.files, seed=point.seed)
        cluster = make_scaled_cluster(
            point.devices, seed=point.seed, capacity_gb=point.capacity_gb
        )
        workload = Belle2Workload(
            files, seed=point.seed + 1, files_per_run=point.files_per_run
        )
        span = _run_span(
            point,
            shard=0,
            config=_shard_config(point, 0),
            cluster=cluster,
            files=files,
            workload=workload,
            run_offset=round_index * runs_per_round,
        )
        accesses += span.accesses
        measured_accesses += span.measured_accesses
        decision_epochs += span.decision_epochs
        decision_seconds += span.decision_seconds
        simulation_seconds += span.simulation_seconds
        throughput_weighted += span.mean_throughput_gbps * span.measured_accesses
        moved_files += span.moved_files
        fingerprints.append((round_index, 0, span.fingerprint))
    combined = hashlib.sha256(repr(tuple(fingerprints)).encode()).hexdigest()
    return ScalePointResult(
        point=point,
        accesses=accesses,
        measured_accesses=measured_accesses,
        decision_epochs=decision_epochs,
        decision_seconds=decision_seconds,
        simulation_seconds=simulation_seconds,
        wall_seconds=time.perf_counter() - t_start,
        mean_throughput_gbps=(
            throughput_weighted / measured_accesses
            if measured_accesses
            else 0.0
        ),
        moved_files=moved_files,
        cross_shard_moves=0,
        cross_shard_bytes=0,
        peak_rss_bytes=_peak_rss_bytes(),
        fingerprint=combined,
    )


_SWEEP_HEADERS = (
    "devices", "files", "shards", "accesses", "epochs",
    "decision s", "sim s", "GB/s", "xmoves", "peak RSS MB",
)


def _sweep_row(result: ScalePointResult) -> list:
    point = result.point
    return [
        point.devices,
        point.files,
        point.shards,
        result.accesses,
        result.decision_epochs,
        f"{result.decision_seconds:.3f}",
        f"{result.simulation_seconds:.3f}",
        f"{result.mean_throughput_gbps:.3f}",
        result.cross_shard_moves,
        f"{result.peak_rss_bytes / 1e6:.0f}",
    ]


@dataclass
class ScaleSweepResult:
    """A devices x files x shards sweep."""

    results: list[ScalePointResult] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "benchmark": "scale_sweep",
            "points": [result.to_json() for result in self.results],
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def to_text(self) -> str:
        return ascii_table(
            _SWEEP_HEADERS,
            [_sweep_row(result) for result in self.results],
            title="Scale sweep (sharded multi-agent)",
        )


def run_scale(
    points: list[ScalePoint] | tuple[ScalePoint, ...], *, workers: int = 1
) -> ScaleSweepResult:
    """Run a sweep of scale points (sequentially; shards parallelize)."""
    if not points:
        raise ExperimentError("need at least one scale point")
    return ScaleSweepResult(
        results=[run_scale_point(point, workers=workers) for point in points]
    )


@dataclass
class ScaleBenchmarkResult:
    """The shipped scale benchmark: identity check + speedup pair + sweep."""

    oracle: ScalePointResult
    sharded_once: ScalePointResult
    unsharded: ScalePointResult
    sharded: ScalePointResult
    sweep: ScaleSweepResult

    @property
    def identical_at_1_shard(self) -> bool:
        return self.oracle.fingerprint == self.sharded_once.fingerprint

    @property
    def decision_epoch_speedup(self) -> float:
        if self.sharded.decision_seconds <= 0.0:
            return float("inf")
        return self.unsharded.decision_seconds / self.sharded.decision_seconds

    @property
    def simulation_throughput_speedup(self) -> float:
        base = self.unsharded.accesses_per_second
        if base <= 0.0:
            return float("inf")
        return self.sharded.accesses_per_second / base

    @property
    def overall_speedup(self) -> float:
        if self.sharded.total_seconds <= 0.0:
            return float("inf")
        return self.unsharded.total_seconds / self.sharded.total_seconds

    def to_json(self) -> dict:
        return {
            "benchmark": "scale",
            "identity": {
                "oracle_fingerprint": self.oracle.fingerprint,
                "sharded_fingerprint": self.sharded_once.fingerprint,
                "identical_at_1_shard": self.identical_at_1_shard,
            },
            "pair": {
                "unsharded": self.unsharded.to_json(),
                "sharded": self.sharded.to_json(),
                "decision_epoch_speedup": self.decision_epoch_speedup,
                "simulation_throughput_speedup": (
                    self.simulation_throughput_speedup
                ),
                "overall_speedup": self.overall_speedup,
            },
            "sweep": self.sweep.to_json()["points"],
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def to_text(self) -> str:
        pair = ascii_table(
            _SWEEP_HEADERS,
            [_sweep_row(self.unsharded), _sweep_row(self.sharded)],
            title="Speedup pair (same workload, 1 vs N shards)",
        )
        lines = [
            pair,
            f"decision-epoch speedup:       "
            f"{self.decision_epoch_speedup:.2f}x",
            f"simulation throughput ratio:  "
            f"{self.simulation_throughput_speedup:.2f}x",
            f"overall epoch speedup:        {self.overall_speedup:.2f}x",
            f"shards=1 identical to legacy: {self.identical_at_1_shard}",
            "",
            self.sweep.to_text(),
        ]
        return "\n".join(lines)


def run_scale_benchmark(
    *, seed: int = 0, workers: int = 1, big_sweep: bool = True
) -> ScaleBenchmarkResult:
    """The acceptance benchmark behind ``BENCH_scale.json``.

    Three parts: (1) the shards=1 fingerprint identity against the raw
    unsharded oracle, (2) the 1-vs-8-shard speedup pair on an identical
    workload sized so the probe tensor dominates the epoch, and (3) a
    sweep point at >= 10^3 devices x 10^5 files x 16 shards proving the
    partitioned system holds at scale within a CI budget.
    """
    identity_point = ScalePoint(
        devices=16,
        files=64,
        shards=1,
        seed=seed,
        warmup_runs=2,
        runs=6,
        update_every=3,
        rounds=2,
        files_per_run=4,
        training_rows=200,
        epochs=2,
        probe_samples=4,
        gates=False,
    )
    oracle = run_unsharded_oracle(identity_point)
    sharded_once = run_scale_point(identity_point, workers=workers)

    pair_point = ScalePoint(
        devices=512,
        files=4096,
        shards=1,
        seed=seed,
        warmup_runs=3,
        runs=10,
        update_every=5,
        rounds=1,
        files_per_run=32,
        training_rows=400,
        epochs=2,
        probe_samples=4,
        gates=False,
    )
    unsharded = run_scale_point(pair_point, workers=workers)
    sharded = run_scale_point(
        replace(pair_point, shards=8), workers=workers
    )

    sweep = ScaleSweepResult(results=[sharded_once, unsharded, sharded])
    if big_sweep:
        big_point = ScalePoint(
            devices=1024,
            files=100_000,
            shards=16,
            seed=seed,
            warmup_runs=2,
            runs=6,
            update_every=3,
            rounds=1,
            files_per_run=32,
            training_rows=400,
            epochs=1,
            probe_samples=4,
            gates=False,
        )
        sweep.results.append(run_scale_point(big_point, workers=workers))
    return ScaleBenchmarkResult(
        oracle=oracle,
        sharded_once=sharded_once,
        unsharded=unsharded,
        sharded=sharded,
        sweep=sweep,
    )
