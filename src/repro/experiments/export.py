"""Export experiment series for external plotting.

The ASCII sparklines in the benchmark outputs summarize shape; for real
figures, these helpers dump the measured series to CSV: one bucketed
throughput series per policy for Fig. 5, and the two workload series (with
the disturbance marker) for Fig. 6.
"""

from __future__ import annotations

import csv
import os

from repro.errors import ExperimentError
from repro.experiments.fig5_comparison import Fig5Result
from repro.experiments.fig6_adaptation import Fig6Result
from repro.experiments.reporting import bucket_series


def export_fig5_csv(
    result: Fig5Result, path: str | os.PathLike, *, bucket: int = 500
) -> int:
    """Write ``access_number, <policy columns...>`` rows.

    Policies may have slightly different series lengths (dynamic runs vary
    in ops per run); rows are emitted up to the longest series, with empty
    cells where a policy's series has ended.  Returns the row count.
    """
    if not result.results:
        raise ExperimentError("no policy results to export")
    series = {}
    for name, run in result.results.items():
        edges, means = bucket_series(run.throughput_gbps, bucket)
        series[name] = dict(zip(edges.tolist(), means.tolist()))
    all_edges = sorted({edge for s in series.values() for edge in s})
    names = sorted(series)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["access_number"] + names)
        for edge in all_edges:
            writer.writerow(
                [edge] + [
                    f"{series[name][edge]:.6f}" if edge in series[name] else ""
                    for name in names
                ]
            )
    return len(all_edges)


def export_fig6_csv(
    result: Fig6Result, path: str | os.PathLike, *, bucket: int = 500
) -> int:
    """Write the tuned/competing series with a disturbance column."""
    tuned_edges, tuned_means = bucket_series(result.tuned_gbps, bucket)
    comp_edges, comp_means = bucket_series(result.competing_gbps, bucket)
    competing = dict(zip(comp_edges.tolist(), comp_means.tolist()))
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["tuned_access_number", "tuned_gbps", "competing_gbps",
             "after_disturbance"]
        )
        rows = 0
        for edge, mean in zip(tuned_edges.tolist(), tuned_means.tolist()):
            # Align the competitor by its own access count relative to the
            # disturbance point on the tuned axis.
            comp_edge = edge - result.disturbance_access
            comp_value = competing.get(comp_edge, "")
            writer.writerow(
                [
                    edge,
                    f"{mean:.6f}",
                    f"{comp_value:.6f}" if comp_value != "" else "",
                    int(edge > result.disturbance_access),
                ]
            )
            rows += 1
    return rows
