"""Table II: comparing all 23 architectures on people-mount telemetry.

"In Table II, we report the accuracy of all 23 models when modeling
throughput on the people mount."  Each model is trained with the shared
protocol (chronological 60/20/20 split, plain SGD, fixed epochs) and scored
by mean/std absolute relative error, wall-clock training time, and
prediction time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine
from repro.experiments.reporting import ascii_table, mean_std
from repro.nn.model_zoo import MODEL_NUMBERS
from repro.replaydb.records import AccessRecord
from repro.simulation.bluesky import make_bluesky_cluster
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import belle2_file_population
from repro.workloads.runner import WorkloadRunner

#: The Z = 6 telemetry features of the paper's bullet list (section V-D):
#: the access-accuracy experiments (Tables II and III) use the full
#: timestamp pairs, exactly as the paper describes its model inputs.  (The
#: live placement engine swaps the close timestamp for identity features
#: to keep the per-location probe informative -- see
#: :mod:`repro.features.pipeline`.)
TABLE_FEATURES: tuple[str, ...] = ("rb", "wb", "ots", "otms", "cts", "ctms")

#: smoothing window for the accuracy experiments; the paper smooths its
#: 12,000-entry training sets with a moving average (section V-E)
TABLE_SMOOTHING_WINDOW = 200


def collect_mount_telemetry(
    mount: str, rows: int, *, seed: int = 0, workload_seed: int = 1
) -> list[AccessRecord]:
    """BELLE II telemetry with every file pinned to one mount."""
    cluster = make_bluesky_cluster(seed=seed)
    files = belle2_file_population(seed=seed)
    runner = WorkloadRunner(
        cluster, Belle2Workload(files, seed=workload_seed)
    )
    runner.ensure_files_placed({f.fid: mount for f in files})
    runner.warm_up(rows)
    return runner.db.recent_accesses(rows)


@dataclass
class Table2Row:
    """One model's scores."""

    model_number: int
    diverged: bool
    mare: float
    mare_std: float
    train_seconds: float
    predict_ms: float

    def error_cell(self) -> str:
        if self.diverged:
            return "Diverged"
        return mean_std(self.mare, self.mare_std)


def table_config(
    model_number: int, n_records: int, *, epochs: int = 200, seed: int = 0
) -> GeomancyConfig:
    """The shared Table II/III training configuration."""
    return GeomancyConfig(
        model_number=model_number,
        features=TABLE_FEATURES,
        smoothing_window=TABLE_SMOOTHING_WINDOW,
        epochs=epochs,
        training_rows=max(n_records, 10),
        learning_rate=0.05,
        seed=seed,
    )


def evaluate_model(
    model_number: int,
    records: list[AccessRecord],
    *,
    epochs: int = 200,
    seed: int = 0,
) -> Table2Row:
    """Train and score one Table-I architecture on shared telemetry."""
    config = table_config(model_number, len(records), epochs=epochs, seed=seed)
    engine = DRLEngine(config)
    report = engine.train_on_records(records)
    # Prediction time: one probe-sized forward pass (six rows, one per
    # candidate location), averaged over repeats.
    batch = engine.pipeline.transform_features(records[-6:])
    repeats = 20
    start = time.perf_counter()
    for _ in range(repeats):
        engine.model.predict(batch)
    predict_ms = (time.perf_counter() - start) / repeats * 1000.0
    return Table2Row(
        model_number=model_number,
        diverged=report.diverged,
        mare=report.test_mare,
        mare_std=report.test_mare_std,
        train_seconds=report.train_seconds,
        predict_ms=predict_ms,
    )


def run_table2(
    *,
    rows: int = 12_000,
    epochs: int = 200,
    seed: int = 0,
    model_numbers: tuple[int, ...] = MODEL_NUMBERS,
    records: list[AccessRecord] | None = None,
    workers: int = 1,
) -> list[Table2Row]:
    """Regenerate Table II (optionally for a subset of models).

    ``workers > 1`` trains each architecture in its own process via
    :mod:`repro.experiments.parallel` (accuracy columns are deterministic;
    only wall-clock timings differ from a serial run).
    """
    if records is None:
        records = collect_mount_telemetry("people", rows, seed=seed)
    if workers > 1:
        from repro.experiments import parallel

        return parallel.run_table2(
            epochs=epochs, seed=seed, model_numbers=model_numbers,
            records=records, workers=workers,
        )
    return [
        evaluate_model(number, records, epochs=epochs, seed=seed)
        for number in model_numbers
    ]


def table2_text(rows: list[Table2Row]) -> str:
    body = [
        (
            row.model_number,
            row.error_cell(),
            f"{row.train_seconds:.3f}",
            f"{row.predict_ms:.3f}",
        )
        for row in rows
    ]
    return ascii_table(
        ["Model", "Mean abs. relative error (%)", "Training time (s)",
         "Prediction time (ms)"],
        body,
        title="Table II -- model comparison on the people mount",
    )
