"""Fig. 4: correlation between raw EOS access features and throughput.

"We identified six features from the workload traces in the EOS system ...
We choose features (orange) that are commonly found in scientific systems
that also happen to be positively correlated."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import ascii_table
from repro.features.correlation import CorrelationReport, feature_correlations
from repro.workloads.eos import EOSTraceSynthesizer

#: the features the paper highlights in orange (the chosen set, raw fields)
CHOSEN_FIELDS: tuple[str, ...] = (
    "rb", "wb", "ots", "otms", "cts", "ctms", "fid", "fsid",
)

#: fields the paper singles out as strongly negative and therefore dropped
DROPPED_NEGATIVE_FIELDS: tuple[str, ...] = ("rt", "wt")

#: fields deferred to future work (section V-D)
DEFERRED_FIELDS: tuple[str, ...] = ("secgrps", "secrole", "secapp", "nwc")


@dataclass
class Fig4Result:
    """The correlation report plus the paper's reading of it."""

    report: CorrelationReport
    chosen: tuple[str, ...]

    def to_text(self) -> str:
        rows = [
            (
                name,
                f"{value:+.3f}",
                "chosen" if name in self.chosen else "",
            )
            for name, value in self.report.sorted_items()
        ]
        return ascii_table(
            ["field", "corr(throughput)", ""],
            rows,
            title="Fig. 4 -- feature/throughput Pearson correlation "
                  "(synthetic EOS trace)",
        )


def run_fig4(*, rows: int = 12_000, seed: int = 4) -> Fig4Result:
    """Regenerate Fig. 4 from a synthetic EOS trace."""
    columns, throughput = EOSTraceSynthesizer(seed=seed).table(rows)
    report = feature_correlations(columns, throughput)
    report.chosen = CHOSEN_FIELDS
    return Fig4Result(report=report, chosen=CHOSEN_FIELDS)
