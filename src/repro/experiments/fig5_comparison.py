"""Fig. 5: Geomancy against dynamic (5a) and static (5b) placement policies.

Experiment 1 of the paper: every policy steers the same seeded BELLE II
workload on its own copy of the same seeded Bluesky cluster, so the
environments are identical and only placement differs.  The paper's
headline: "Geomancy outperforms both static and dynamic data placement
algorithms by at least 11%".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.experiments.harness import (
    PolicyRunResult,
    make_experiment_config,
    run_policy_experiment,
)
from repro.experiments.reporting import (
    ascii_table,
    bucket_series,
    movement_bars,
    sparkline,
)
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.policies.geomancy_policy import (
    GeomancyDynamicPolicy,
    GeomancyStaticPolicy,
)
from repro.policies.lfu import LFUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.mru import MRUPolicy
from repro.policies.random_policy import RandomDynamicPolicy, RandomStaticPolicy
from repro.policies.static import EvenSpreadPolicy
from repro.replaydb.db import ReplayDB
from repro.simulation.bluesky import make_bluesky_cluster
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import belle2_file_population
from repro.workloads.runner import WorkloadRunner

GEOMANCY = "Geomancy dynamic"


@dataclass
class Fig5Result:
    """Per-policy measurements for one Fig. 5 panel."""

    results: dict[str, PolicyRunResult]

    def mean(self, name: str) -> float:
        try:
            return self.results[name].mean_throughput
        except KeyError:
            raise ExperimentError(
                f"no result for {name!r}; have {sorted(self.results)}"
            ) from None

    def gain_percent(self, over: str, *, of: str = GEOMANCY) -> float:
        """Throughput gain of ``of`` (Geomancy) over policy ``over``."""
        base = self.mean(over)
        if base <= 0:
            raise ExperimentError(f"{over!r} measured non-positive throughput")
        return (self.mean(of) - base) / base * 100.0

    def best_baseline(self) -> str:
        """The strongest non-Geomancy policy."""
        candidates = {
            name: result.mean_throughput
            for name, result in self.results.items()
            if name != GEOMANCY
        }
        if not candidates:
            raise ExperimentError("no baseline policies in result")
        return max(candidates, key=candidates.get)

    def to_text(self, *, bucket: int = 500, title: str = "Fig. 5") -> str:
        rows = []
        for name, result in sorted(
            self.results.items(),
            key=lambda kv: kv[1].mean_throughput,
            reverse=True,
        ):
            _, series = bucket_series(result.throughput_gbps, bucket)
            rows.append(
                (
                    name,
                    f"{result.mean_throughput:.2f}",
                    f"{result.std_throughput:.2f}",
                    result.total_files_moved,
                    sparkline(series, width=40),
                )
            )
        table = ascii_table(
            ["policy", "mean GB/s", "std", "files moved",
             f"throughput per {bucket} accesses"],
            rows,
            title=title,
        )
        # The paper draws Geomancy's movement bars under the curves.
        geomancy = self.results.get(GEOMANCY)
        if geomancy is not None and geomancy.movements:
            bars = movement_bars(
                geomancy.movements, max(geomancy.access_count, 1), width=40
            )
            table += "\nGeomancy movements:\n" + bars
        return table


def _geomancy_device_map(seed: int) -> dict[int, str]:
    cluster = make_bluesky_cluster(seed=seed)
    return {
        cluster.device(name).fsid: name for name in cluster.device_names
    }


def run_fig5a(
    *, scale: ExperimentScale = TEST_SCALE, seed: int = 0, workers: int = 1
) -> Fig5Result:
    """Experiment 1, dynamic policies: LRU / MRU / LFU / random dynamic
    versus Geomancy dynamic.

    ``workers > 1`` farms each policy out to its own process via
    :mod:`repro.experiments.parallel`; the merged result is bit-for-bit
    identical to the serial loop (every cell is a pure function of the
    seeds).
    """
    if workers > 1:
        from repro.experiments import parallel

        return parallel.run_fig5a(scale=scale, seed=seed, workers=workers)
    device_by_fsid = _geomancy_device_map(seed)
    policies = [
        LRUPolicy(),
        MRUPolicy(),
        LFUPolicy(),
        RandomDynamicPolicy(seed=seed),
        GeomancyDynamicPolicy(
            device_by_fsid, make_experiment_config(scale, seed=seed)
        ),
    ]
    results = {
        policy.name: run_policy_experiment(policy, scale=scale, seed=seed)
        for policy in policies
    }
    return Fig5Result(results=results)


def collect_random_dynamic_telemetry(
    *, scale: ExperimentScale = TEST_SCALE, seed: int = 0
) -> ReplayDB:
    """Warm-up telemetry from a random-dynamic run (paper section VI:
    Geomancy static "uses approximately 10,000 performance metrics from the
    dynamic random experiment")."""
    cluster = make_bluesky_cluster(seed=seed)
    files = belle2_file_population(seed=seed)
    db = ReplayDB()
    runner = WorkloadRunner(
        cluster, Belle2Workload(files, seed=1), db
    )
    policy = RandomDynamicPolicy(seed=seed)
    runner.ensure_files_placed(
        policy.initial_layout(files, cluster.device_names)
    )
    run_number = 0
    while db.access_count() < scale.warmup_accesses:
        runner.run_once()
        run_number += 1
        if run_number % scale.update_every == 0:
            layout = policy.update_layout(db, files, cluster.device_names)
            if layout:
                cluster.apply_layout(layout, runner.clock.now)
    return db


def run_fig5b(
    *, scale: ExperimentScale = TEST_SCALE, seed: int = 0, workers: int = 1
) -> Fig5Result:
    """Experiment 1, static policies: random static / even spread /
    Geomancy static versus Geomancy dynamic.

    ``workers > 1`` parallelizes over policies (see :func:`run_fig5a`).
    """
    if workers > 1:
        from repro.experiments import parallel

        return parallel.run_fig5b(scale=scale, seed=seed, workers=workers)
    device_by_fsid = _geomancy_device_map(seed)
    warmup_db = collect_random_dynamic_telemetry(scale=scale, seed=seed)
    policies = [
        RandomStaticPolicy(seed=seed),
        EvenSpreadPolicy(),
        GeomancyStaticPolicy(
            warmup_db, device_by_fsid, make_experiment_config(scale, seed=seed)
        ),
        GeomancyDynamicPolicy(
            device_by_fsid, make_experiment_config(scale, seed=seed)
        ),
    ]
    results = {
        policy.name: run_policy_experiment(policy, scale=scale, seed=seed)
        for policy in policies
    }
    return Fig5Result(results=results)
