"""Experiment harnesses regenerating every table and figure in the paper.

| Module | Reproduces |
|---|---|
| :mod:`repro.experiments.fig4_correlation`  | Fig. 4 feature correlations |
| :mod:`repro.experiments.table1_zoo`        | Table I architecture listing |
| :mod:`repro.experiments.table2_comparison` | Table II 23-model comparison |
| :mod:`repro.experiments.table3_permount`   | Table III per-mount accuracy |
| :mod:`repro.experiments.fig5_comparison`   | Fig. 5a/5b policy comparison |
| :mod:`repro.experiments.table4_overhead`   | Table IV single-mount study |
| :mod:`repro.experiments.fig6_adaptation`   | Fig. 6 competing-workload adaptation |

Every experiment takes a scale knob so tests run in seconds while the
benchmark harness uses paper-scale parameters.
"""

from repro.experiments.export import export_fig5_csv, export_fig6_csv
from repro.experiments.fig4_correlation import Fig4Result, run_fig4
from repro.experiments.fig5_comparison import (
    Fig5Result,
    run_fig5a,
    run_fig5b,
)
from repro.experiments.fig6_adaptation import Fig6Result, run_fig6
from repro.experiments.harness import PolicyRunResult, run_policy_experiment
from repro.experiments.overhead import OverheadResult, run_overhead_study
from repro.experiments.robustness import RobustnessResult, run_robustness
from repro.experiments.spec import ExperimentScale, TEST_SCALE, BENCH_SCALE, PAPER_SCALE
from repro.experiments.table1_zoo import table1_rows
from repro.experiments.table2_comparison import Table2Row, run_table2
from repro.experiments.table3_permount import Table3Row, run_table3
from repro.experiments.table4_overhead import Table4Result, run_table4

__all__ = [
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5a",
    "run_fig5b",
    "Fig6Result",
    "run_fig6",
    "PolicyRunResult",
    "run_policy_experiment",
    "OverheadResult",
    "run_overhead_study",
    "RobustnessResult",
    "run_robustness",
    "export_fig5_csv",
    "export_fig6_csv",
    "ExperimentScale",
    "TEST_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "table1_rows",
    "Table2Row",
    "run_table2",
    "Table3Row",
    "run_table3",
    "Table4Result",
    "run_table4",
]
