"""The section VIII overhead study.

"the prediction overhead of our selected neural network was at most 53.7ms
and the training overhead was on average 25.3s when the neural network was
trained using six features. ... with 13 input performance metrics selected
from the CERN EOS logs, our neural network takes 23.1s to train and 48.2ms
to predict ... Overall transferring data from the target system to
Geomancy's dataset takes around 3ms on average."

This experiment measures the same three overheads on our substrate: model-1
training and prediction cost with the Z = 6 live features (Bluesky
telemetry) and with the Z = 13 EOS feature set (synthetic EOS trace), plus
the accounted telemetry-transfer latency per batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.agents.daemon import InterfaceDaemon
from repro.agents.monitoring import MonitoringAgent
from repro.agents.transport import InMemoryTransport
from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine
from repro.experiments.reporting import ascii_table
from repro.experiments.table2_comparison import collect_mount_telemetry
from repro.features.schema import EOS_MODEL_FEATURES
from repro.replaydb.db import ReplayDB
from repro.workloads.eos import EOSTraceSynthesizer


@dataclass
class OverheadRow:
    """One configuration's measured overheads."""

    label: str
    z: int
    train_seconds: float
    predict_ms: float


@dataclass
class OverheadResult:
    rows: list[OverheadRow]
    transfer_ms_per_batch: float

    def to_text(self) -> str:
        table = ascii_table(
            ["configuration", "Z", "training (s)", "prediction (ms)"],
            [
                (row.label, row.z, f"{row.train_seconds:.2f}",
                 f"{row.predict_ms:.3f}")
                for row in self.rows
            ],
            title="Overhead study (section VIII)",
        )
        return (
            f"{table}\n"
            f"telemetry transfer: {self.transfer_ms_per_batch:.1f} ms per batch"
        )


def _measure(engine: DRLEngine, records) -> tuple[float, float]:
    report = engine.train_on_records(records)
    batch = engine.pipeline.transform_features(records[-6:])
    repeats = 50
    start = time.perf_counter()
    for _ in range(repeats):
        engine.model.predict(batch)
    predict_ms = (time.perf_counter() - start) / repeats * 1000.0
    return report.train_seconds, predict_ms


def run_overhead_study(
    *, rows: int = 4000, epochs: int = 60, seed: int = 0
) -> OverheadResult:
    """Measure training/prediction/transfer overheads."""
    live_records = collect_mount_telemetry("people", rows, seed=seed)
    live_engine = DRLEngine(
        GeomancyConfig(epochs=epochs, training_rows=rows, seed=seed)
    )
    live_train, live_predict = _measure(live_engine, live_records)

    eos_records = EOSTraceSynthesizer(seed=seed).records(rows)
    eos_engine = DRLEngine(
        GeomancyConfig(
            features=EOS_MODEL_FEATURES,
            epochs=epochs,
            training_rows=rows,
            learning_rate=0.05,
            seed=seed,
        )
    )
    eos_train, eos_predict = _measure(eos_engine, eos_records)

    # Telemetry-transfer overhead: route one run's worth of records
    # through a monitoring agent into the daemon and read the accounted
    # per-batch latency (modeled at the paper's measured 3 ms).
    telemetry = InMemoryTransport()
    daemon = InterfaceDaemon(ReplayDB(), telemetry, InMemoryTransport())
    agent = MonitoringAgent("people", telemetry, batch_size=32)
    for record in live_records[:320]:
        agent.observe(record)
    agent.flush(at=live_records[319].close_time)
    daemon.pump_telemetry()
    transfer_ms = (
        daemon.transfer_overhead_s / max(daemon.batches_ingested, 1) * 1000.0
    )

    return OverheadResult(
        rows=[
            OverheadRow(
                "live (Bluesky telemetry, model 1)",
                live_engine.config.z, live_train, live_predict,
            ),
            OverheadRow(
                "EOS trace (13 features, model 1)",
                eos_engine.config.z, eos_train, eos_predict,
            ),
        ],
        transfer_ms_per_batch=transfer_ms,
    )
