"""The crash-recoverable Geomancy control loop.

``run_recoverable`` drives the same warm-up + measured Belle II loop as
the chaos harness, but wired through the :mod:`repro.recovery` stack:

* every layout dispatch is bracketed by write-ahead journal records;
* every ``checkpoint_every`` measured runs the full system state --
  ReplayDB snapshot, model weights, layout, scheduler position, every
  RNG stream -- is committed as an atomic checkpoint generation;
* the safe-mode :class:`~repro.recovery.guardrail.Guardrail` (optional)
  watches training health and realized-vs-predicted throughput, rolling
  the layout back to the last known-good checkpoint and demoting the
  learner to a fallback policy when it trips.

``resume_recoverable`` restarts a killed run from its checkpoint
directory alone (all parameters travel inside the checkpoint) and
continues deterministically: a run killed at any supported point and
resumed produces the *bit-for-bit identical* final layout, movement
history and throughput metrics as the same run left uninterrupted.

Crash injection for tests rides on ``kill_at_run``/``kill_point``:
``pre-commit`` dies before that run's checkpoint commits, ``mid-
checkpoint`` dies between staging the files and publishing the
manifest (exercising torn-checkpoint fallback), ``post-commit`` dies
just after the commit.  All raise :class:`~repro.errors.SimulatedCrash`.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.config import GeomancyConfig
from repro.core.geomancy import Geomancy
from repro.errors import ExperimentError, SimulatedCrash
from repro.experiments.harness import make_experiment_config
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.faults.injector import FaultInjector
from repro.faults.invariants import cluster_invariant_violations
from repro.faults.schedule import FaultSchedule
from repro.nn.serialization import load_weights
from repro.policies.lru import LRUPolicy
from repro.recovery.checkpoint import CheckpointManager
from repro.recovery.events import EventLog
from repro.recovery.guardrail import Guardrail
from repro.recovery.journal import LayoutJournal
from repro.recovery.snapshot import capture_system, restore_system
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import MovementRecord
from repro.simulation.bluesky import make_bluesky_cluster
from repro.workloads.belle2 import Belle2Workload
from repro.workloads.files import belle2_file_population
from repro.workloads.runner import WorkloadRunner

#: file name of the write-ahead layout journal inside the checkpoint dir
JOURNAL_NAME = "layout.journal"
#: the workload access stream seed every control-loop harness shares
WORKLOAD_SEED = 1

KILL_POINTS = ("pre-commit", "mid-checkpoint", "post-commit")


@dataclass
class RecoverableRunResult:
    """Outcome of one (possibly resumed) recoverable control loop."""

    seed: int
    scale_name: str
    runs_completed: int
    accesses: int
    mean_gbps: float
    final_layout: dict[int, str]
    movements: list[MovementRecord]
    checkpoints_written: int
    #: step of the checkpoint generation this process restored from
    #: (None for an uninterrupted run)
    resumed_from_step: int | None
    rolled_back_txns: int
    rescued_files: int
    fallback_runs: int
    guardrail_trips: list[dict] = field(default_factory=list)
    guardrail_mode: str | None = None
    events: list[dict] = field(default_factory=list)
    invariant_violations: list[str] = field(default_factory=list)
    #: torn/corrupt-checkpoint fallbacks and other recovery notes
    warnings: list[str] = field(default_factory=list)

    def movement_fingerprint(self) -> tuple:
        """Hashable history for bit-for-bit determinism comparisons."""
        return tuple(
            (m.timestamp, m.fid, m.src_device, m.dst_device, m.succeeded)
            for m in self.movements
        )

    def to_text(self) -> str:
        rows = [
            ("runs completed", self.runs_completed),
            ("accesses measured", self.accesses),
            ("mean GB/s", f"{self.mean_gbps:.3f}"),
            ("checkpoints written", self.checkpoints_written),
            ("resumed from step",
             self.resumed_from_step
             if self.resumed_from_step is not None else "(not resumed)"),
            ("journal txns rolled back", self.rolled_back_txns),
            ("files rescued", self.rescued_files),
            ("guardrail trips", len(self.guardrail_trips)),
            ("runs under fallback policy", self.fallback_runs),
            ("recovery events", len(self.events)),
            ("invariant violations", len(self.invariant_violations)),
        ]
        table = ascii_table(
            ["metric", "value"], rows,
            title=f"Recoverable run (seed {self.seed}, "
                  f"{self.scale_name} scale)",
        )
        if self.warnings:
            table += "\nWARNINGS:\n" + "\n".join(self.warnings)
        if self.invariant_violations:
            table += "\nVIOLATIONS:\n" + "\n".join(self.invariant_violations)
        return table


@dataclass
class _Session:
    """Everything the measured loop needs, fresh-built or restored."""

    config: GeomancyConfig
    scale: ExperimentScale
    seed: int
    geo: Geomancy
    runner: WorkloadRunner
    mgr: CheckpointManager
    injector: FaultInjector | None
    guardrail: Guardrail | None
    meta: dict
    loop: dict
    resumed_from: int | None = None
    warnings: list[str] = field(default_factory=list)


def _current_layout(geo: Geomancy) -> dict[str, str]:
    layout = geo.cluster.layout()
    return {str(spec.fid): layout[spec.fid] for spec in geo.files}


def _compose_state(s: _Session) -> dict:
    return {
        "meta": s.meta,
        "system": capture_system(s.geo, s.runner),
        "loop": s.loop,
        "guardrail": (
            s.guardrail.state_dict() if s.guardrail is not None else None
        ),
        "injector": (
            s.injector.state_dict() if s.injector is not None else None
        ),
        "events": s.geo.event_log.state_dict(),
    }


def _build_guardrail(
    config: GeomancyConfig,
    event_log: EventLog,
    weight_rollback=None,
) -> Guardrail | None:
    if not config.guardrail_enabled:
        return None
    return Guardrail(
        window=config.guardrail_window,
        regression_fraction=config.guardrail_regression_fraction,
        explode_factor=config.guardrail_explode_factor,
        cooldown_runs=config.guardrail_cooldown_runs,
        fallback=config.fallback_policy,
        event_log=event_log,
        weight_rollback=weight_rollback,
    )


def _build_injector(
    cluster,
    meta: dict,
    seed: int,
) -> FaultInjector | None:
    specs = tuple(meta["schedule_specs"])
    if not specs:
        return None
    schedule = FaultSchedule.from_specs(specs)
    # Times are relative to the start of the measured phase.
    shifted = FaultSchedule(
        replace(event, at=event.at + meta["phase_start"])
        for event in schedule
    )
    return FaultInjector(
        cluster,
        shifted,
        migration_failure_rate=meta["migration_failure_rate"],
        seed=seed,
    ).install()


def run_recoverable(
    *,
    checkpoint_dir: str | os.PathLike,
    scale: ExperimentScale = TEST_SCALE,
    seed: int = 0,
    checkpoint_every: int = 1,
    keep: int = 3,
    guardrail: bool = False,
    fallback_policy: str = "static",
    schedule_specs: tuple[str, ...] = (),
    migration_failure_rate: float = 0.0,
    kill_at_run: int | None = None,
    kill_point: str | None = None,
    **config_overrides,
) -> RecoverableRunResult:
    """One warm-up + measured loop under the durability stack.

    Every parameter is persisted inside each checkpoint, so
    :func:`resume_recoverable` needs only the directory.
    """
    if kill_point is not None and kill_point not in KILL_POINTS:
        raise ExperimentError(
            f"kill_point must be one of {KILL_POINTS}, got {kill_point!r}"
        )
    if (kill_at_run is None) != (kill_point is None):
        raise ExperimentError(
            "kill_at_run and kill_point must be given together"
        )
    specs = tuple(schedule_specs)
    if specs and FaultSchedule.from_specs(specs).has_fractional_times:
        raise ExperimentError(
            "the recoverable harness needs absolute fault times "
            "(fractional '@N%' times depend on a baseline twin run)"
        )
    config = make_experiment_config(
        scale,
        seed=seed,
        checkpoint_every=checkpoint_every,
        checkpoint_keep=keep,
        guardrail_enabled=guardrail,
        fallback_policy=fallback_policy,
        **config_overrides,
    )
    checkpoint_dir = Path(checkpoint_dir)
    cluster = make_bluesky_cluster(seed=seed)
    files = belle2_file_population(seed=seed)
    journal = LayoutJournal(checkpoint_dir / JOURNAL_NAME)
    event_log = EventLog()
    geo = Geomancy(
        cluster, files, config, journal=journal, event_log=event_log
    )
    geo.place_initial()
    runner = WorkloadRunner(
        cluster,
        Belle2Workload(files, seed=WORKLOAD_SEED),
        ReplayDB(),
        tolerate_offline=True,
    )
    # Warm-up: telemetry lands through the agents but is not measured.
    # Checkpoints only cover the measured phase; a kill during warm-up
    # means starting over (warm-up is cheap and fully deterministic).
    while geo.db.access_count() < scale.warmup_accesses:
        geo.observe_run(list(runner.run_stream()))

    meta = {
        "seed": seed,
        "workload_seed": WORKLOAD_SEED,
        "scale": asdict(scale),
        "config": asdict(config),
        "schedule_specs": list(specs),
        "migration_failure_rate": float(migration_failure_rate),
        "phase_start": runner.clock.now,
    }
    injector = _build_injector(cluster, meta, seed)
    rail = _build_guardrail(
        config, event_log, weight_rollback=geo.engine.rollback_weights
    )
    mgr = CheckpointManager(checkpoint_dir, keep=config.checkpoint_keep)
    session = _Session(
        config=config,
        scale=scale,
        seed=seed,
        geo=geo,
        runner=runner,
        mgr=mgr,
        injector=injector,
        guardrail=rail,
        meta=meta,
        loop={
            "next_run": 1,
            "throughput": [],
            "fail_start": runner.failed_accesses,
            "rescued": 0,
            "violations": [],
            "pending_predicted": None,
            "known_good": {"step": 0, "layout": _current_layout(geo)},
            "fallback_runs": 0,
            "checkpoints_written": 0,
        },
    )
    if config.checkpoint_every > 0:
        # Generation 0: the post-warm-up baseline every resume can fall
        # back to even if every later generation is torn.
        event_log.emit(
            "checkpoint-saved", t=runner.clock.now, step=0, generation="gen-0"
        )
        session.loop["checkpoints_written"] += 1
        mgr.save(0, _compose_state(session), db=geo.db)
    return _measured_loop(
        session, kill_at_run=kill_at_run, kill_point=kill_point
    )


def resume_recoverable(
    checkpoint_dir: str | os.PathLike,
    *,
    kill_at_run: int | None = None,
    kill_point: str | None = None,
) -> RecoverableRunResult:
    """Restore the newest valid checkpoint and finish the run.

    Needs no parameters beyond the directory: seed, scale, config and
    fault schedule all travel inside the checkpoint.  Corrupt or torn
    generations are skipped (newest first) with a recorded warning;
    in-flight journal transactions are rolled back before the loop
    continues.
    """
    checkpoint_dir = Path(checkpoint_dir)
    mgr = CheckpointManager(checkpoint_dir)
    loaded = mgr.latest_valid()
    # Anything newer than the restored generation failed verification;
    # drop it so the deterministic replay can re-publish those steps.
    for name in mgr.discard_newer(loaded.step):
        loaded.warnings.append(
            f"discarded unverifiable checkpoint {name} newer than "
            f"restored generation"
        )
    state = loaded.state
    meta = state["meta"]
    scale = ExperimentScale(**meta["scale"])
    config_raw = dict(meta["config"])
    config_raw["features"] = tuple(config_raw["features"])
    config_raw["fault_schedule"] = tuple(config_raw["fault_schedule"])
    config = GeomancyConfig(**config_raw)
    mgr.keep = config.checkpoint_keep
    seed = int(meta["seed"])

    cluster = make_bluesky_cluster(seed=seed)
    files = belle2_file_population(seed=seed)
    db = (
        ReplayDB.from_snapshot(loaded.replay_path)
        if loaded.replay_path is not None
        else ReplayDB()
    )
    journal = LayoutJournal(checkpoint_dir / JOURNAL_NAME)
    event_log = EventLog()
    event_log.load_state_dict(state["events"])
    geo = Geomancy(
        cluster, files, config, db=db, journal=journal, event_log=event_log
    )
    runner = WorkloadRunner(
        cluster,
        Belle2Workload(files, seed=int(meta["workload_seed"])),
        ReplayDB(),
        tolerate_offline=True,
    )
    restore_system(geo, runner, state["system"])
    if loaded.model_path is not None and geo.engine.model.built:
        load_weights(geo.engine.model, loaded.model_path)
    rolled = journal.resolve_pending(
        cluster, files, event_log, t=runner.clock.now, step=loaded.step
    )
    for warning in loaded.warnings:
        event_log.emit(
            "checkpoint-corrupt", t=runner.clock.now, step=loaded.step,
            warning=warning,
        )
    event_log.emit(
        "resume",
        t=runner.clock.now,
        step=loaded.step,
        generation=loaded.path.name,
        rolled_back_txns=rolled,
    )
    injector = _build_injector(cluster, meta, seed)
    if injector is not None:
        injector.load_state_dict(state["injector"])
    rail = _build_guardrail(
        config, event_log, weight_rollback=geo.engine.rollback_weights
    )
    if rail is not None:
        rail.load_state_dict(state["guardrail"])
    session = _Session(
        config=config,
        scale=scale,
        seed=seed,
        geo=geo,
        runner=runner,
        mgr=mgr,
        injector=injector,
        guardrail=rail,
        meta=meta,
        loop=dict(state["loop"]),
        resumed_from=loaded.step,
        warnings=list(loaded.warnings),
    )
    session.loop["rolled_back"] = (
        session.loop.get("rolled_back", 0) + rolled
    )
    return _measured_loop(
        session, kill_at_run=kill_at_run, kill_point=kill_point
    )


# -- the measured loop ----------------------------------------------------


def _rollback_to_known_good(s: _Session, *, t: float, run_number: int) -> None:
    """Return the layout to the last known-good checkpoint's placements."""
    target = {
        int(fid): device
        for fid, device in s.loop["known_good"]["layout"].items()
    }
    current = s.geo.cluster.layout()
    diff = {
        fid: device
        for fid, device in target.items()
        if current.get(fid) != device
    }
    movements = s.geo._dispatch(diff, t) if diff else []
    s.loop["pending_predicted"] = None
    s.geo.event_log.emit(
        "guardrail-rollback",
        t=t,
        step=run_number,
        checkpoint_step=s.loop["known_good"]["step"],
        files_targeted=len(diff),
        files_moved=sum(1 for m in movements if m.succeeded),
    )


def _fallback_cycle(s: _Session, *, t: float, run_number: int) -> None:
    """Safety duties (and the fallback policy) while the learner is benched."""
    geo = s.geo
    if not geo.scheduler.should_move(run_number):
        return
    available = geo.health.healthy(geo.cluster.available_device_names, t)
    rescue = geo._rescue_layout(available)
    if rescue:
        moved = geo._dispatch(rescue, t)
        rescued = sum(1 for m in moved if m.succeeded)
        s.loop["rescued"] += rescued
        geo.event_log.emit(
            "stranded-file-rescued",
            t=t,
            step=run_number,
            rescued=rescued,
            attempted=len(rescue),
            targets={str(fid): dst for fid, dst in sorted(rescue.items())},
        )
    if s.config.fallback_policy == "lru" and available:
        fids = {spec.fid for spec in geo.files}
        current = {
            fid: device
            for fid, device in geo.cluster.layout().items()
            if fid in fids
        }
        proposal = LRUPolicy().update_layout(
            geo.db, geo.files, available, current
        )
        if proposal:
            diff = {
                fid: device
                for fid, device in proposal.items()
                if current.get(fid) != device
            }
            if diff:
                geo._dispatch(diff, t)
    if geo.control.has_due_retries(t):
        geo._dispatch({}, t)


def _measured_loop(
    s: _Session,
    *,
    kill_at_run: int | None,
    kill_point: str | None,
) -> RecoverableRunResult:
    geo, runner, loop = s.geo, s.runner, s.loop
    cluster = geo.cluster
    checkpoint_every = s.config.checkpoint_every
    for run_number in range(loop["next_run"], s.scale.runs + 1):
        run_gbps: list[float] = []
        for record in runner.run_stream():
            if s.injector is not None:
                s.injector.advance(runner.clock.now)
            gbps = float(record.throughput_gbps)
            run_gbps.append(gbps)
            loop["throughput"].append(gbps)
            geo.observe(record)
        if s.injector is not None:
            s.injector.advance(runner.clock.now)
        geo.flush_telemetry(at=runner.clock.now)
        t = runner.clock.now
        realized = float(np.mean(run_gbps)) if run_gbps else None

        # The prediction made at the end of an earlier cycle describes
        # the throughput the engine expected from its own placements;
        # this run just measured what those placements actually deliver.
        trip = None
        if (
            s.guardrail is not None
            and not s.guardrail.in_fallback
            and realized is not None
        ):
            trip = s.guardrail.observe_throughput(
                realized,
                loop["pending_predicted"],
                run_index=run_number,
                t=t,
            )
        if s.guardrail is not None and s.guardrail.in_fallback:
            if trip is not None:
                # Tripped on this very run: roll back first; the
                # fallback policy takes over from the next cycle.
                _rollback_to_known_good(s, t=t, run_number=run_number)
            else:
                loop["fallback_runs"] += 1
                _fallback_cycle(s, t=t, run_number=run_number)
                s.guardrail.tick(run_index=run_number, t=t)
        else:
            outcome = geo.after_run(run_number, t)
            loop["rescued"] += outcome.rescued_files
            if s.guardrail is not None and outcome.trained:
                trip = s.guardrail.check_training(
                    outcome.training, run_index=run_number, t=t
                )
            if trip is not None:
                _rollback_to_known_good(s, t=t, run_number=run_number)
            elif outcome.predicted_gbps is not None:
                loop["pending_predicted"] = outcome.predicted_gbps
        loop["violations"].extend(
            cluster_invariant_violations(cluster, geo.files)
        )
        loop["next_run"] = run_number + 1

        due = checkpoint_every > 0 and run_number % checkpoint_every == 0
        killing = kill_at_run == run_number
        if killing and (
            kill_point == "pre-commit"
            or (kill_point == "mid-checkpoint" and not due)
        ):
            raise SimulatedCrash(
                f"injected kill before checkpoint at run {run_number}"
            )
        if due:
            if s.guardrail is None or not s.guardrail.in_fallback:
                loop["known_good"] = {
                    "step": run_number,
                    "layout": _current_layout(geo),
                }
            geo.event_log.emit(
                "checkpoint-saved",
                t=t,
                step=run_number,
                generation=f"gen-{run_number:08d}",
            )
            loop["checkpoints_written"] += 1
            if killing and kill_point == "mid-checkpoint":

                def _die(barrier: str) -> None:
                    if barrier == "staged":
                        raise SimulatedCrash(
                            f"injected kill mid-checkpoint at run {run_number}"
                        )

                s.mgr.fault_hook = _die
            try:
                s.mgr.save(
                    run_number,
                    _compose_state(s),
                    db=geo.db,
                    model=geo.engine.model if geo.engine.model.built else None,
                )
            finally:
                s.mgr.fault_hook = None
        if killing and kill_point == "post-commit":
            raise SimulatedCrash(
                f"injected kill after checkpoint at run {run_number}"
            )

    if s.injector is not None:
        s.injector.uninstall()
    layout = cluster.layout()
    return RecoverableRunResult(
        seed=s.seed,
        scale_name=s.scale.name,
        runs_completed=loop["next_run"] - 1,
        accesses=len(loop["throughput"]),
        mean_gbps=(
            float(np.mean(loop["throughput"])) if loop["throughput"] else 0.0
        ),
        final_layout={
            spec.fid: layout[spec.fid] for spec in geo.files
        },
        movements=geo.db.movements(),
        checkpoints_written=loop["checkpoints_written"],
        resumed_from_step=s.resumed_from,
        rolled_back_txns=loop.get("rolled_back", 0),
        rescued_files=loop["rescued"],
        fallback_runs=loop["fallback_runs"],
        guardrail_trips=(
            [trip.to_dict() for trip in s.guardrail.trips]
            if s.guardrail is not None
            else []
        ),
        guardrail_mode=(
            s.guardrail.mode if s.guardrail is not None else None
        ),
        events=[event.to_dict() for event in geo.event_log],
        invariant_violations=list(loop["violations"]),
        warnings=list(s.warnings),
    )
