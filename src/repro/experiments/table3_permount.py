"""Table III: model 1's prediction error on each Bluesky mount.

"Table III lists the prediction errors for model 1 using each available
storage point on the Bluesky system. ... the model can correctly capture
the normal rise and fall in I/O throughput on individual devices with
reasonably high accuracy."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import DRLEngine
from repro.experiments.reporting import ascii_table, mean_std
from repro.experiments.table2_comparison import (
    collect_mount_telemetry,
    table_config,
)
from repro.simulation.bluesky import BLUESKY_DEVICE_NAMES


@dataclass
class Table3Row:
    """Model 1's error on one mount."""

    mount: str
    mare: float
    mare_std: float
    diverged: bool

    @property
    def accuracy_percent(self) -> float:
        return max(0.0, 100.0 - self.mare)


def run_table3(
    *,
    rows: int = 12_000,
    epochs: int = 200,
    seed: int = 0,
    model_number: int = 1,
    mounts: tuple[str, ...] = BLUESKY_DEVICE_NAMES,
) -> list[Table3Row]:
    """Regenerate Table III: one training per mount."""
    out = []
    for mount in mounts:
        records = collect_mount_telemetry(mount, rows, seed=seed)
        config = table_config(
            model_number, len(records), epochs=epochs, seed=seed
        )
        report = DRLEngine(config).train_on_records(records)
        out.append(
            Table3Row(
                mount=mount,
                mare=report.test_mare,
                mare_std=report.test_mare_std,
                diverged=report.diverged,
            )
        )
    return out


def average_accuracy(rows: list[Table3Row]) -> float:
    """The paper's "average accuracy of about 81.12% over all the mounts"."""
    return float(np.mean([row.accuracy_percent for row in rows]))


def table3_text(rows: list[Table3Row]) -> str:
    body = [
        (
            row.mount,
            "Diverged" if row.diverged else mean_std(row.mare, row.mare_std),
        )
        for row in rows
    ]
    table = ascii_table(
        ["Storage point", "Absolute relative error (%)"],
        body,
        title="Table III -- model 1 accuracy per Bluesky storage point",
    )
    return f"{table}\naverage accuracy: {average_accuracy(rows):.2f}%"
