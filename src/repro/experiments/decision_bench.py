"""Decision-epoch micro-benchmark: batched vs. reference decision path.

The paper's Table IV argues Geomancy is viable because its decision
latency stays small next to the workload it steers.  This module measures
exactly that quantity for our engine -- the wall-clock cost of one
``propose_layout`` epoch over a synthetic telemetry population -- for both
the batched path and the per-file reference path, verifies the two agree,
and (optionally) times the serial vs. parallel experiment harness.  The
result serializes to ``BENCH_decision.json`` so successive PRs accumulate
a perf trajectory.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine
from repro.errors import ExperimentError
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import ExperimentScale, TEST_SCALE
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import AccessRecord


def synthetic_decision_records(
    *,
    rows: int = 1000,
    files: int = 64,
    locations: int = 6,
    seed: int = 0,
) -> list[AccessRecord]:
    """A seeded telemetry population with a real location signal.

    Throughput scales linearly with the fsid (location k sustains about
    ``k * 50 MB/s``) plus noise, so a trained engine has an actual ranking
    to recover and the act/skip threshold sees realistic gain magnitudes.
    """
    rng = np.random.default_rng(seed)
    records = []
    t = 1_600_000_000
    for _ in range(rows):
        fid = int(rng.integers(0, files))
        fsid = int(rng.integers(1, locations + 1))
        rb = int(rng.integers(1 << 18, 1 << 22))
        wb = int(rng.integers(0, 1 << 20))
        base = 50e6 * fsid
        duration = (rb + wb) / (base * (1 + 0.05 * rng.standard_normal()))
        duration = max(duration, 1e-4)
        t += 2
        records.append(
            AccessRecord(
                fid=fid, fsid=fsid, device=f"dev{fsid}", path=f"/f{fid}",
                rb=rb, wb=wb, ots=t, otms=0,
                cts=t + int(duration),
                ctms=max(1, int((duration % 1) * 1000)),
            )
        )
    return records


@dataclass
class DecisionCell:
    """Batched-vs-reference measurement for one Table-I architecture."""

    model_number: int
    files: int
    probe_samples: int
    locations: int
    db_rows: int
    batched_ms: float
    reference_ms: float
    layouts_match: bool
    max_gain_delta: float

    @property
    def speedup(self) -> float:
        if self.batched_ms <= 0:
            raise ExperimentError("batched path measured non-positive time")
        return self.reference_ms / self.batched_ms


@dataclass
class HarnessBench:
    """Serial vs. parallel Fig. 5a sweep timing."""

    seeds: tuple[int, ...]
    scale: str
    workers: int
    serial_s: float
    parallel_s: float
    results_match: bool

    @property
    def speedup(self) -> float:
        if self.parallel_s <= 0:
            raise ExperimentError("parallel sweep measured non-positive time")
        return self.serial_s / self.parallel_s


@dataclass
class DecisionBenchResult:
    """Everything ``repro bench`` measures, JSON- and table-renderable."""

    cells: list[DecisionCell]
    harness: HarnessBench | None = None

    @property
    def min_speedup(self) -> float:
        if not self.cells:
            raise ExperimentError("no decision cells were measured")
        return min(cell.speedup for cell in self.cells)

    @property
    def overall_speedup(self) -> float:
        """Aggregate epoch speedup: total reference time / total batched.

        The headline number -- what one full decision sweep over every
        benchmarked architecture costs on each path.
        """
        if not self.cells:
            raise ExperimentError("no decision cells were measured")
        batched = sum(cell.batched_ms for cell in self.cells)
        if batched <= 0:
            raise ExperimentError("batched path measured non-positive time")
        return sum(cell.reference_ms for cell in self.cells) / batched

    @property
    def all_equivalent(self) -> bool:
        return all(cell.layouts_match for cell in self.cells)

    def to_json(self) -> dict:
        out = {
            "benchmark": "decision-epoch",
            "overall_speedup": self.overall_speedup,
            "cells": [
                {**asdict(cell), "speedup": cell.speedup}
                for cell in self.cells
            ],
        }
        if self.harness is not None:
            out["harness"] = {
                **asdict(self.harness),
                "seeds": list(self.harness.seeds),
                "speedup": self.harness.speedup,
            }
        return out

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return path

    def to_text(self) -> str:
        rows = [
            (
                cell.model_number,
                f"{cell.batched_ms:.2f}",
                f"{cell.reference_ms:.2f}",
                f"{cell.speedup:.1f}x",
                "yes" if cell.layouts_match else "NO",
                f"{cell.max_gain_delta:.2e}",
            )
            for cell in self.cells
        ]
        table = ascii_table(
            ["model", "batched ms", "reference ms", "speedup",
             "layouts match", "max gain delta (B/s)"],
            rows,
            title="Decision-epoch micro-benchmark "
                  f"({self.cells[0].files} files x "
                  f"{self.cells[0].probe_samples} probes x "
                  f"{self.cells[0].locations} locations)",
        )
        table += f"\noverall speedup: {self.overall_speedup:.1f}x"
        if self.harness is not None:
            h = self.harness
            table += (
                f"\nFig. 5a sweep (seeds {list(h.seeds)}, {h.scale} scale): "
                f"serial {h.serial_s:.1f}s, parallel x{h.workers} "
                f"{h.parallel_s:.1f}s ({h.speedup:.1f}x), results "
                + ("identical" if h.results_match else "DIFFER")
            )
        return table


def _time_calls(fn, *, repeats: int) -> float:
    """Best-of-``repeats`` wall time in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def run_decision_benchmark(
    *,
    model_numbers: tuple[int, ...] = (1, 14),
    files: int = 64,
    db_rows: int = 1000,
    locations: int = 6,
    probe_samples: int = 8,
    repeats: int = 5,
    seed: int = 0,
) -> DecisionBenchResult:
    """Time one decision epoch, batched vs. reference, per architecture.

    Also checks the equivalence contract on the exact benchmark inputs:
    identical layouts, and per-file gains within one BLAS ulp (different
    matmul batch heights may legally differ in the last bit).
    """
    records = synthetic_decision_records(
        rows=db_rows, files=files, locations=locations, seed=seed
    )
    cells = []
    for model_number in model_numbers:
        config = GeomancyConfig(
            model_number=model_number,
            epochs=10,
            training_rows=db_rows,
            batch_size=32,
            smoothing_window=5,
            learning_rate=0.05,
            seed=seed + 1,
            probe_samples=probe_samples,
        )
        db = ReplayDB()
        db.insert_accesses(records)
        engine = DRLEngine(config)
        engine.train(db)
        fids = db.files()
        device_by_fsid = {k: f"dev{k}" for k in range(1, locations + 1)}

        layout_b, gains_b = engine.propose_layout(db, fids, device_by_fsid)
        layout_r, gains_r = engine.propose_layout_reference(
            db, fids, device_by_fsid
        )
        max_delta = max(
            (abs(gains_b[fid] - gains_r[fid]) for fid in gains_r),
            default=0.0,
        )
        batched_ms = _time_calls(
            lambda: engine.propose_layout(db, fids, device_by_fsid),
            repeats=repeats,
        )
        reference_ms = _time_calls(
            lambda: engine.propose_layout_reference(db, fids, device_by_fsid),
            repeats=repeats,
        )
        cells.append(
            DecisionCell(
                model_number=model_number,
                files=files,
                probe_samples=probe_samples,
                locations=locations,
                db_rows=db_rows,
                batched_ms=batched_ms,
                reference_ms=reference_ms,
                layouts_match=(
                    layout_b == layout_r and gains_b.keys() == gains_r.keys()
                ),
                max_gain_delta=float(max_delta),
            )
        )
    return DecisionBenchResult(cells=cells)


def run_harness_benchmark(
    *,
    seeds: tuple[int, ...] = (0, 1),
    scale: ExperimentScale = TEST_SCALE,
    workers: int = 2,
) -> HarnessBench:
    """Serial vs. parallel robustness sweep over ``seeds``.

    Runs the same (policy x seed) grid both ways and confirms the merged
    results are identical -- the parallel harness's determinism contract,
    measured rather than assumed.
    """
    from repro.experiments import parallel
    from repro.experiments.robustness import run_robustness

    start = time.perf_counter()
    serial = run_robustness(seeds=seeds, scale=scale)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    par = parallel.run_robustness(seeds=seeds, scale=scale, workers=workers)
    parallel_s = time.perf_counter() - start
    return HarnessBench(
        seeds=tuple(seeds),
        scale=scale.name,
        workers=workers,
        serial_s=serial_s,
        parallel_s=parallel_s,
        results_match=serial == par,
    )
