"""SLO objectives with multi-window burn-rate alerting.

Objectives are defined over signals the control plane already exports --
delivery counters on the transports, the daemon's queue-delay histogram,
realized run throughput -- and evaluated Google-SRE style: an alert fires
only when the *fast* window and the *slow* window both burn error budget
faster than the objective allows.  The fast window makes the alert
responsive; the slow window keeps one transient blip from paging.

Everything runs on the simulated clock and plain counters: evaluating an
objective never touches an RNG, so an SLO-monitored run is bit-for-bit
identical to an unmonitored one.  Alerts are published as ``slo-alert``
events on the :class:`~repro.observability.events.EventBus` (recoveries
as ``slo-clear``), and :meth:`SLOMonitor.arm` optionally wires alerts to
the PR 3 :class:`~repro.recovery.guardrail.Guardrail` so sustained
control-plane degradation demotes the learned policy.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: default (fast, slow) evaluation windows, in simulated seconds, and the
#: burn-rate each must exceed -- scaled-down analogues of the classic
#: 1h/6h production pairing, sized for simulated control-plane time
DEFAULT_WINDOWS: tuple[tuple[float, float], ...] = (
    (60.0, 14.0),
    (600.0, 6.0),
)


@dataclass(frozen=True)
class SLOSpec:
    """One objective: a target fraction of good events."""

    name: str
    #: fraction of events that must be good (e.g. 0.99 -> 1% budget)
    target: float
    description: str = ""
    #: (window_seconds, burn_threshold) pairs; an alert requires every
    #: window to burn faster than its threshold simultaneously
    windows: tuple[tuple[float, float], ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if not self.windows:
            raise ConfigurationError("SLO needs at least one window")
        for window_s, burn in self.windows:
            if window_s <= 0:
                raise ConfigurationError(
                    f"SLO window must be positive, got {window_s}"
                )
            if burn <= 0:
                raise ConfigurationError(
                    f"burn threshold must be positive, got {burn}"
                )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


class SLOTracker:
    """Sliding-window good/bad event counts for one objective."""

    def __init__(self, spec: SLOSpec, *, max_samples: int = 8192) -> None:
        self.spec = spec
        #: (t, good, bad) per recorded interval, oldest first
        self.samples: deque[tuple[float, float, float]] = deque(
            maxlen=max_samples
        )
        self.total_good = 0.0
        self.total_bad = 0.0

    def record(self, t: float, good: float, bad: float) -> None:
        if good < 0 or bad < 0:
            raise ConfigurationError(
                f"good/bad counts must be >= 0, got {good}/{bad}"
            )
        if good == 0 and bad == 0:
            return
        self.samples.append((float(t), float(good), float(bad)))
        self.total_good += good
        self.total_bad += bad

    def window_counts(self, window_s: float, now: float) -> tuple[float, float]:
        """(good, bad) event totals within ``[now - window_s, now]``."""
        cutoff = now - window_s
        good = bad = 0.0
        for t, g, b in reversed(self.samples):
            if t < cutoff:
                break
            good += g
            bad += b
        return good, bad

    def burn_rate(self, window_s: float, now: float) -> float:
        """How many times faster than allowed the budget burns.

        1.0 means the error budget is being consumed exactly at the rate
        the objective permits; 0.0 means no bad events (or no events at
        all) in the window.
        """
        good, bad = self.window_counts(window_s, now)
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / self.spec.error_budget

    @property
    def compliance(self) -> float:
        """All-time good fraction (1.0 when nothing recorded)."""
        total = self.total_good + self.total_bad
        if total == 0:
            return 1.0
        return self.total_good / total


@dataclass
class SLOStatus:
    """One objective's burn-rate evaluation at an instant."""

    name: str
    target: float
    compliance: float
    alerting: bool
    #: (window_s, threshold, measured_burn) per configured window
    burns: list[tuple[float, float, float]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "target": self.target,
            "compliance": self.compliance,
            "alerting": self.alerting,
            "burns": [list(b) for b in self.burns],
        }


class SLOMonitor:
    """Evaluates a set of objectives and publishes burn alerts.

    ``bus`` is an :class:`~repro.observability.events.EventBus` (or None
    to stay silent); alerts dedup -- one ``slo-alert`` when an objective
    starts burning, one ``slo-clear`` when it stops.
    """

    def __init__(self, specs: list[SLOSpec], *, bus=None) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO names in {names}")
        self.trackers = {spec.name: SLOTracker(spec) for spec in specs}
        self.bus = bus
        self._alerting: set[str] = set()
        self.alerts_fired = 0
        #: ``(status) -> None`` hooks invoked on each new alert
        self.on_alert: list = []

    def record(self, name: str, t: float, good: float, bad: float) -> None:
        tracker = self.trackers.get(name)
        if tracker is None:
            raise ConfigurationError(f"unknown SLO {name!r}")
        tracker.record(t, good, bad)

    def evaluate(self, now: float, *, run_index: int = 0) -> list[SLOStatus]:
        """Evaluate every objective; publish alert/clear transitions."""
        statuses = []
        for name, tracker in self.trackers.items():
            burns = [
                (window_s, threshold, tracker.burn_rate(window_s, now))
                for window_s, threshold in tracker.spec.windows
            ]
            alerting = all(burn > threshold for _, threshold, burn in burns)
            status = SLOStatus(
                name=name,
                target=tracker.spec.target,
                compliance=tracker.compliance,
                alerting=alerting,
                burns=burns,
            )
            statuses.append(status)
            if alerting and name not in self._alerting:
                self._alerting.add(name)
                self.alerts_fired += 1
                if self.bus is not None:
                    self.bus.emit(
                        "slo-alert", t=now, step=run_index,
                        slo=name, target=tracker.spec.target,
                        burns=[list(b) for b in burns],
                    )
                for hook in self.on_alert:
                    hook(status)
            elif not alerting and name in self._alerting:
                self._alerting.discard(name)
                if self.bus is not None:
                    self.bus.emit(
                        "slo-clear", t=now, step=run_index, slo=name,
                    )
        return statuses

    @property
    def alerting(self) -> set[str]:
        return set(self._alerting)

    def arm(self, guardrail) -> None:
        """Route new alerts into the guardrail as external trips.

        ``guardrail`` needs a ``trip_external(reason, run_index, t,
        detail)`` method (see :class:`~repro.recovery.guardrail.Guardrail`);
        sustained SLO burn then demotes the learned policy to its
        fallback exactly like a training-health trip would.
        """
        def _hook(status: SLOStatus) -> None:
            guardrail.trip_external(
                f"slo-burn:{status.name}",
                run_index=0,
                t=max((b[0] for b in status.burns), default=0.0),
                detail=status.to_dict(),
            )

        self.on_alert.append(_hook)

    def render(self, now: float) -> str:
        """ASCII burn-status report for the ``repro slo`` CLI."""
        lines = [f"SLO status at t={now:.1f}s (simulated)"]
        for status in self.evaluate(now):
            flag = "ALERT" if status.alerting else "ok"
            lines.append(
                f"  {status.name:<28} target {status.target:.3%}  "
                f"compliance {status.compliance:.3%}  [{flag}]"
            )
            for window_s, threshold, burn in status.burns:
                marker = "!" if burn > threshold else " "
                lines.append(
                    f"    {marker} window {window_s:>7.0f}s  "
                    f"burn {burn:6.2f}x  (alert above {threshold:.1f}x)"
                )
        return "\n".join(lines)


def histogram_counts_above(histogram, threshold: float) -> tuple[int, int]:
    """(at_or_below, above) observation counts around ``threshold``.

    Works on :class:`~repro.observability.metrics.Histogram` bucket
    counts (an observation in the bucket containing the threshold counts
    as *at_or_below* -- the conservative reading); the shared null
    histogram reports (0, 0).
    """
    total = getattr(histogram, "count", 0)
    if not total:
        return 0, 0
    buckets = histogram.buckets
    counts = histogram.counts
    # counts[i] covers (buckets[i-1], buckets[i]]; the final slot is +Inf
    idx = bisect_left(buckets, threshold)
    below = sum(counts[: idx + 1])
    return below, total - below


class ControlPlaneSLOFeed:
    """Feeds the stock control-plane objectives from a live Geomancy.

    Three objectives over signals the plane already exports:

    * ``control-delivery`` -- layout commands delivered vs shed/rejected
      on the command transport;
    * ``queue-delay`` -- telemetry batches drained within
      ``queue_delay_threshold_s`` of ``sent_at`` (from the daemon's
      ingest queue-delay histogram);
    * ``throughput-floor`` -- measured runs at or above
      ``throughput_floor_gbps``.

    Counters are sampled as per-tick deltas so each interval is recorded
    once, at its simulated timestamp.
    """

    def __init__(
        self,
        monitor: SLOMonitor,
        geo,
        *,
        queue_delay_threshold_s: float = 0.05,
        throughput_floor_gbps: float = 0.0,
    ) -> None:
        self.monitor = monitor
        self.geo = geo
        self.queue_delay_threshold_s = float(queue_delay_threshold_s)
        self.throughput_floor_gbps = float(throughput_floor_gbps)
        self._last_sent = 0
        self._last_lost = 0
        self._last_delay_below = 0
        self._last_delay_above = 0

    @staticmethod
    def default_specs() -> list[SLOSpec]:
        return [
            SLOSpec(
                "control-delivery",
                target=0.99,
                description="layout commands delivered, not shed",
            ),
            SLOSpec(
                "queue-delay",
                target=0.95,
                description="telemetry drained within the delay budget",
            ),
            SLOSpec(
                "throughput-floor",
                target=0.90,
                description="measured runs at or above the floor",
            ),
        ]

    def tick(self, now: float, *, run_index: int = 0) -> None:
        """Sample the plane's counters and record this tick's deltas."""
        commands = self.geo.commands
        sent = commands.messages_sent
        lost = getattr(commands, "shed", 0) + getattr(commands, "rejected", 0)
        d_sent, d_lost = sent - self._last_sent, lost - self._last_lost
        self._last_sent, self._last_lost = sent, lost
        # messages_sent counts successful sends; shed/rejected are the loss
        self.monitor.record(
            "control-delivery", now, good=d_sent, bad=d_lost
        )

        hist = self.geo.daemon.queue_delay_histogram
        below, above = histogram_counts_above(
            hist, self.queue_delay_threshold_s
        )
        self.monitor.record(
            "queue-delay", now,
            good=below - self._last_delay_below,
            bad=above - self._last_delay_above,
        )
        self._last_delay_below, self._last_delay_above = below, above

    def observe_run(self, now: float, gbps: float, *, run_index: int = 0) -> None:
        """Record one measured run against the throughput floor."""
        ok = gbps >= self.throughput_floor_gbps
        self.monitor.record(
            "throughput-floor", now,
            good=1.0 if ok else 0.0, bad=0.0 if ok else 1.0,
        )
