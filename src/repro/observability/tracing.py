"""Span-based control-loop tracing with Chrome-trace export.

A :class:`Tracer` records *spans*: named wall/CPU-timed intervals that
nest (each span remembers its parent, forming a tree per control tick).
The control loop opens a root span per tick via :meth:`Tracer.tick`, so
"where did tick 4812 spend its time" is answerable by filtering spans on
their tick id.  Usage::

    with tracer.tick(run_number):
        with tracer.span("train_step", samples=n):
            ...

    @tracer.trace("feature_pipeline")
    def transform(...): ...

Export is the Chrome-trace JSON event format (open the file in
``chrome://tracing`` or https://ui.perfetto.dev): complete ``"ph": "X"``
events whose nesting is implied by time containment on one thread track.

Ticks can be *sampled*: with ``sample_rate=0.1`` only every 10th tick
records spans (deterministically by tick id -- no RNG, so tracing never
perturbs seeded experiments).  A disabled tracer hands out one shared
no-op span, so the instrumented hot path pays a method call and a branch.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import ConfigurationError
from repro.observability.logs import get_logger
from repro.observability.metrics import NULL_COUNTER

logger = get_logger("observability.tracing")

#: hard cap on retained spans -- a runaway loop must not eat the heap
MAX_SPANS = 200_000


class _NullSpan:
    """Shared no-op context manager for disabled/unsampled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself on the tracer at exit."""

    __slots__ = ("tracer", "name", "args", "start", "cpu_start", "parent")

    def __init__(self, tracer: "Tracer", name: str, args: dict | None) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.parent = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.name)
        self.cpu_start = time.process_time()
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        cpu_end = time.process_time()
        tracer = self.tracer
        tracer._stack.pop()
        tracer._record(
            self.name,
            self.start,
            end - self.start,
            cpu_end - self.cpu_start,
            self.parent,
            self.args,
        )


class Tracer:
    """Collects nested spans; exports Chrome-trace JSON."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        sample_rate: float = 1.0,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        self.enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        #: record every Nth tick (1 = all); derived once from sample_rate
        self._tick_stride = max(1, round(1.0 / sample_rate))
        self._epoch = time.perf_counter()
        self._stack: list[str] = []
        self._tick: int | None = None
        self._in_unsampled_tick = False
        self.spans: list[dict] = []
        self.dropped = 0
        #: wired to ``repro_trace_spans_dropped_total`` by the
        #: Observability bundle; stays null for a bare tracer
        self._drop_counter = NULL_COUNTER

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def current_tick(self) -> int | None:
        return self._tick

    # -- recording -------------------------------------------------------
    def _record(
        self,
        name: str,
        start: float,
        wall: float,
        cpu: float,
        parent: str | None,
        args: dict | None,
    ) -> None:
        if len(self.spans) >= MAX_SPANS:
            self.dropped += 1
            self._drop_counter.inc()
            if self.dropped == 1:
                logger.warning(
                    "span cap of %d reached; further spans are dropped "
                    "(counted in repro_trace_spans_dropped_total)",
                    MAX_SPANS,
                )
            return
        self.spans.append(
            {
                "name": name,
                "ts": start - self._epoch,
                "dur": wall,
                "cpu": cpu,
                "tick": self._tick,
                "parent": parent,
                "args": args,
            }
        )

    def span(self, name: str, **args) -> "_Span | _NullSpan":
        """A context manager timing one named interval."""
        if not self.enabled or self._in_unsampled_tick:
            return NULL_SPAN
        return _Span(self, name, args or None)

    def tick(self, tick_id: int) -> "_Span | _NullSpan":
        """The per-tick root span; children carry ``tick_id`` as trace id.

        Sampling is deterministic in the tick id, so a seeded experiment
        traces the same ticks run after run.
        """
        if not self.enabled:
            return NULL_SPAN
        sampled = tick_id % self._tick_stride == 0
        return _Tick(self, int(tick_id), sampled)

    def trace(self, name: str):
        """Decorator form of :meth:`span`."""

        def decorate(fn):
            def wrapper(*args, **kwargs):
                with self.span(name):
                    return fn(*args, **kwargs)

            wrapper.__name__ = getattr(fn, "__name__", name)
            wrapper.__doc__ = fn.__doc__
            wrapper.__wrapped__ = fn
            return wrapper

        return decorate

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    # -- analysis --------------------------------------------------------
    def spans_for_tick(self, tick_id: int) -> list[dict]:
        return [s for s in self.spans if s["tick"] == tick_id]

    def aggregate(self) -> dict[str, dict]:
        """Per-span-name totals: count, wall seconds, CPU seconds."""
        out: dict[str, dict] = {}
        for span in self.spans:
            entry = out.setdefault(
                span["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            entry["count"] += 1
            entry["wall_s"] += span["dur"]
            entry["cpu_s"] += span["cpu"]
        return out

    # -- export ----------------------------------------------------------
    def chrome_trace(self, extra_events: list[dict] | None = None) -> dict:
        """The Chrome-trace JSON object (``traceEvents`` complete events).

        ``extra_events`` are appended verbatim -- the hook the causal
        provenance layer uses to add its linked batch/decision track
        (see :meth:`~repro.observability.provenance.ProvenanceLedger.chrome_events`).
        """
        events = []
        for span in self.spans:
            args = dict(span["args"]) if span["args"] else {}
            if span["tick"] is not None:
                args["tick"] = span["tick"]
            if span["parent"] is not None:
                args["parent"] = span["parent"]
            args["cpu_ms"] = round(span["cpu"] * 1e3, 6)
            events.append(
                {
                    "name": span["name"],
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(span["ts"] * 1e6, 3),
                    "dur": round(span["dur"] * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        if extra_events:
            events.extend(extra_events)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }

    def export_chrome(
        self,
        path: str | os.PathLike,
        extra_events: list[dict] | None = None,
    ) -> int:
        """Write :meth:`chrome_trace` to ``path``; returns the span count."""
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(self.chrome_trace(extra_events), sink)
        return len(self.spans)


class _Tick(_Span):
    """Root span for one control tick; gates sampling for its children."""

    __slots__ = ("tick_id", "sampled", "_prev_tick", "_prev_unsampled")

    def __init__(self, tracer: Tracer, tick_id: int, sampled: bool) -> None:
        super().__init__(tracer, "tick", {"n": tick_id})
        self.tick_id = tick_id
        self.sampled = sampled

    def __enter__(self) -> "_Tick":
        tracer = self.tracer
        self._prev_tick = tracer._tick
        self._prev_unsampled = tracer._in_unsampled_tick
        tracer._tick = self.tick_id
        tracer._in_unsampled_tick = not self.sampled
        if self.sampled:
            super().__enter__()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self.tracer
        if self.sampled:
            super().__exit__(*exc)
        tracer._tick = self._prev_tick
        tracer._in_unsampled_tick = self._prev_unsampled
