"""The structured event bus: one subscriber API for the whole stack.

Fault injections, guardrail trips, circuit-breaker state changes,
checkpoint commits, journal rollbacks and file movements all flow through
one :class:`EventBus` as typed :class:`Event` records, so any consumer --
the recovery :class:`~repro.recovery.events.EventLog` shim, a metrics
bridge, a test assertion -- observes the system through the same stream.

Events are delivered synchronously, in publish order, to subscribers in
subscription order; the bus also keeps an in-memory history (bounded by
``max_history``) so post-hoc consumers need not have subscribed up front.
A subscriber exception is contained: it is counted, the handler is *not*
unsubscribed, and remaining subscribers still receive the event --
telemetry must never take down the control loop it observes.

This module is dependency-free (stdlib only) so that every layer of the
stack can import it without cycles.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """One structured occurrence.

    ``kind`` is a stable machine-readable tag (e.g. ``checkpoint-saved``,
    ``guardrail-trip``, ``fault-outage``, ``circuit-open``); ``detail``
    carries kind-specific, JSON-serializable context.  ``t`` is simulated
    seconds; ``step`` the control-loop run index (0 when not applicable).
    """

    kind: str
    t: float
    step: int
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t": self.t,
            "step": self.step,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Event":
        return cls(
            kind=str(raw["kind"]),
            t=float(raw["t"]),
            step=int(raw["step"]),
            detail=dict(raw.get("detail", {})),
        )


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub with bounded history."""

    def __init__(self, *, max_history: int | None = None) -> None:
        if max_history is not None and max_history < 0:
            raise ValueError(
                f"max_history must be >= 0 or None, got {max_history}"
            )
        self.max_history = max_history
        self._history: list[Event] = []
        #: token -> (kinds filter or None, handler)
        self._subscribers: dict[int, tuple[frozenset[str] | None, Subscriber]] = {}
        self._next_token = 0
        self.published = 0
        self.subscriber_errors = 0

    # -- subscription ----------------------------------------------------
    def subscribe(
        self,
        handler: Subscriber,
        kinds: Iterable[str] | None = None,
    ) -> int:
        """Register ``handler``; returns a token for :meth:`unsubscribe`.

        With ``kinds`` given, the handler only sees events whose kind is
        in the set; otherwise it sees everything.
        """
        token = self._next_token
        self._next_token += 1
        self._subscribers[token] = (
            frozenset(kinds) if kinds is not None else None,
            handler,
        )
        return token

    def unsubscribe(self, token: int) -> bool:
        """Remove a subscription; returns whether it existed."""
        return self._subscribers.pop(token, None) is not None

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- publishing ------------------------------------------------------
    def publish(self, event: Event) -> Event:
        """Record ``event`` and deliver it to matching subscribers."""
        self.published += 1
        self._history.append(event)
        if self.max_history is not None and len(self._history) > self.max_history:
            del self._history[: len(self._history) - self.max_history]
        for kinds, handler in list(self._subscribers.values()):
            if kinds is not None and event.kind not in kinds:
                continue
            try:
                handler(event)
            except Exception:
                # Observability must not break the observed system; the
                # error count surfaces misbehaving subscribers.
                self.subscriber_errors += 1
        return event

    def emit(self, kind: str, *, t: float, step: int, **detail) -> Event:
        """Build and publish a new event."""
        return self.publish(
            Event(kind=kind, t=float(t), step=int(step), detail=detail)
        )

    # -- history ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._history)

    def __iter__(self):
        return iter(self._history)

    @property
    def history(self) -> tuple[Event, ...]:
        return tuple(self._history)

    def of_kind(self, kind: str) -> tuple[Event, ...]:
        return tuple(e for e in self._history if e.kind == kind)

    def kinds(self) -> set[str]:
        return {e.kind for e in self._history}

    def clear(self) -> None:
        self._history.clear()
