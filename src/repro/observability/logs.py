"""Module-level logging for the whole ``repro`` package.

Every module logs through ``logging.getLogger("repro.<module>")``; this
module owns the single handler on the ``repro`` root logger.  Nothing is
configured at import time -- a library must not hijack the host's logging
-- so diagnostics are silent until :func:`configure` runs (the CLI calls
it from ``--log-level``/``--log-json``).

``json_format=True`` switches the handler to one-JSON-object-per-line
output for machine ingestion; otherwise a compact human format is used.
"""

from __future__ import annotations

import json
import logging
import sys

from repro.errors import ConfigurationError

ROOT_LOGGER = "repro"

LEVELS = ("debug", "info", "warning", "error", "critical")

_TEXT_FORMAT = "%(asctime)s %(levelname)-8s %(name)s: %(message)s"


class JsonFormatter(logging.Formatter):
    """One JSON object per record: level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str) -> logging.Logger:
    """The logger for one module, namespaced under ``repro``."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure(
    level: str = "warning",
    *,
    json_format: bool = False,
    stream=None,
) -> logging.Logger:
    """(Re)configure the ``repro`` root logger; returns it.

    Idempotent: the previous handler installed by this function is
    replaced, not stacked, so repeated CLI invocations in one process do
    not duplicate output.
    """
    if level.lower() not in LEVELS:
        raise ConfigurationError(
            f"log level must be one of {LEVELS}, got {level!r}"
        )
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level.upper())
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_handler = True
    handler.setFormatter(
        JsonFormatter() if json_format else logging.Formatter(_TEXT_FORMAT)
    )
    root.addHandler(handler)
    # Stop at our handler instead of bubbling to the (possibly
    # basicConfig'd) global root, which would double-print.
    root.propagate = False
    return root
