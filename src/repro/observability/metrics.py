"""Allocation-light metrics: counters, gauges, fixed-bucket histograms.

The registry is the stack's single metric namespace.  Instrumented code
resolves a handle once (at construction time) and then pays one attribute
add per observation -- no locks, no label-set hashing on the hot path, no
allocation after the handle exists.  Metric names follow the convention
``repro_<subsystem>_<name>_<unit>`` (see DESIGN.md "Observability
architecture").

Two export surfaces:

* :meth:`MetricsRegistry.render_prometheus` -- the Prometheus text
  exposition format (``# HELP``/``# TYPE`` + samples, histograms with
  cumulative ``_bucket{le=...}`` series), for scraping or one-shot dumps;
* :meth:`MetricsRegistry.write_snapshot` -- one JSON object per call
  appended to a JSONL sink, for post-hoc analysis of a run's trajectory.

A registry constructed with ``enabled=False`` hands out shared null
handles whose methods do nothing, so a disabled stack pays only a no-op
method call per would-be observation.
"""

from __future__ import annotations

import json
import math
import os
import re
from bisect import bisect_left

from repro.errors import ConfigurationError

#: default histogram bucket upper bounds, in seconds -- spans from
#: sub-millisecond probe builds up to multi-second training cycles
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    Buckets are upper bounds (Prometheus ``le`` semantics) with an
    implicit ``+Inf`` overflow bucket.  Quantiles are estimated by linear
    interpolation inside the bucket containing the target rank -- exact
    enough for p50/p95/p99 latency reporting, and allocation-free to
    update.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ConfigurationError("histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram buckets must be strictly increasing, got {edges}"
            )
        if any(not math.isfinite(b) for b in edges):
            raise ConfigurationError(
                f"histogram buckets must be finite, got {edges}"
            )
        self.name = name
        self.help = help
        self.buckets = edges
        # one slot per finite bucket + the +Inf overflow
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self.buckets[i - 1] if i > 0 else 0.0
                if i >= len(self.buckets):
                    # Overflow bucket: no finite upper edge to interpolate
                    # toward; report the largest finite edge.
                    return self.buckets[-1]
                upper = self.buckets[i]
                within = (target - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * within
        return self.buckets[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullCounter:
    """Shared do-nothing counter handed out by a disabled registry."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    p50 = p95 = p99 = p999 = mean = 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/histograms."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        default_buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.enabled = bool(enabled)
        self.default_buckets = tuple(default_buckets)
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        metric = cls(_check_name(name), help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get_or_create(
            Histogram, name, help,
            buckets=tuple(buckets) if buckets is not None else self.default_buckets,
        )

    def get(self, name: str):
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def subsystems(self) -> set[str]:
        """Distinct ``<subsystem>`` components of registered metric names."""
        found = set()
        for name in self._metrics:
            parts = name.split("_")
            if len(parts) >= 2 and parts[0] == "repro":
                found.add(parts[1])
        return found

    # -- export ----------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format, metrics in name order."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for edge, bucket_count in zip(metric.buckets, metric.counts):
                    cumulative += bucket_count
                    lines.append(
                        f'{name}_bucket{{le="{edge}"}} {cumulative}'
                    )
                lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{name}_sum {_format_value(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {_format_value(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-serializable state of every registered metric."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "p50": metric.p50,
                    "p95": metric.p95,
                    "p99": metric.p99,
                    "p999": metric.p999,
                    "buckets": {
                        str(edge): count
                        for edge, count in zip(metric.buckets, metric.counts)
                    },
                    "overflow": metric.counts[-1],
                }
        return out

    def write_snapshot(self, path: str | os.PathLike, **labels) -> None:
        """Append one snapshot (plus caller labels) as a JSONL line."""
        record = dict(labels)
        record["metrics"] = self.snapshot()
        with open(path, "a", encoding="utf-8") as sink:
            sink.write(json.dumps(record, sort_keys=True) + "\n")
