"""Profiling hooks: cProfile capture + per-span wall/CPU attribution.

Two complementary views of where a run spent its time:

* :func:`profile_call` wraps any callable in :mod:`cProfile` and returns
  a :class:`ProfileReport` whose top-N table ranks functions by
  cumulative time -- the micro view;
* :func:`span_attribution` aggregates a tracer's finished spans into a
  per-span-name wall/CPU table -- the control-loop view, answering "how
  much of the run was training vs. dispatch vs. simulator".

The CLI's ``--profile`` flag prints both at run end.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field

from repro.experiments.reporting import ascii_table
from repro.observability.tracing import Tracer


@dataclass
class ProfileReport:
    """Captured cProfile statistics plus the call's return value."""

    result: object
    stats: pstats.Stats
    #: wall seconds of the profiled call, from the Stats total
    total_seconds: float = 0.0

    def top_table(self, n: int = 15) -> str:
        """Top-``n`` functions by cumulative time, as text."""
        buffer = io.StringIO()
        stats = self.stats
        stats.stream = buffer
        stats.sort_stats("cumulative").print_stats(n)
        return buffer.getvalue()


def profile_call(fn, *args, **kwargs) -> ProfileReport:
    """Run ``fn(*args, **kwargs)`` under cProfile."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    return ProfileReport(
        result=result,
        stats=stats,
        total_seconds=float(getattr(stats, "total_tt", 0.0)),
    )


@dataclass
class SpanAttribution:
    """Wall/CPU totals per span name, ranked by wall time."""

    rows: list[dict] = field(default_factory=list)
    total_wall_s: float = 0.0

    def to_text(self, top: int = 15) -> str:
        table_rows = [
            (
                row["name"],
                row["count"],
                f"{row['wall_s']:.4f}",
                f"{row['cpu_s']:.4f}",
                f"{row['mean_ms']:.3f}",
                f"{row['share_percent']:.1f}%",
            )
            for row in self.rows[:top]
        ]
        return ascii_table(
            ["span", "count", "wall s", "cpu s", "mean ms", "share"],
            table_rows,
            title="Per-span attribution (by wall time)",
        )


def span_attribution(tracer: Tracer) -> SpanAttribution:
    """Aggregate a tracer's spans into a ranked attribution table.

    Share percentages are of the root ("tick") spans' total wall time
    when present, else of the sum over all spans -- nested spans overlap
    their parents, so shares of non-root rows can legitimately sum past
    100%.
    """
    aggregate = tracer.aggregate()
    root = aggregate.get("tick")
    total = (
        root["wall_s"]
        if root is not None and root["wall_s"] > 0
        else sum(entry["wall_s"] for entry in aggregate.values())
    )
    rows = []
    for name, entry in aggregate.items():
        rows.append(
            {
                "name": name,
                "count": entry["count"],
                "wall_s": entry["wall_s"],
                "cpu_s": entry["cpu_s"],
                "mean_ms": (
                    entry["wall_s"] / entry["count"] * 1e3
                    if entry["count"]
                    else 0.0
                ),
                "share_percent": (
                    100.0 * entry["wall_s"] / total if total > 0 else 0.0
                ),
            }
        )
    rows.sort(key=lambda row: -row["wall_s"])
    return SpanAttribution(rows=rows, total_wall_s=total)
