"""Unified observability: metrics, tracing, events, logs, profiling.

One :class:`Observability` object bundles the three always-on telemetry
surfaces the stack instruments against:

* :class:`~repro.observability.metrics.MetricsRegistry` -- counters,
  gauges, fixed-bucket histograms (Prometheus text + JSONL snapshots);
* :class:`~repro.observability.tracing.Tracer` -- nested spans with
  per-tick trace ids and Chrome-trace export;
* :class:`~repro.observability.events.EventBus` -- typed structured
  events with a subscriber API (the recovery ``EventLog`` rides on it).

Instrumented modules resolve the *installed* instance through
:func:`get_observability` at construction time and cache the handles
they need.  The process default is a **disabled** instance whose handles
are shared no-ops, so an uninstrumented run pays a few no-op method
calls and nothing else -- and, because no instrument ever touches an RNG
or the simulated clock, experiment outputs are bit-for-bit identical
with observability on or off.

Enable per run with::

    with observability.use(Observability()) as obs:
        ...build and drive the system...
        print(obs.metrics.render_prometheus())
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability.events import Event, EventBus
from repro.observability.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.observability.tracing import Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Event",
    "EventBus",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "get_observability",
    "install",
    "uninstall",
    "use",
]


class Observability:
    """Metrics + tracer + event bus behind one enable switch."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        metrics_enabled: bool = True,
        trace_enabled: bool = True,
        trace_sample_rate: float = 1.0,
        histogram_buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.enabled = bool(enabled)
        self.metrics = MetricsRegistry(
            enabled=self.enabled and metrics_enabled,
            default_buckets=tuple(histogram_buckets),
        )
        self.tracer = Tracer(
            enabled=self.enabled and trace_enabled,
            sample_rate=trace_sample_rate,
        )
        self.tracer._drop_counter = self.metrics.counter(
            "repro_trace_spans_dropped_total",
            "spans discarded after the tracer hit its retention cap",
        )
        # A disabled instance keeps no history: every default-constructed
        # EventLog bridges here, and the process-global default must not
        # accumulate events across runs.
        self.bus = EventBus(max_history=None if self.enabled else 0)

    # Convenience pass-throughs so call sites read tersely.
    def counter(self, name: str, help: str = ""):
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = ""):
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "", buckets=None):
        return self.metrics.histogram(name, help, buckets)

    def span(self, name: str, **args):
        return self.tracer.span(name, **args)

    def tick(self, tick_id: int):
        return self.tracer.tick(tick_id)

    def emit(self, kind: str, *, t: float, step: int, **detail) -> Event:
        return self.bus.emit(kind, t=t, step=step, **detail)

    @classmethod
    def from_config(cls, config) -> "Observability":
        """Build from the :class:`~repro.core.config.GeomancyConfig` knobs."""
        return cls(
            enabled=config.observability_enabled,
            metrics_enabled=config.metrics_enabled,
            trace_enabled=config.trace_enabled,
            trace_sample_rate=config.trace_sample_rate,
            histogram_buckets=config.histogram_buckets,
        )


#: the process-wide disabled default; never mutated, always reusable
_DISABLED = Observability(enabled=False)
_current: Observability = _DISABLED


def get_observability() -> Observability:
    """The currently installed instance (a disabled no-op by default)."""
    return _current


def install(obs: Observability) -> Observability:
    """Install ``obs`` as the process-wide instance; returns the previous.

    Components cache their metric handles at construction, so install the
    instance *before* building the system it should observe.
    """
    global _current
    previous = _current
    _current = obs
    return previous


def uninstall() -> None:
    """Restore the disabled default."""
    global _current
    _current = _DISABLED


@contextmanager
def use(obs: Observability):
    """Scoped :func:`install`: restores the previous instance on exit."""
    previous = install(obs)
    try:
        yield obs
    finally:
        install(previous)
