"""Causal trace context and the decision provenance ledger.

Two cooperating pieces turn the control plane's per-subsystem telemetry
into one navigable causal chain:

* :class:`CausalContext` stamps every
  :class:`~repro.agents.messages.TelemetryBatch` and
  :class:`~repro.agents.messages.LayoutCommand` with a lightweight trace
  id at emission and records each message's *fate* -- delivered into the
  ReplayDB (with the exact rowid span its records landed in), shed by a
  bounded queue, refused by the admission controller, dead-lettered,
  dropped or corrupted by a chaos transport, or coalesced into a
  successor batch after sender-side backpressure.  Ids are deterministic
  sequence counters (never RNG or wall-clock derived), so causal tracing
  can never perturb a seeded experiment.

* :class:`ProvenanceLedger` is the bounded, rotated JSONL flight
  recorder.  Every resolved batch and every decision epoch (replay-window
  rowid span, feature digest, per-candidate predicted throughputs, chosen
  layout, drift/guardrail state, resulting movement ids) is appended as
  one JSON line; when the file exceeds ``rotate_bytes`` it is rotated to
  ``<path>.1`` so the recorder can run forever in bounded space.
  :meth:`ProvenanceLedger.explain` walks the chain backward from a
  movement id to the telemetry that caused it -- the ``repro explain``
  CLI and the causal-integrity property tests are both built on it.

Nothing here touches an RNG or the simulated clock: with the causal
knobs off no id is ever stamped, and with them on the observed system's
outputs are bit-for-bit identical (the observability benchmark gates
this).
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

#: outcome a batch carries between emission and resolution
IN_FLIGHT = "in-flight"

#: terminal fates a telemetry batch can meet
BATCH_OUTCOMES = (
    "ingested",            # records landed in the ReplayDB
    "admission-shed",      # refused by the per-tenant token bucket
    "dead-letter",         # malformed or rejected by the ReplayDB
    "shed-backpressure",   # transport refused the send; survivors coalesce
    "queue-shed",          # evicted from a full bounded queue
    "chaos-drop",          # silent network loss (ChaosTransport)
    "chaos-corrupt",       # mangled in transit; arrives as garbage
)


@dataclass
class BatchProvenance:
    """One telemetry batch's life, from emission to its terminal fate."""

    batch_id: str
    device: str
    tenant: str
    records: int
    sent_at: float
    #: batch id of the refused predecessor whose down-sampled survivors
    #: ride in this batch (None for ordinary batches)
    parent: str | None = None
    outcome: str = IN_FLIGHT
    #: when the daemon drained the batch off the transport (simulated s)
    drained_at: float | None = None
    #: inclusive ReplayDB rowid span the batch's records landed in
    rowid_lo: int | None = None
    rowid_hi: int | None = None
    #: non-terminal events along the way (chaos delays, prior outcomes)
    notes: list[str] = field(default_factory=list)

    @property
    def queue_delay_s(self) -> float | None:
        """Transport + queueing delay attributed from ``sent_at``."""
        if self.drained_at is None:
            return None
        return max(0.0, self.drained_at - self.sent_at)

    def covers_rowid(self, rowid: int) -> bool:
        return (
            self.rowid_lo is not None
            and self.rowid_hi is not None
            and self.rowid_lo <= rowid <= self.rowid_hi
        )

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether the batch's rowid span intersects ``[lo, hi]``."""
        return (
            self.rowid_lo is not None
            and self.rowid_hi is not None
            and self.rowid_lo <= hi
            and lo <= self.rowid_hi
        )

    def to_dict(self) -> dict:
        return {
            "type": "batch",
            "batch_id": self.batch_id,
            "device": self.device,
            "tenant": self.tenant,
            "records": self.records,
            "sent_at": self.sent_at,
            "parent": self.parent,
            "outcome": self.outcome,
            "drained_at": self.drained_at,
            "rowid_lo": self.rowid_lo,
            "rowid_hi": self.rowid_hi,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "BatchProvenance":
        return cls(
            batch_id=str(raw["batch_id"]),
            device=str(raw["device"]),
            tenant=str(raw.get("tenant", "default")),
            records=int(raw["records"]),
            sent_at=float(raw["sent_at"]),
            parent=raw.get("parent"),
            outcome=str(raw.get("outcome", IN_FLIGHT)),
            drained_at=raw.get("drained_at"),
            rowid_lo=raw.get("rowid_lo"),
            rowid_hi=raw.get("rowid_hi"),
            notes=list(raw.get("notes", [])),
        )


@dataclass
class DecisionProvenance:
    """One dispatched layout: what the engine saw and what it chose."""

    decision_id: str
    #: trace id stamped onto the LayoutCommand and its MovementRecords
    trace_id: str
    #: "decision" (model-proposed layout), "rescue", or "retry"
    kind: str
    run_index: int
    t: float
    #: inclusive ReplayDB rowid span the training window covered
    window_lo: int | None = None
    window_hi: int | None = None
    #: short digest of the transformed feature matrix the engine fit on
    feature_digest: str | None = None
    #: fid -> {fsid: predicted throughput (bytes/s)} for every candidate
    candidates: dict[int, dict[int, float]] = field(default_factory=dict)
    #: the layout actually dispatched (fid -> device)
    chosen: dict[int, str] = field(default_factory=dict)
    #: movements-table rowids this dispatch produced, in insert order
    movement_ids: list[int] = field(default_factory=list)
    train_mode: str | None = None
    train_seconds: float | None = None
    test_mare: float | None = None
    skillful: bool | None = None
    drift_detected: bool | None = None
    guardrail_mode: str | None = None
    #: simulated seconds the dispatched movements took to apply
    movement_duration_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "type": "decision",
            "decision_id": self.decision_id,
            "trace_id": self.trace_id,
            "kind": self.kind,
            "run_index": self.run_index,
            "t": self.t,
            "window_lo": self.window_lo,
            "window_hi": self.window_hi,
            "feature_digest": self.feature_digest,
            "candidates": {
                str(fid): {str(fsid): score for fsid, score in scores.items()}
                for fid, scores in self.candidates.items()
            },
            "chosen": {str(fid): dst for fid, dst in self.chosen.items()},
            "movement_ids": list(self.movement_ids),
            "train_mode": self.train_mode,
            "train_seconds": self.train_seconds,
            "test_mare": self.test_mare,
            "skillful": self.skillful,
            "drift_detected": self.drift_detected,
            "guardrail_mode": self.guardrail_mode,
            "movement_duration_s": self.movement_duration_s,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DecisionProvenance":
        return cls(
            decision_id=str(raw["decision_id"]),
            trace_id=str(raw["trace_id"]),
            kind=str(raw["kind"]),
            run_index=int(raw["run_index"]),
            t=float(raw["t"]),
            window_lo=raw.get("window_lo"),
            window_hi=raw.get("window_hi"),
            feature_digest=raw.get("feature_digest"),
            candidates={
                int(fid): {int(fsid): float(v) for fsid, v in scores.items()}
                for fid, scores in raw.get("candidates", {}).items()
            },
            chosen={
                int(fid): str(dst)
                for fid, dst in raw.get("chosen", {}).items()
            },
            movement_ids=[int(m) for m in raw.get("movement_ids", [])],
            train_mode=raw.get("train_mode"),
            train_seconds=raw.get("train_seconds"),
            test_mare=raw.get("test_mare"),
            skillful=raw.get("skillful"),
            drift_detected=raw.get("drift_detected"),
            guardrail_mode=raw.get("guardrail_mode"),
            movement_duration_s=float(raw.get("movement_duration_s", 0.0)),
        )


class ProvenanceLedger:
    """Bounded in-memory chain store with a rotated JSONL flight recorder.

    ``max_entries`` bounds each of the batch and decision stores (oldest
    evicted first); ``path`` enables persistence, with the file rotated
    to ``<path>.1`` once it exceeds ``rotate_bytes``.  Batches are
    persisted when they *resolve* (reach a terminal outcome), decisions
    when they are recorded; a batch resolved twice (dead-lettered, then
    requeued and ingested) appends again and the latest line wins on
    load.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        max_entries: int = 4096,
        rotate_bytes: int = 4_000_000,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if rotate_bytes < 4096:
            raise ConfigurationError(
                f"rotate_bytes must be >= 4096, got {rotate_bytes}"
            )
        self.path = Path(path) if path is not None else None
        self.max_entries = int(max_entries)
        self.rotate_bytes = int(rotate_bytes)
        self.batches: OrderedDict[str, BatchProvenance] = OrderedDict()
        self.decisions: deque[DecisionProvenance] = deque(maxlen=max_entries)
        #: movement id -> decision id, bounded alongside the decisions
        self._movement_index: OrderedDict[int, str] = OrderedDict()
        self.batches_evicted = 0
        if self.path is not None and self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self.batches) + len(self.decisions)

    # -- recording -------------------------------------------------------
    def record_batch(self, batch: BatchProvenance) -> None:
        """Track a freshly stamped (still in-flight) batch."""
        self.batches[batch.batch_id] = batch
        while len(self.batches) > self.max_entries:
            self.batches.popitem(last=False)
            self.batches_evicted += 1

    def persist_batch(self, batch: BatchProvenance) -> None:
        """Append a resolved batch to the flight recorder."""
        self._append(batch.to_dict())

    def record_decision(self, decision: DecisionProvenance) -> None:
        self.decisions.append(decision)
        for movement_id in decision.movement_ids:
            self._movement_index[movement_id] = decision.decision_id
        while len(self._movement_index) > self.max_entries:
            self._movement_index.popitem(last=False)
        self._append(decision.to_dict())

    def _append(self, obj: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(obj, sort_keys=True) + "\n"
        try:
            if (
                self.path.exists()
                and self.path.stat().st_size + len(line) > self.rotate_bytes
            ):
                self.path.replace(self.path.with_suffix(
                    self.path.suffix + ".1"
                ))
        except OSError:
            pass  # a failed rotation must not take down the control loop
        with open(self.path, "a", encoding="utf-8") as sink:
            sink.write(line)

    # -- loading ---------------------------------------------------------
    @classmethod
    def load(cls, path: str | os.PathLike) -> "ProvenanceLedger":
        """Rebuild a ledger from its JSONL file (plus the ``.1`` rotation).

        Loads *without* a path so explaining never appends to the file it
        reads.  The in-memory bound is widened to hold everything the
        recorder kept.
        """
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"no provenance ledger at {path}")
        lines: list[str] = []
        rotated = path.with_suffix(path.suffix + ".1")
        if rotated.exists():
            lines.extend(rotated.read_text().splitlines())
        lines.extend(path.read_text().splitlines())
        ledger = cls(max_entries=max(4096, len(lines)))
        for line in lines:
            if not line.strip():
                continue
            raw = json.loads(line)
            if raw.get("type") == "decision":
                ledger.record_decision_loaded(DecisionProvenance.from_dict(raw))
            else:
                ledger.record_batch(BatchProvenance.from_dict(raw))
        return ledger

    def record_decision_loaded(self, decision: DecisionProvenance) -> None:
        """Track a decision read back from disk (no re-append)."""
        self.decisions.append(decision)
        for movement_id in decision.movement_ids:
            self._movement_index[movement_id] = decision.decision_id

    # -- the walk --------------------------------------------------------
    def decision_for_movement(self, movement_id: int) -> DecisionProvenance | None:
        decision_id = self._movement_index.get(int(movement_id))
        if decision_id is None:
            return None
        for decision in self.decisions:
            if decision.decision_id == decision_id:
                return decision
        return None

    def batches_for_window(self, lo: int, hi: int) -> list[BatchProvenance]:
        """Ingested batches whose rowid span intersects ``[lo, hi]``."""
        return [
            batch for batch in self.batches.values() if batch.overlaps(lo, hi)
        ]

    def movement_ids(self) -> list[int]:
        return sorted(self._movement_index)

    def explain(self, movement_id: int) -> dict | None:
        """The full causal chain behind one movement, or None.

        Returns a dict with the decision, the telemetry batches whose
        records fed its training window (with per-batch queue delays),
        and a critical-path summary for the decision epoch.
        """
        decision = self.decision_for_movement(movement_id)
        if decision is None:
            return None
        batches: list[BatchProvenance] = []
        if decision.window_lo is not None and decision.window_hi is not None:
            batches = self.batches_for_window(
                decision.window_lo, decision.window_hi
            )
        delays = [
            batch.queue_delay_s for batch in batches
            if batch.queue_delay_s is not None
        ]
        return {
            "movement_id": int(movement_id),
            "decision": decision.to_dict(),
            "batches": [batch.to_dict() for batch in batches],
            "queue_delay": {
                "batches": len(delays),
                "max_s": max(delays) if delays else 0.0,
                "mean_s": sum(delays) / len(delays) if delays else 0.0,
            },
            "critical_path": self.critical_path(decision, batches),
        }

    @staticmethod
    def critical_path(
        decision: DecisionProvenance, batches: list[BatchProvenance]
    ) -> list[dict]:
        """Stage timings along the telemetry -> movement chain."""
        stages: list[dict] = []
        delays = [
            batch.queue_delay_s for batch in batches
            if batch.queue_delay_s is not None
        ]
        if delays:
            stages.append(
                {"stage": "telemetry_queue", "seconds": max(delays)}
            )
        if decision.train_seconds is not None:
            stages.append(
                {"stage": "train", "seconds": decision.train_seconds}
            )
        stages.append(
            {
                "stage": "movement_apply",
                "seconds": decision.movement_duration_s,
            }
        )
        stages.append(
            {
                "stage": "total",
                "seconds": sum(s["seconds"] for s in stages),
            }
        )
        return stages

    def explain_text(self, movement_id: int) -> str:
        """Human-readable rendering of :meth:`explain`."""
        chain = self.explain(movement_id)
        if chain is None:
            known = self.movement_ids()
            span = f"{known[0]}..{known[-1]}" if known else "none"
            return (
                f"movement {movement_id}: no provenance recorded "
                f"(known movement ids: {span})"
            )
        decision = chain["decision"]
        lines = [
            f"movement {movement_id} <- {decision['decision_id']} "
            f"({decision['kind']}, run {decision['run_index']}, "
            f"t={decision['t']:.2f}s, trace {decision['trace_id']})",
        ]
        if decision["window_lo"] is not None:
            lines.append(
                f"  training window: ReplayDB rows "
                f"{decision['window_lo']}..{decision['window_hi']}"
                + (
                    f"  features sha256:{decision['feature_digest']}"
                    if decision["feature_digest"] else ""
                )
            )
        if decision["train_mode"] is not None:
            lines.append(
                f"  training: mode={decision['train_mode']} "
                f"mare={decision['test_mare']:.1f}% "
                f"skillful={decision['skillful']} "
                f"drift={decision['drift_detected']}"
                + (
                    f" guardrail={decision['guardrail_mode']}"
                    if decision["guardrail_mode"] else ""
                )
            )
        for fid, dst in sorted(
            decision["chosen"].items(), key=lambda kv: int(kv[0])
        ):
            scores = decision["candidates"].get(str(fid), {})
            if scores:
                ranked = ", ".join(
                    f"fsid {fsid}: {score:.3e}"
                    for fsid, score in sorted(
                        scores.items(), key=lambda kv: -kv[1]
                    )
                )
                lines.append(f"  file {fid} -> {dst}  [{ranked}]")
            else:
                lines.append(f"  file {fid} -> {dst}")
        batches = chain["batches"]
        lines.append(
            f"  fed by {len(batches)} telemetry batches "
            f"(queue delay mean {chain['queue_delay']['mean_s']:.3f}s, "
            f"max {chain['queue_delay']['max_s']:.3f}s):"
        )
        for batch in batches:
            delay = (
                f"{batch['drained_at'] - batch['sent_at']:.3f}s"
                if batch["drained_at"] is not None else "?"
            )
            parent = f" parent={batch['parent']}" if batch["parent"] else ""
            lines.append(
                f"    {batch['batch_id']}: {batch['records']} records "
                f"from {batch['device']} rows "
                f"{batch['rowid_lo']}..{batch['rowid_hi']} "
                f"queue-delay {delay}{parent}"
            )
        lines.append("  critical path:")
        for stage in chain["critical_path"]:
            lines.append(
                f"    {stage['stage']:<16} {stage['seconds']:.3f}s"
            )
        return "\n".join(lines)

    # -- chrome export ---------------------------------------------------
    def chrome_events(self) -> list[dict]:
        """Causal spans for the Chrome-trace export (simulated time).

        Batches render as complete events spanning ``sent_at`` to
        ``drained_at`` on one track, decisions on another; args link the
        chain (batch ids, parents, rowid spans, movement ids) so the
        trace viewer can follow a movement back to its telemetry.
        """
        events: list[dict] = []
        for batch in self.batches.values():
            if batch.drained_at is None:
                continue
            events.append(
                {
                    "name": f"telemetry {batch.batch_id}",
                    "cat": "causal",
                    "ph": "X",
                    "ts": round(batch.sent_at * 1e6, 3),
                    "dur": round(
                        max(0.0, batch.drained_at - batch.sent_at) * 1e6, 3
                    ),
                    "pid": 2,
                    "tid": 1,
                    "args": {
                        "batch_id": batch.batch_id,
                        "outcome": batch.outcome,
                        "records": batch.records,
                        "rowids": [batch.rowid_lo, batch.rowid_hi],
                        "parent": batch.parent,
                    },
                }
            )
        for decision in self.decisions:
            duration = (decision.train_seconds or 0.0) + (
                decision.movement_duration_s
            )
            events.append(
                {
                    "name": f"{decision.kind} {decision.decision_id}",
                    "cat": "causal",
                    "ph": "X",
                    "ts": round(decision.t * 1e6, 3),
                    "dur": round(max(duration, 1e-6) * 1e6, 3),
                    "pid": 2,
                    "tid": 2,
                    "args": {
                        "decision_id": decision.decision_id,
                        "trace_id": decision.trace_id,
                        "window": [decision.window_lo, decision.window_hi],
                        "movement_ids": list(decision.movement_ids),
                        "files": len(decision.chosen),
                    },
                }
            )
        return events


class CausalContext:
    """Stamps trace ids at emission; records every message's fate.

    One context serves a whole control plane: monitoring agents stamp
    batches through it, transports report sheds/drops, the daemon
    reports ingestion (with rowid spans and queue delay) and dead
    letters, and Geomancy stamps layout commands.  All ids are
    deterministic sequence counters.
    """

    def __init__(self, ledger: ProvenanceLedger | None = None) -> None:
        self.ledger = ledger if ledger is not None else ProvenanceLedger()
        self._batch_seq: dict[str, int] = {}
        self._command_seq = 0
        #: batches whose terminal outcome was recorded, by outcome kind
        self.resolved: dict[str, int] = {}

    # -- stamping --------------------------------------------------------
    def stamp_batch(
        self,
        device: str,
        tenant: str,
        records: int,
        sent_at: float,
        *,
        parent: str | None = None,
    ) -> str:
        """Mint a batch id and start tracking the batch's life."""
        seq = self._batch_seq.get(device, 0) + 1
        self._batch_seq[device] = seq
        batch_id = f"b:{device}:{seq}"
        self.ledger.record_batch(
            BatchProvenance(
                batch_id=batch_id,
                device=device,
                tenant=tenant,
                records=int(records),
                sent_at=float(sent_at),
                parent=parent,
            )
        )
        return batch_id

    def stamp_command(self) -> str:
        """Mint a trace id for one layout dispatch."""
        self._command_seq += 1
        return f"cmd:{self._command_seq}"

    # -- resolution ------------------------------------------------------
    def batch(self, trace_id: str | None) -> BatchProvenance | None:
        if trace_id is None:
            return None
        return self.ledger.batches.get(trace_id)

    def note(self, trace_id: str | None, note: str) -> None:
        """Attach a non-terminal event (e.g. a chaos delay) to a batch."""
        batch = self.batch(trace_id)
        if batch is not None:
            batch.notes.append(note)

    def resolve(
        self,
        trace_id: str | None,
        outcome: str,
        *,
        drained_at: float | None = None,
        rowid_lo: int | None = None,
        rowid_hi: int | None = None,
    ) -> None:
        """Record a batch's terminal fate (idempotent on unknown ids).

        A batch resolved a second time (a dead letter later requeued and
        ingested) keeps its history: the prior outcome moves into the
        notes and the new one becomes terminal.
        """
        if outcome not in BATCH_OUTCOMES:
            raise ConfigurationError(
                f"outcome must be one of {BATCH_OUTCOMES}, got {outcome!r}"
            )
        batch = self.batch(trace_id)
        if batch is None:
            return
        if batch.outcome != IN_FLIGHT:
            batch.notes.append(f"previously:{batch.outcome}")
        batch.outcome = outcome
        if drained_at is not None:
            batch.drained_at = float(drained_at)
        if rowid_lo is not None:
            batch.rowid_lo = int(rowid_lo)
        if rowid_hi is not None:
            batch.rowid_hi = int(rowid_hi)
        self.resolved[outcome] = self.resolved.get(outcome, 0) + 1
        self.ledger.persist_batch(batch)

    # -- integrity -------------------------------------------------------
    def in_flight(self) -> list[str]:
        """Ids of batches with no terminal outcome yet."""
        return [
            batch_id
            for batch_id, batch in self.ledger.batches.items()
            if batch.outcome == IN_FLIGHT
        ]

    def orphaned_parents(self) -> list[str]:
        """Parent ids referenced by surviving batches but never tracked.

        Always empty for a correctly wired plane (the ledger records a
        batch at stamp time, before any transport can shed it); the
        causal-integrity property tests assert exactly that, including
        under chaos transports.  Evicted ids do not count as orphans --
        the bound is working as designed.
        """
        known = set(self.ledger.batches)
        evicted_allowance = self.ledger.batches_evicted
        orphans = []
        for batch in self.ledger.batches.values():
            if batch.parent is not None and batch.parent not in known:
                if evicted_allowance > 0:
                    evicted_allowance -= 1
                    continue
                orphans.append(batch.parent)
        return orphans
