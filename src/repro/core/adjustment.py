"""The MAE-sign prediction adjustment (paper section V-G).

"To determine if we have to add or subtract MAE x prediction to prediction,
we can take the sign of the average relative error to indicate if most of
our current predictions are under or over the target values.  If the sign is
positive, we are underpredicting ...

    AdjustedPrediction = prediction_i +/- MAE x prediction_i"
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.metrics import absolute_relative_error, signed_relative_error


class PredictionAdjuster:
    """Learned multiplicative bias correction for engine predictions."""

    def __init__(self) -> None:
        self._mae: float | None = None
        self._sign: int = 0

    @property
    def fitted(self) -> bool:
        return self._mae is not None

    @property
    def mae(self) -> float:
        """Mean absolute relative error (fraction) on the calibration set."""
        if self._mae is None:
            raise ModelError("adjuster used before fit()")
        return self._mae

    @property
    def sign(self) -> int:
        """+1 when the model under-predicts on average, -1 when over."""
        if self._mae is None:
            raise ModelError("adjuster used before fit()")
        return self._sign

    def fit(self, predictions: np.ndarray, targets: np.ndarray) -> "PredictionAdjuster":
        """Calibrate from held-out (validation) predictions and targets."""
        errors = absolute_relative_error(
            np.asarray(predictions), np.asarray(targets)
        )
        self._mae = float(np.mean(errors))
        signed = signed_relative_error(
            np.asarray(predictions), np.asarray(targets)
        )
        self._sign = 1 if signed >= 0 else -1
        return self

    def state_dict(self) -> dict:
        """JSON-serializable calibration state."""
        return {"mae": self._mae, "sign": self._sign}

    def load_state_dict(self, state: dict) -> None:
        self._mae = float(state["mae"]) if state["mae"] is not None else None
        self._sign = int(state["sign"])

    def adjust(self, predictions: np.ndarray) -> np.ndarray:
        """Apply ``prediction +/- MAE * prediction``."""
        if self._mae is None:
            raise ModelError("adjuster used before fit()")
        predictions = np.asarray(predictions, dtype=np.float64)
        return predictions * (1.0 + self._sign * self._mae)
