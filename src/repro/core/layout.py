"""Layout diffing and move capping.

"Geomancy limits how often and how much data can be transferred at once"
(section V-A); "On average, Geomancy moves between 1-14 files in one
movement" (section VI).  ``cap_moves`` keeps the moves with the largest
predicted gains when a proposal exceeds the per-movement budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError


@dataclass(frozen=True)
class LayoutChange:
    """One proposed file move."""

    fid: int
    src: str
    dst: str
    #: predicted throughput gain (bytes/s), when the engine supplied one
    predicted_gain: float = 0.0


def layout_diff(
    current: dict[int, str], proposed: dict[int, str]
) -> list[LayoutChange]:
    """Moves needed to take ``current`` to ``proposed``.

    Files absent from ``proposed`` stay put; files absent from ``current``
    are unknown and rejected.
    """
    changes = []
    for fid, dst in sorted(proposed.items()):
        try:
            src = current[fid]
        except KeyError:
            raise PolicyError(
                f"proposed layout references unknown file {fid}"
            ) from None
        if src != dst:
            changes.append(LayoutChange(fid=fid, src=src, dst=dst))
    return changes


def cap_moves(
    changes: list[LayoutChange],
    max_moves: int,
    gains: dict[int, float] | None = None,
) -> list[LayoutChange]:
    """Keep at most ``max_moves`` changes, preferring the biggest gains.

    ``gains`` maps fid to the engine's predicted throughput improvement;
    without it, the first ``max_moves`` changes (fid order) are kept.
    """
    if max_moves < 1:
        raise PolicyError(f"max_moves must be >= 1, got {max_moves}")
    if len(changes) <= max_moves:
        return list(changes)
    if gains is None:
        return list(changes[:max_moves])
    ranked = sorted(
        changes, key=lambda c: gains.get(c.fid, 0.0), reverse=True
    )
    kept = ranked[:max_moves]
    # Preserve deterministic fid order for application.
    return sorted(kept, key=lambda c: c.fid)


def as_layout(changes: list[LayoutChange]) -> dict[int, str]:
    """Collapse changes back into a fid -> device mapping."""
    return {c.fid: c.dst for c in changes}
