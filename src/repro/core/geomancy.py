"""The Geomancy facade: the full observe -> train -> predict -> move loop.

Wires together the paper's Fig. 2 components around one target cluster:

* per-device **monitoring agents** stream access telemetry over a
  transport to the **Interface Daemon**, which lands it in the **ReplayDB**;
* every cooldown period the **DRL engine** retrains on the most recent
  telemetry and proposes a per-file layout;
* the **Action Checker** validates targets (and explores randomly 10% of
  the time), the move cap bounds transfer volume, and the **control
  agent** executes the surviving moves on the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.control import ControlAgent
from repro.agents.daemon import InterfaceDaemon
from repro.agents.messages import LayoutCommand
from repro.agents.monitoring import MonitoringAgent
from repro.agents.transport import InMemoryTransport
from repro.core.action_checker import ActionChecker
from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine, TrainingReport
from repro.core.layout import as_layout, cap_moves, layout_diff
from repro.core.scheduler import AccessGapScheduler, CooldownScheduler
from repro.errors import AgentError, ConfigurationError
from repro.policies.static import EvenSpreadPolicy
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import AccessRecord, MovementRecord
from repro.simulation.cluster import StorageCluster
from repro.workloads.files import FileSpec


@dataclass
class StepOutcome:
    """What one ``after_run`` consultation did."""

    run_index: int
    trained: bool = False
    training: TrainingReport | None = None
    movements: list[MovementRecord] = field(default_factory=list)

    @property
    def moved_files(self) -> int:
        return len(self.movements)


class Geomancy:
    """Geomancy attached to one target cluster and one workload file set."""

    #: accesses required in the ReplayDB before the engine first trains
    MIN_TRAINING_ACCESSES = 50

    def __init__(
        self,
        cluster: StorageCluster,
        files: list[FileSpec],
        config: GeomancyConfig | None = None,
        *,
        db: ReplayDB | None = None,
    ) -> None:
        if not files:
            raise ConfigurationError("Geomancy needs a workload file set")
        self.cluster = cluster
        self.files = list(files)
        self.config = config if config is not None else GeomancyConfig()
        self.db = db if db is not None else ReplayDB()
        self.telemetry = InMemoryTransport()
        self.commands = InMemoryTransport()
        self.daemon = InterfaceDaemon(self.db, self.telemetry, self.commands)
        self.monitors = {
            name: MonitoringAgent(name, self.telemetry)
            for name in cluster.device_names
        }
        self.control = ControlAgent(cluster)
        self.engine = DRLEngine(self.config)
        self.checker = ActionChecker(
            self.config.exploration_rate, seed=self.config.seed
        )
        self.scheduler = CooldownScheduler(self.config.cooldown_runs)
        self.gap_scheduler = (
            AccessGapScheduler() if self.config.use_gap_scheduler else None
        )
        self.outcomes: list[StepOutcome] = []

    # -- placement -----------------------------------------------------------
    def place_initial(self, layout: dict[int, str] | None = None) -> dict[int, str]:
        """Register the workload files, spread evenly unless told otherwise."""
        if layout is None:
            layout = EvenSpreadPolicy().initial_layout(
                self.files, self.cluster.device_names
            )
        existing = {info.fid for info in self.cluster.files}
        for spec in self.files:
            if spec.fid not in existing:
                self.cluster.add_file(
                    spec.fid, spec.path, spec.size_bytes, layout[spec.fid]
                )
        return layout

    # -- telemetry -----------------------------------------------------------
    def observe(self, record: AccessRecord) -> None:
        """Route one access through its device's monitoring agent."""
        try:
            monitor = self.monitors[record.device]
        except KeyError:
            raise AgentError(
                f"no monitoring agent for device {record.device!r}"
            ) from None
        monitor.observe(record)

    def observe_run(self, records: list[AccessRecord]) -> None:
        """Route a whole run's telemetry and land it in the ReplayDB."""
        for record in records:
            self.observe(record)
        self.flush_telemetry(
            at=records[-1].close_time if records else 0.0
        )

    def flush_telemetry(self, at: float) -> int:
        """Flush every agent's buffer and pump the daemon."""
        for monitor in self.monitors.values():
            monitor.flush(at=at)
        return self.daemon.pump_telemetry()

    # -- the decision loop -----------------------------------------------------
    def after_run(self, run_index: int, t: float) -> StepOutcome:
        """Consult Geomancy after workload run ``run_index`` finished at ``t``.

        Trains + moves only when the cooldown scheduler allows it and
        enough telemetry has accumulated.
        """
        outcome = StepOutcome(run_index=run_index)
        self.outcomes.append(outcome)
        if not self.scheduler.should_move(run_index):
            return outcome
        if self.db.access_count() < self.MIN_TRAINING_ACCESSES:
            return outcome
        outcome.training = self.engine.train(self.db)
        outcome.trained = True
        if (
            (self.config.require_skill and not outcome.training.skillful)
            or outcome.training.diverged
            or outcome.training.test_mare > self.config.max_actionable_mare
        ):
            # A diverged or skill-less model's layout would be noise; skip
            # this cycle and let the next retraining try again.
            return outcome
        # Only devices currently accepting placements are candidates; the
        # Action Checker is the final filter in case availability changed
        # between prediction and application (paper section V-H).
        available = self.cluster.available_device_names
        device_by_fsid = {
            self.cluster.device(name).fsid: name for name in available
        }
        if not device_by_fsid:
            return outcome
        if (
            self.config.require_ranking_sanity
            and self.engine.ranking_correlation(self.db, device_by_fsid) < 0.0
        ):
            # The model currently ranks devices opposite to what telemetry
            # shows; acting on it would herd files onto the worst mounts.
            return outcome
        fids = [spec.fid for spec in self.files]
        proposal, gains = self.engine.propose_layout(
            self.db, fids, device_by_fsid
        )
        current = {
            fid: device for fid, device in self.cluster.layout().items()
            if fid in set(fids)
        }
        checked = self.checker.check(proposal, set(available), current)
        changes = layout_diff(current, checked)
        changes = cap_moves(changes, self.config.max_files_per_move, gains)
        if self.gap_scheduler is not None:
            # Section X extension: only move files whose observed access
            # gaps accommodate the transfer ("We will not consider moving
            # files that are always accessed and never released").
            changes = [
                change for change in changes
                if self.gap_scheduler.can_move(
                    self.db,
                    change.fid,
                    self.cluster.link.transfer_time(
                        self.cluster.file(change.fid).size_bytes
                    ),
                )
            ]
        if not changes:
            return outcome
        self.daemon.send_layout(as_layout(changes), at=t)
        command = self.commands.receive()
        if not isinstance(command, LayoutCommand):
            raise AgentError(
                f"command channel carried {type(command).__name__}"
            )
        outcome.movements = self.control.execute(command)
        self.daemon.record_movements(outcome.movements)
        return outcome

    # -- reporting -----------------------------------------------------------
    @property
    def total_moves(self) -> int:
        return sum(outcome.moved_files for outcome in self.outcomes)

    def movement_history(self) -> list[tuple[float, int]]:
        """(timestamp, files moved) clusters for the Fig. 5 bar charts."""
        return self.db.movement_clusters(gap=5.0)
