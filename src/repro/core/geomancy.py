"""The Geomancy facade: the full observe -> train -> predict -> move loop.

Wires together the paper's Fig. 2 components around one target cluster:

* per-device **monitoring agents** stream access telemetry over a
  transport to the **Interface Daemon**, which lands it in the **ReplayDB**;
* every cooldown period the **DRL engine** retrains on the most recent
  telemetry and proposes a per-file layout;
* the **Action Checker** validates targets (and explores randomly 10% of
  the time), the move cap bounds transfer volume, and the **control
  agent** executes the surviving moves on the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.control import ControlAgent
from repro.agents.daemon import InterfaceDaemon
from repro.agents.deadletter import DeadLetterStore
from repro.agents.messages import LayoutCommand
from repro.agents.monitoring import MonitoringAgent
from repro.agents.qos import AdmissionController
from repro.agents.transport import BoundedTransport, InMemoryTransport
from repro.core.action_checker import ActionChecker
from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine, TrainingReport
from repro.core.layout import as_layout, cap_moves, layout_diff
from repro.core.scheduler import AccessGapScheduler, CooldownScheduler
from repro.errors import AgentError, ConfigurationError
from repro.faults.health import HealthTracker
from repro.observability import Observability, get_observability
from repro.observability.provenance import (
    CausalContext,
    DecisionProvenance,
    ProvenanceLedger,
)
from repro.policies.static import EvenSpreadPolicy
from repro.recovery.events import EventLog
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import BYTES_PER_GB, AccessRecord, MovementRecord
from repro.simulation.cluster import StorageCluster
from repro.workloads.files import FileSpec


@dataclass
class StepOutcome:
    """What one ``after_run`` consultation did."""

    run_index: int
    trained: bool = False
    training: TrainingReport | None = None
    movements: list[MovementRecord] = field(default_factory=list)
    #: files rescued off offline devices this cycle
    rescued_files: int = 0
    #: mean predicted throughput (GB/s) at the engine's chosen placements
    #: this cycle, or None when the engine made no prediction; the
    #: recovery guardrail compares realized throughput against this
    predicted_gbps: float | None = None

    @property
    def moved_files(self) -> int:
        return sum(1 for move in self.movements if move.succeeded)

    @property
    def failed_moves(self) -> int:
        return sum(1 for move in self.movements if not move.succeeded)


class Geomancy:
    """Geomancy attached to one target cluster and one workload file set."""

    #: accesses required in the ReplayDB before the engine first trains
    MIN_TRAINING_ACCESSES = 50

    def __init__(
        self,
        cluster: StorageCluster,
        files: list[FileSpec],
        config: GeomancyConfig | None = None,
        *,
        db: ReplayDB | None = None,
        telemetry: InMemoryTransport | None = None,
        journal=None,
        event_log: EventLog | None = None,
        obs: Observability | None = None,
    ) -> None:
        if not files:
            raise ConfigurationError("Geomancy needs a workload file set")
        self.cluster = cluster
        self.files = list(files)
        self.config = config if config is not None else GeomancyConfig()
        #: the observability instance the whole control plane reports to;
        #: defaults to whatever is installed process-wide (a no-op unless
        #: a run enabled it)
        self.obs = obs if obs is not None else get_observability()
        self.db = db if db is not None else ReplayDB()
        # The telemetry channel is injectable so chaos runs can swap in a
        # lossy transport; the command channel stays internal.  With a
        # configured queue capacity the default becomes a bounded
        # priority transport, so overload sheds telemetry instead of
        # growing memory without limit.
        if telemetry is not None:
            self.telemetry = telemetry
        elif self.config.telemetry_queue_capacity > 0:
            self.telemetry = BoundedTransport(
                capacity=self.config.telemetry_queue_capacity,
                policy=self.config.queue_shed_policy,
            )
        else:
            self.telemetry = InMemoryTransport()
        #: optional write-ahead :class:`repro.recovery.journal.LayoutJournal`;
        #: when set, every dispatched layout is bracketed by intent/commit
        #: records so a crash mid-movement is resolvable on restore
        self.journal = journal
        #: structured recovery telemetry (rescues, rollbacks, trips),
        #: bridged onto the observability event bus
        self.event_log = (
            event_log if event_log is not None else EventLog(bus=self.obs.bus)
        )
        self.commands = InMemoryTransport()
        #: per-tenant token-bucket admission in front of the daemon; None
        #: (the default) keeps the legacy ingest-everything behaviour
        self.admission = (
            AdmissionController(
                rate_records_s=self.config.admission_rate_records_s,
                burst_records=self.config.admission_burst_records,
                tenant_rates=dict(self.config.admission_tenant_rates),
                control_reserve_fraction=(
                    self.config.admission_control_reserve_fraction
                ),
            )
            if self.config.admission_enabled
            else None
        )
        self.dead_letter_store = (
            DeadLetterStore(
                capacity=self.config.dead_letter_capacity,
                path=self.config.dead_letter_path,
            )
            if self.config.dead_letter_capacity > 0
            else None
        )
        self.daemon = InterfaceDaemon(
            self.db, self.telemetry, self.commands, obs=self.obs,
            admission=self.admission,
            dead_letter_store=self.dead_letter_store,
        )
        self.monitors = {
            name: MonitoringAgent(name, self.telemetry)
            for name in cluster.device_names
        }
        self.health = HealthTracker(
            quarantine_threshold=self.config.quarantine_threshold,
            quarantine_duration_s=self.config.quarantine_duration_s,
        )
        self.control = ControlAgent(
            cluster,
            max_move_retries=self.config.max_move_retries,
            retry_backoff_s=self.config.retry_backoff_s,
            retry_backoff_max_s=self.config.retry_backoff_max_s,
            retry_jitter=self.config.retry_jitter,
            seed=self.config.seed,
            health=self.health,
        )
        self.engine = DRLEngine(self.config, obs=self.obs)
        self.checker = ActionChecker(
            self.config.exploration_rate, seed=self.config.seed
        )
        self.scheduler = CooldownScheduler(self.config.cooldown_runs)
        self.gap_scheduler = (
            AccessGapScheduler() if self.config.use_gap_scheduler else None
        )
        self.outcomes: list[StepOutcome] = []
        #: optional guardrail a recovery harness may attach; decision
        #: provenance records its mode when present
        self.guardrail = None
        # -- causal tracing + decision provenance (all off by default) ----
        self.causal: CausalContext | None = None
        self.ledger: ProvenanceLedger | None = None
        self._decision_seq = 0
        self._movement_rows = 0
        if self.config.causal_tracing_enabled:
            self.ledger = ProvenanceLedger(
                self.config.provenance_path,
                max_entries=self.config.provenance_max_entries,
                rotate_bytes=self.config.provenance_rotate_bytes,
            )
            self.causal = CausalContext(self.ledger)
            self.telemetry.causal = self.causal
            self.commands.causal = self.causal
            self.daemon.attach_causal(self.causal)
            for monitor in self.monitors.values():
                monitor.causal = self.causal
            # Movements-table rowids are 1-based insert order; seed the
            # counter so decision entries name real rowids even when the
            # DB already holds movements (a resumed run).
            self._movement_rows = len(self.db.movements())
        if self.config.provenance_enabled:
            self.engine.capture_provenance = True
        metrics = self.obs.metrics
        self._m_ticks = metrics.counter(
            "repro_engine_ticks_total", "control-loop consultations"
        )
        self._m_acted = metrics.counter(
            "repro_engine_acted_cycles_total",
            "cycles that dispatched a model-proposed layout",
        )
        self._m_skipped = metrics.counter(
            "repro_engine_skipped_cycles_total",
            "trained cycles vetoed by skill/sanity/gain gates",
        )
        self._m_moves_ok = metrics.counter(
            "repro_engine_moves_succeeded_total", "file moves that completed"
        )
        self._m_moves_failed = metrics.counter(
            "repro_engine_moves_failed_total", "file moves that aborted"
        )
        self._m_rescued = metrics.counter(
            "repro_engine_files_rescued_total",
            "files rescued off offline devices",
        )
        self._g_predicted = metrics.gauge(
            "repro_engine_predicted_gbps",
            "mean predicted throughput at the latest chosen placements",
        )

    # -- placement -----------------------------------------------------------
    def place_initial(self, layout: dict[int, str] | None = None) -> dict[int, str]:
        """Register the workload files, spread evenly unless told otherwise."""
        if layout is None:
            layout = EvenSpreadPolicy().initial_layout(
                self.files, self.cluster.device_names
            )
        existing = {info.fid for info in self.cluster.files}
        for spec in self.files:
            if spec.fid not in existing:
                self.cluster.add_file(
                    spec.fid, spec.path, spec.size_bytes, layout[spec.fid]
                )
        return layout

    # -- telemetry -----------------------------------------------------------
    def observe(self, record: AccessRecord) -> None:
        """Route one access through its device's monitoring agent.

        Devices added to the cluster after construction get a monitoring
        agent lazily, so clusters can grow mid-experiment; telemetry for
        devices the cluster has never heard of is still rejected.
        """
        monitor = self._monitor_for(record.device)
        monitor.observe(record)

    def _monitor_for(self, device: str) -> MonitoringAgent:
        monitor = self.monitors.get(device)
        if monitor is None:
            if device not in self.cluster.device_names:
                raise AgentError(
                    f"no monitoring agent for device {device!r}"
                )
            monitor = MonitoringAgent(device, self.telemetry)
            monitor.causal = self.causal
            self.monitors[device] = monitor
        return monitor

    def observe_records(self, records: list[AccessRecord]) -> None:
        """Route a batch of telemetry without a trailing flush.

        Consecutive same-device records (the common case -- BELLE II
        accesses each file in bursts) are handed to the monitoring agent
        as one chunk, which preserves the exact flush boundaries and send
        order of per-record :meth:`observe` calls while skipping the
        per-record dispatch overhead.
        """
        n = len(records)
        i = 0
        while i < n:
            device = records[i].device
            j = i + 1
            while j < n and records[j].device == device:
                j += 1
            self._monitor_for(device).observe_many(records[i:j])
            i = j

    def observe_run(self, records: list[AccessRecord]) -> None:
        """Route a whole run's telemetry and land it in the ReplayDB."""
        self.observe_records(records)
        self.flush_telemetry(
            at=records[-1].close_time if records else 0.0
        )

    def flush_telemetry(self, at: float) -> int:
        """Flush every agent's buffer and pump the daemon.

        ``at`` doubles as the drain time, so each batch's queue delay
        (``at - sent_at``) lands in the daemon's delay histogram and in
        the causal ledger.
        """
        for monitor in self.monitors.values():
            monitor.flush(at=at)
        return self.daemon.pump_telemetry(drained_at=at)

    # -- the decision loop -----------------------------------------------------
    def _dispatch(
        self, layout: dict[int, str], t: float, kind: str = "decision"
    ) -> list[MovementRecord]:
        """Push a layout through the daemon/command path and execute it.

        With a journal attached the dispatch is a write-ahead
        transaction: the intent is durably logged before any file moves,
        the commit after every movement has settled, so a crash in
        between leaves a pending intent the recovery path rolls back.
        On a causal plane the command is stamped with a trace id that
        flows onto every resulting movement record, and the dispatch is
        journaled in the provenance ledger as one decision entry.
        """
        trace_id = (
            self.causal.stamp_command() if self.causal is not None else None
        )
        with self.obs.span("movement_dispatch", files=len(layout)):
            txn = (
                self.journal.log_intent(layout, t=t)
                if self.journal is not None
                else None
            )
            self.daemon.send_layout(layout, at=t, trace_id=trace_id)
            command = self.commands.receive()
            if not isinstance(command, LayoutCommand):
                raise AgentError(
                    f"command channel carried {type(command).__name__}"
                )
            movements = self.control.execute(command)
            self.daemon.record_movements(movements)
            if txn is not None:
                self.journal.log_commit(txn, movements, t=t)
        movement_ids: list[int] = []
        if self.causal is not None:
            # record_movements is the only movements-table writer on this
            # plane, so insert order names the rowids just written.
            movement_ids = list(
                range(
                    self._movement_rows + 1,
                    self._movement_rows + 1 + len(movements),
                )
            )
            self._movement_rows += len(movements)
        if self.config.provenance_enabled and trace_id is not None:
            self._record_decision(
                trace_id, kind, t, layout, movements, movement_ids
            )
        succeeded = sum(1 for m in movements if m.succeeded)
        failed = len(movements) - succeeded
        self._m_moves_ok.inc(succeeded)
        self._m_moves_failed.inc(failed)
        if movements and self.obs.enabled:
            self.obs.emit(
                "movement-dispatched",
                t=t,
                step=len(self.outcomes) - 1,
                attempted=len(movements),
                succeeded=succeeded,
                failed=failed,
            )
        return movements

    def _record_decision(
        self,
        trace_id: str,
        kind: str,
        t: float,
        layout: dict[int, str],
        movements: list[MovementRecord],
        movement_ids: list[int],
    ) -> None:
        """Append one decision-epoch entry to the provenance ledger."""
        self._decision_seq += 1
        run_index = self.outcomes[-1].run_index if self.outcomes else 0
        engine = self.engine
        report = engine.last_report
        entry = DecisionProvenance(
            decision_id=f"d:{self._decision_seq}",
            trace_id=trace_id,
            kind=kind,
            run_index=run_index,
            t=t,
            chosen={int(fid): str(dst) for fid, dst in layout.items()},
            movement_ids=movement_ids,
            guardrail_mode=(
                self.guardrail.mode if self.guardrail is not None else None
            ),
            movement_duration_s=sum(m.duration for m in movements),
        )
        if kind == "decision":
            # Rescue/retry dispatches are not model decisions: the
            # engine's captured window/digest/candidates describe the
            # *last* training epoch and would mislead there.
            if engine.last_window is not None:
                entry.window_lo, entry.window_hi = engine.last_window
            entry.feature_digest = engine.last_feature_digest
            entry.candidates = {
                int(fid): dict(scores)
                for fid, scores in engine.last_candidates.items()
                if fid in layout
            }
            if report is not None:
                entry.train_mode = report.mode
                entry.train_seconds = report.train_seconds
                entry.test_mare = report.test_mare
                entry.skillful = report.skillful
                entry.drift_detected = report.drift_detected
        self.ledger.record_decision(entry)

    def _drive_retries(self, outcome: StepOutcome, t: float) -> None:
        """Give backed-off failed moves another chance this cycle."""
        if self.control.has_due_retries(t):
            outcome.movements.extend(self._dispatch({}, t, kind="retry"))

    def _rescue_layout(self, available: list[str]) -> dict[int, str]:
        """Targets for files stranded on offline devices.

        Each stranded file goes to the live device with the most free
        space (greedily, so one rescue wave cannot overfill a target);
        rescues share the per-cycle move cap to bound the churn, leaving
        any remainder for the next cycle.
        """
        stranded = self.cluster.files_stranded()
        if not stranded or not available:
            return {}
        free = {
            name: self.cluster.device(name).spec.capacity_bytes
            - self.cluster.stored_bytes(name)
            for name in available
        }
        layout: dict[int, str] = {}
        for info in sorted(stranded, key=lambda i: i.fid):
            if len(layout) >= self.config.max_files_per_move:
                break
            target = min(sorted(free), key=lambda n: (-free[n], n))
            if free[target] < info.size_bytes:
                continue
            layout[info.fid] = target
            free[target] -= info.size_bytes
        return layout

    def after_run(self, run_index: int, t: float) -> StepOutcome:
        """Consult Geomancy after workload run ``run_index`` finished at ``t``.

        Trains + moves only when the cooldown scheduler allows it and
        enough telemetry has accumulated.  Independent of training, every
        eligible cycle first rescues files stranded on offline devices and
        re-attempts failed moves whose retry backoff has expired.
        """
        outcome = StepOutcome(run_index=run_index)
        self.outcomes.append(outcome)
        self._m_ticks.inc()
        if not self.scheduler.should_move(run_index):
            return outcome
        # Only devices currently accepting placements -- and not
        # quarantined by the health tracker -- are candidates; the Action
        # Checker is the final filter in case availability changed between
        # prediction and application (paper section V-H).
        available = self.health.healthy(
            self.cluster.available_device_names, t
        )
        # Priority re-placement: files stranded on offline mounts are
        # rescued before (and regardless of) any model-driven layout.
        rescue = self._rescue_layout(available)
        if rescue:
            with self.obs.span("rescue", files=len(rescue)):
                rescued = self._dispatch(rescue, t, kind="rescue")
            outcome.movements.extend(rescued)
            outcome.rescued_files = sum(1 for m in rescued if m.succeeded)
            self._m_rescued.inc(outcome.rescued_files)
            self.event_log.emit(
                "stranded-file-rescued",
                t=t,
                step=run_index,
                rescued=outcome.rescued_files,
                attempted=len(rescue),
                targets={str(fid): dst for fid, dst in sorted(rescue.items())},
            )
        if self.db.access_count() < self.MIN_TRAINING_ACCESSES:
            self._drive_retries(outcome, t)
            return outcome
        outcome.training = (
            self.engine.train_incremental(self.db)
            if self.config.online_learning
            else self.engine.train(self.db)
        )
        outcome.trained = True
        if (
            (self.config.require_skill and not outcome.training.skillful)
            or outcome.training.diverged
            or outcome.training.test_mare > self.config.max_actionable_mare
        ):
            # A diverged or skill-less model's layout would be noise; skip
            # this cycle and let the next retraining try again.
            self._m_skipped.inc()
            self._drive_retries(outcome, t)
            return outcome
        device_by_fsid = {
            self.cluster.device(name).fsid: name for name in available
        }
        if not device_by_fsid:
            self._drive_retries(outcome, t)
            return outcome
        with self.obs.span("ranking_check"):
            ranking_ok = not (
                self.config.require_ranking_sanity
                and self.engine.ranking_correlation(self.db, device_by_fsid)
                < 0.0
            )
        if not ranking_ok:
            # The model currently ranks devices opposite to what telemetry
            # shows; acting on it would herd files onto the worst mounts.
            self._m_skipped.inc()
            self._drive_retries(outcome, t)
            return outcome
        fids = [spec.fid for spec in self.files]
        proposal, gains = self.engine.propose_layout(
            self.db, fids, device_by_fsid
        )
        if self.engine.last_predicted_mean is not None:
            outcome.predicted_gbps = (
                self.engine.last_predicted_mean / BYTES_PER_GB
            )
            self._g_predicted.set(outcome.predicted_gbps)
        current = {
            fid: device for fid, device in self.cluster.layout().items()
            if fid in set(fids)
        }
        with self.obs.span("action_check", proposals=len(proposal)):
            checked = self.checker.check(proposal, set(available), current)
            changes = layout_diff(current, checked)
            changes = cap_moves(
                changes, self.config.max_files_per_move, gains
            )
        if self.gap_scheduler is not None:
            # Section X extension: only move files whose observed access
            # gaps accommodate the transfer ("We will not consider moving
            # files that are always accessed and never released").
            changes = [
                change for change in changes
                if self.gap_scheduler.can_move(
                    self.db,
                    change.fid,
                    self.cluster.link.transfer_time(
                        self.cluster.file(change.fid).size_bytes
                    ),
                )
            ]
        if not changes:
            self._m_skipped.inc()
            self._drive_retries(outcome, t)
            return outcome
        self._m_acted.inc()
        outcome.movements.extend(self._dispatch(as_layout(changes), t))
        return outcome

    def export_candidates(self, limit: int, *, shard: int = 0):
        """The ``limit`` files this instance serves worst, for scale-out.

        Reads the engine's chosen-placement scores from its most recent
        proposal: the files with the lowest predicted throughput even at
        their best local device are the ones a sharded deployment should
        offer to a faster shard.  Returns
        :class:`~repro.sharding.coordinator.ExportCandidate` tuples
        stamped with ``shard`` (the caller's shard id); empty before the
        first proposal.
        """
        from repro.sharding.coordinator import select_exports

        sizes = {info.fid: info.size_bytes for info in self.cluster.files}
        return select_exports(
            self.engine.last_chosen_scores, sizes, shard=shard, limit=limit
        )

    # -- reporting -----------------------------------------------------------
    @property
    def total_moves(self) -> int:
        return sum(outcome.moved_files for outcome in self.outcomes)

    def movement_history(self) -> list[tuple[float, int]]:
        """(timestamp, files moved) clusters for the Fig. 5 bar charts."""
        return self.db.movement_clusters(gap=5.0)
