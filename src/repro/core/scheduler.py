"""Movement scheduling.

The paper applies layouts "every five runs of the workload since we observed
that adding a cool down period after file movement increased performance
benefits" (section VI): :class:`CooldownScheduler`.

Section X sketches a future extension: "a separate model which will be used
to predict gaps in accesses for files ... long enough for Geomancy to move
the file".  :class:`AccessGapScheduler` implements that idea directly from
telemetry: a file is movable when its observed inter-access gap comfortably
exceeds the estimated transfer time.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.replaydb.db import ReplayDB


class CooldownScheduler:
    """Allow a movement every ``cooldown_runs`` workload runs."""

    def __init__(self, cooldown_runs: int = 5) -> None:
        if cooldown_runs < 1:
            raise ConfigurationError(
                f"cooldown_runs must be >= 1, got {cooldown_runs}"
            )
        self.cooldown_runs = int(cooldown_runs)

    def should_move(self, run_index: int) -> bool:
        """True on runs 5, 10, 15, ... (for the default cooldown)."""
        if run_index < 0:
            raise ConfigurationError(f"run_index must be >= 0, got {run_index}")
        return run_index > 0 and run_index % self.cooldown_runs == 0


class AccessGapScheduler:
    """Per-file movability from observed access gaps (section X extension).

    A file may move when the mean gap between its recent accesses exceeds
    ``safety_factor`` times the estimated transfer time -- i.e. the move
    fits inside the gap with slack.  Files under constant access never
    qualify ("We will not consider moving files that are always accessed").
    """

    def __init__(
        self,
        *,
        recent_accesses: int = 20,
        safety_factor: float = 2.0,
    ) -> None:
        if recent_accesses < 2:
            raise ConfigurationError(
                f"recent_accesses must be >= 2, got {recent_accesses}"
            )
        if safety_factor <= 0:
            raise ConfigurationError(
                f"safety_factor must be positive, got {safety_factor}"
            )
        self.recent_accesses = int(recent_accesses)
        self.safety_factor = float(safety_factor)

    def mean_gap(self, db: ReplayDB, fid: int) -> float | None:
        """Mean seconds between this file's recent accesses, if known."""
        records = db.recent_accesses(self.recent_accesses, fid=fid)
        if len(records) < 2:
            return None
        gaps = [
            later.open_time - earlier.close_time
            for earlier, later in zip(records, records[1:])
        ]
        positive = [g for g in gaps if g > 0]
        if not positive:
            return 0.0
        return sum(positive) / len(positive)

    def can_move(
        self, db: ReplayDB, fid: int, estimated_transfer_s: float
    ) -> bool:
        """Whether the file's access gaps accommodate the transfer."""
        if estimated_transfer_s < 0:
            raise ConfigurationError(
                f"estimated_transfer_s must be >= 0, "
                f"got {estimated_transfer_s}"
            )
        gap = self.mean_gap(db, fid)
        if gap is None:
            # Never observed: moving is safe, nothing is waiting on it.
            return True
        return gap >= self.safety_factor * estimated_transfer_s
