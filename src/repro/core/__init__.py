"""Geomancy's core: the DRL engine and the observe-train-predict-move loop.

* :mod:`repro.core.config` -- all tunables in one validated dataclass.
* :mod:`repro.core.engine` -- the DRL engine: retrains a Table-I model on
  the most recent ReplayDB telemetry and predicts per-location throughput.
* :mod:`repro.core.adjustment` -- the MAE-sign prediction adjustment of
  section V-G.
* :mod:`repro.core.action_checker` -- validity filtering plus the 10%
  random exploration action of section V-H.
* :mod:`repro.core.layout` -- layout diffing and move capping.
* :mod:`repro.core.scheduler` -- the move-every-N-runs cooldown plus the
  access-gap scheduler sketched as future work in section X.
* :mod:`repro.core.geomancy` -- the facade tying it all together with the
  monitoring/control agents.
"""

from repro.core.action_checker import ActionChecker
from repro.core.adjustment import PredictionAdjuster
from repro.core.config import GeomancyConfig
from repro.core.engine import DRLEngine, TrainingReport
from repro.core.geomancy import Geomancy
from repro.core.layout import LayoutChange, cap_moves, layout_diff
from repro.core.scheduler import AccessGapScheduler, CooldownScheduler

__all__ = [
    "ActionChecker",
    "PredictionAdjuster",
    "GeomancyConfig",
    "DRLEngine",
    "TrainingReport",
    "Geomancy",
    "LayoutChange",
    "cap_moves",
    "layout_diff",
    "AccessGapScheduler",
    "CooldownScheduler",
]
