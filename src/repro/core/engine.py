"""The DRL engine (paper sections V-A, V-B, V-C).

"the Deep Reinforcement Learning (DRL) engine determines any updates needed
to be done to the target system's data layout.  The DRL engine re-trains a
neural network using the most recent values stored in the ReplayDB to
calculate future values of the throughput."

The engine's prediction surface is per-location: for a file's most recent
access, it builds a probe batch whose rows differ only in the location
column (including the current location) and picks the location with the
highest predicted throughput.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.adjustment import PredictionAdjuster
from repro.core.config import GeomancyConfig
from repro.core.drift import PageHinkley
from repro.errors import ModelError
from repro.features.pipeline import FeaturePipeline, make_windows
from repro.nn.metrics import is_diverged, mean_absolute_relative_error
from repro.nn.model_zoo import build_model, is_recurrent
from repro.nn.network import train_val_test_split
from repro.nn.optimizers import get_optimizer
from repro.observability import Observability, get_observability
from repro.recovery.weight_snapshots import WeightSnapshotStore
from repro.replaydb.db import ReplayDB
from repro.replaydb.records import AccessRecord
from repro.replaydb.replay_buffer import PrioritizedReplay


def _spearman(a: list[float], b: list[float]) -> float:
    """Spearman rank correlation for two small equal-length lists."""
    if len(a) != len(b):
        raise ModelError(f"length mismatch: {len(a)} vs {len(b)}")

    def ranks(values: list[float]) -> np.ndarray:
        order = np.argsort(values)
        out = np.empty(len(values))
        out[order] = np.arange(len(values), dtype=np.float64)
        return out

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra * ra).sum() * (rb * rb).sum())
    if denom == 0.0:
        return 0.0
    return float((ra * rb).sum() / denom)


def _digest(matrix: np.ndarray) -> str:
    """Short content digest of a feature matrix, for provenance records."""
    return hashlib.sha256(
        np.ascontiguousarray(matrix).tobytes()
    ).hexdigest()[:16]


def _ordered_column_sum(matrix: np.ndarray) -> np.ndarray:
    """Column sums accumulated row-by-row, in order.

    ``matrix.sum(axis=0)`` uses pairwise summation whose grouping can
    differ from the reference path's sequential ``total += score``
    additions by an ulp; accumulating rows in order keeps the batched
    decision path bit-for-bit equal to the per-file loop.  Blocks are at
    most ``probe_samples`` rows, so this short loop costs nothing next to
    the forward passes it replaced.
    """
    total = np.zeros(matrix.shape[1], dtype=np.float64)
    for row in matrix:
        total += row
    return total


@dataclass
class TrainingReport:
    """Outcome of one engine (re)training cycle."""

    samples: int
    epochs: int
    train_seconds: float
    #: mean/std absolute relative error (%) on the held-out test split
    test_mare: float
    test_mare_std: float
    #: error of a predict-the-training-mean baseline on the same split
    constant_mare: float
    diverged: bool
    #: calibrated adjustment parameters (fractions)
    adjustment_mae: float
    adjustment_sign: int
    #: "scratch" (full-window retrain) or "incremental" (online update);
    #: defaults keep reports from older checkpoints loadable
    mode: str = "scratch"
    #: telemetry rows newly consumed this cycle (incremental mode)
    new_rows: int = 0
    #: prioritized-replay rows mixed into the update batch
    replayed_rows: int = 0
    #: whether the drift detector fired this cycle
    drift_detected: bool = False

    @property
    def accuracy_percent(self) -> float:
        """The paper's "accuracy" reading: 100 - MARE, floored at 0."""
        return max(0.0, 100.0 - self.test_mare)

    @property
    def skillful(self) -> bool:
        """Whether the model out-predicts a constant (train-mean) baseline.

        Used as the act/skip gate: a cycle whose model carries no skill
        proposes noise, and the paper only applies "layouts that the NN
        predicts will increase throughput performance".
        """
        return not self.diverged and self.test_mare < self.constant_mare


class DRLEngine:
    """Trains on ReplayDB telemetry; predicts throughput per location."""

    def __init__(
        self,
        config: GeomancyConfig | None = None,
        *,
        obs: Observability | None = None,
    ) -> None:
        self.config = config if config is not None else GeomancyConfig()
        self.obs = obs if obs is not None else get_observability()
        self.pipeline = FeaturePipeline(
            self.config.features,
            smoothing_window=self.config.smoothing_window,
            target=self.config.target,
            # Online mode cannot afford refit-on-window normalization, and
            # frozen first-window bounds go stale under drift; running
            # mean/var statistics track the stream at O(batch) cost.
            normalization=(
                "running" if self.config.online_learning else "minmax"
            ),
        )
        #: for throughput targets higher predictions are better; for
        #: latency targets (paper V-C future work) lower is better
        self._maximize = self.config.target == "throughput"
        self._recurrent = is_recurrent(self.config.model_number)
        self.model = self._fresh_model()
        self.adjuster = PredictionAdjuster()
        self.last_report: TrainingReport | None = None
        # -- decision provenance capture (off unless the causal layer asks) --
        #: when True, each train/propose call records what it consumed:
        #: the ReplayDB rowid window, a digest of the transformed feature
        #: matrix, and every candidate's predicted throughput
        self.capture_provenance = False
        #: inclusive rowid span of the last training window
        self.last_window: tuple[int, int] | None = None
        #: short sha256 of the last transformed feature matrix
        self.last_feature_digest: str | None = None
        #: fid -> {fsid: predicted bytes/s} from the last propose_layout
        self.last_candidates: dict[int, dict[int, float]] = {}
        #: fid -> predicted bytes/s at the placement the last propose call
        #: chose.  Always captured (one float per probed file): the
        #: sharding coordinator selects cross-shard export candidates from
        #: it -- the files a shard serves worst even at their best device.
        self.last_chosen_scores: dict[int, float] = {}
        #: mean predicted throughput (bytes/s) at the placements chosen by
        #: the most recent propose_layout call -- the "promise" the safe-mode
        #: guardrail compares realized throughput against
        self.last_predicted_mean: float | None = None
        # -- online continual learning state --------------------------------
        #: ReplayDB high-water-mark cursor: rows at or below it have been
        #: consumed by training; train_incremental fits on what is above
        self._hwm = 0
        #: incremental updates applied since the from-scratch base epoch
        self._updates = 0
        #: running mean of physical-unit targets (the constant baseline
        #: the skill gate compares against, maintained prequentially)
        self._target_mean = 0.0
        self._target_count = 0
        self.replay: PrioritizedReplay | None = None
        self.snapshots: WeightSnapshotStore | None = None
        self.drift_detector: PageHinkley | None = None
        if self.config.online_learning:
            self.replay = PrioritizedReplay(
                self.config.replay_capacity,
                alpha=self.config.replay_alpha,
                beta=self.config.replay_beta,
                recency_half_life=self.config.replay_recency_half_life,
                seed=self.config.seed,
            )
            if self.config.target_snapshot_every > 0:
                self.snapshots = WeightSnapshotStore(
                    self.config.weight_snapshot_dir,
                    keep=self.config.target_snapshot_keep,
                )
            self.drift_detector = PageHinkley(
                delta=self.config.drift_delta,
                threshold=self.config.drift_threshold,
                min_samples=self.config.drift_min_cycles,
            )
        metrics = self.obs.metrics
        self._m_train_rows = metrics.counter(
            "repro_engine_train_rows_total",
            "telemetry rows consumed by training cycles",
        )
        self._h_engine_train = metrics.histogram(
            "repro_engine_train_seconds",
            "wall seconds per decision-epoch training step",
        )
        self._m_trainings = metrics.counter(
            "repro_nn_trainings_total", "engine (re)training cycles"
        )
        self._m_predictions = metrics.counter(
            "repro_nn_predictions_total",
            "probe rows scored by forward passes",
        )
        self._h_train = metrics.histogram(
            "repro_nn_train_seconds", "wall seconds per training cycle"
        )
        self._g_test_mare = metrics.gauge(
            "repro_nn_test_mare_percent",
            "held-out mean absolute relative error of the latest training",
        )
        self._g_skillful = metrics.gauge(
            "repro_nn_skillful",
            "1 when the latest model out-predicts the constant baseline",
        )

    def _fresh_model(self):
        return build_model(
            self.config.model_number, self.config.z, seed=self.config.seed
        )

    @property
    def trained(self) -> bool:
        return self.last_report is not None

    # -- training ----------------------------------------------------------
    def train_on_records(self, records: list[AccessRecord]) -> TrainingReport:
        """Retrain from scratch on a chronological record batch.

        The paper's protocol: 60/20/20 chronological split, N epochs of
        plain SGD, MAE-sign adjustment calibrated on the validation split,
        accuracy reported on the test split.
        """
        if len(records) < 10:
            raise ModelError(
                f"need at least 10 records to train, got {len(records)}"
            )
        with self.obs.span("train_step", samples=len(records)):
            # Normalization bounds are learned once and then frozen: a
            # warm-started model must see consistently scaled inputs/targets
            # across cycles (later values beyond the bounds extrapolate
            # linearly, which the normalizer supports).
            with self.obs.span("feature_pipeline"):
                self.pipeline.ensure_fitted(records)
                x = self.pipeline.transform_features(records)
                y = self.pipeline.transform_target(records)
                if self.capture_provenance:
                    self.last_feature_digest = _digest(x)
                if self._recurrent:
                    x, y = make_windows(x, y, self.config.timesteps)
                xt, yt, xv, yv, xs, ys = train_val_test_split(x, y)
            if not (self.config.warm_start and self.trained):
                self.model = self._fresh_model()
            optimizer = get_optimizer(
                self.config.optimizer, learning_rate=self.config.learning_rate
            )
            start = time.perf_counter()
            with self.obs.span("model_fit", epochs=self.config.epochs):
                history = self.model.fit(
                    xt, yt,
                    epochs=self.config.epochs,
                    batch_size=self.config.batch_size,
                    optimizer=optimizer,
                    validation_data=(xv, yv) if len(xv) else None,
                )
            elapsed = time.perf_counter() - start
            # Calibrate and score in physical units (bytes/s): relative
            # error on the normalized [0, 1] scale explodes near its zero
            # point, while the paper's Table II/III errors are on measured
            # throughput.
            calib_x, calib_y = (xv, yv) if len(xv) else (xt, yt)
            self.adjuster.fit(
                self.pipeline.inverse_transform_target(
                    self.model.predict(calib_x).ravel()
                ),
                self.pipeline.inverse_transform_target(calib_y),
            )
            test_x, test_y = (xs, ys) if len(xs) else (xt, yt)
            test_pred = self.pipeline.inverse_transform_target(
                self.model.predict(test_x).ravel()
            )
            test_true = self.pipeline.inverse_transform_target(test_y)
            mare, mare_std = mean_absolute_relative_error(test_pred, test_true)
            train_mean = float(
                np.mean(self.pipeline.inverse_transform_target(yt))
            )
            constant_mare, _ = mean_absolute_relative_error(
                np.full_like(test_true, train_mean), test_true
            )
            report = TrainingReport(
                samples=len(records),
                epochs=history.epochs_run,
                train_seconds=elapsed,
                test_mare=mare,
                test_mare_std=mare_std,
                constant_mare=constant_mare,
                diverged=(
                    history.diverged or is_diverged(test_pred, test_true)
                ),
                adjustment_mae=self.adjuster.mae,
                adjustment_sign=self.adjuster.sign,
            )
        self.last_report = report
        self._m_trainings.inc()
        self._m_train_rows.inc(len(records))
        self._h_train.observe(elapsed)
        self._h_engine_train.observe(elapsed)
        self._g_test_mare.set(report.test_mare)
        self._g_skillful.set(1.0 if report.skillful else 0.0)
        return report

    def train(self, db: ReplayDB) -> TrainingReport:
        """Retrain on the most recent ``training_rows`` ReplayDB accesses."""
        records = db.recent_accesses(self.config.training_rows)
        if self.capture_provenance and records:
            # recent_accesses flushes the write-behind buffer, so the max
            # rowid now names the newest record in the window.
            hi = db.max_rowid()
            self.last_window = (hi - len(records) + 1, hi)
        return self.train_on_records(records)

    # -- online continual learning ------------------------------------------
    def _update_target_mean(self, targets: np.ndarray) -> None:
        """Fold a batch of physical-unit targets into the running mean."""
        for value in targets:
            self._target_count += 1
            self._target_mean += (
                float(value) - self._target_mean
            ) / self._target_count

    def _bootstrap_online_state(self, db: ReplayDB) -> None:
        """Initialize the cursor/replay/baseline after the base epoch."""
        ids, records = db.accesses_since(
            0, limit=self.config.training_rows
        )
        if ids:
            self._hwm = max(self._hwm, ids[-1], db.max_rowid())
            self.replay.add(ids)
            self._update_target_mean(self.pipeline.target_vector(records))
        self._updates = 0
        if self.snapshots is not None and self.model.built:
            self.snapshots.save(self.model, 0)

    def rollback_weights(self) -> int | None:
        """Restore the newest frozen-weight snapshot into the live model.

        The guardrail's loss-explosion hook: returns the restored
        snapshot's step, or ``None`` when online snapshots are disabled
        or none exists yet.
        """
        if self.snapshots is None or not self.model.built:
            return None
        return self.snapshots.restore_latest(self.model)

    def train_incremental(self, db: ReplayDB) -> TrainingReport:
        """Online update: fit on rows appended since the last decision point.

        The flat-cost decision epoch.  The first call delegates to the
        from-scratch oracle :meth:`train` (bit-for-bit: the pinned-seed
        equivalence test holds the two paths together), then seeds the
        high-water-mark cursor and the prioritized replay buffer.  Every
        later call:

        1. fetches the (burst-bounded) rows above the cursor -- O(new),
           not O(history);
        2. scores them *prequentially* (predict-then-train), which yields
           an honest held-out error for the report and feeds the
           Page-Hinkley drift detector with the cycle's mean relative
           residual;
        3. merges the rows into the running normalization statistics;
        4. mixes them with a prioritized sample of buffered history
           (TD-style error x recency weighting, importance-weight
           corrected in the loss) and runs a few warm-start SGD epochs --
           a drift detection multiplies the epoch budget for the cycle's
           re-adaptation burst;
        5. re-scores the batch to refresh replay priorities, and
           periodically snapshots the weights for the guardrail's
           loss-explosion rollback.

        Every step is O(new + replay_sample + capacity) regardless of
        ReplayDB size, which is what ``benchmarks/bench_online.py`` gates.
        """
        if not self.config.online_learning:
            raise ModelError(
                "train_incremental requires config.online_learning=True; "
                "use train() for the from-scratch path"
            )
        if not self.trained:
            with self.obs.span("train_incremental", bootstrap=True):
                report = self.train(db)
                self._bootstrap_online_state(db)
            return report
        with self.obs.span("train_incremental"):
            ids, fresh = db.accesses_since(
                self._hwm, limit=self.config.online_max_new_rows
            )
            if not ids:
                # Nothing new arrived: the model is unchanged, the last
                # report still describes it.
                return self.last_report
            if self.capture_provenance:
                self.last_window = (ids[0], ids[-1])
            self._hwm = ids[-1]
            start = time.perf_counter()
            # -- prequential evaluation (predict before training) ----------
            fresh_true = self.pipeline.target_vector(fresh)
            fresh_pred = self.pipeline.inverse_transform_target(
                self.model.predict(
                    self.pipeline.transform_features(fresh)
                ).ravel()
            )
            mare, mare_std = mean_absolute_relative_error(
                fresh_pred, fresh_true
            )
            constant_mare, _ = mean_absolute_relative_error(
                np.full_like(fresh_true, self._target_mean), fresh_true
            )
            drift = False
            if np.isfinite(mare):
                drift = self.drift_detector.update(mare / 100.0)
            if drift:
                statistic = self.drift_detector.statistic
                self.drift_detector.reset()
                self.obs.emit(
                    "drift-detected",
                    t=fresh[-1].close_time,
                    step=self._updates,
                    mean_relative_error=mare / 100.0,
                    statistic=statistic,
                )
            # -- incremental normalization + replay mixing -----------------
            self._update_target_mean(fresh_true)
            self.pipeline.partial_fit(fresh)
            replay_ids = np.empty(0, dtype=np.int64)
            replay_weights = np.empty(0, dtype=np.float64)
            if self.config.replay_sample_rows > 0 and len(self.replay):
                replay_ids, replay_weights = self.replay.sample(
                    self.config.replay_sample_rows
                )
                order = np.argsort(replay_ids)
                replay_ids = replay_ids[order]
                replay_weights = replay_weights[order]
            self.replay.add(ids)
            replayed = db.accesses_by_id(replay_ids)
            if len(replayed) != len(replay_ids):
                raise ModelError(
                    f"replay sample fetched {len(replayed)} rows for "
                    f"{len(replay_ids)} buffered ids; ReplayDB rows must "
                    "never disappear under the buffer"
                )
            records = replayed + fresh
            batch_ids = np.concatenate(
                (replay_ids, np.asarray(ids, dtype=np.int64))
            )
            weights = np.concatenate(
                (replay_weights, np.ones(len(fresh), dtype=np.float64))
            )
            x = self.pipeline.transform_features(records)
            y = self.pipeline.transform_target(records)
            if self.capture_provenance:
                self.last_feature_digest = _digest(x)
            epochs = self.config.online_epochs * (
                self.config.drift_burst_multiplier if drift else 1
            )
            optimizer = get_optimizer(
                self.config.optimizer, learning_rate=self.config.learning_rate
            )
            with self.obs.span(
                "model_fit", epochs=epochs, rows=len(records)
            ):
                history = self.model.fit(
                    x, y,
                    epochs=epochs,
                    batch_size=self.config.batch_size,
                    optimizer=optimizer,
                    sample_weight=weights,
                )
            # -- refresh priorities and calibration ------------------------
            post_pred = self.pipeline.inverse_transform_target(
                self.model.predict(x).ravel()
            )
            post_true = self.pipeline.inverse_transform_target(y)
            with np.errstate(divide="ignore", invalid="ignore"):
                scale = np.maximum(np.abs(post_true), 1e-12)
                residuals = np.abs(post_pred - post_true) / scale
            self.replay.update_priorities(batch_ids, residuals)
            fresh_post_pred = post_pred[len(replayed):]
            fresh_post_true = post_true[len(replayed):]
            self.adjuster.fit(fresh_post_pred, fresh_post_true)
            diverged = bool(
                history.diverged
                or is_diverged(fresh_post_pred, fresh_post_true)
            )
            elapsed = time.perf_counter() - start
            self._updates += 1
            if (
                self.snapshots is not None
                and not diverged
                and self.config.target_snapshot_every > 0
                and self._updates % self.config.target_snapshot_every == 0
            ):
                self.snapshots.save(self.model, self._updates)
            report = TrainingReport(
                samples=len(records),
                epochs=history.epochs_run,
                train_seconds=elapsed,
                test_mare=mare,
                test_mare_std=mare_std,
                constant_mare=constant_mare,
                diverged=diverged,
                adjustment_mae=self.adjuster.mae,
                adjustment_sign=self.adjuster.sign,
                mode="incremental",
                new_rows=len(fresh),
                replayed_rows=len(replayed),
                drift_detected=drift,
            )
        self.last_report = report
        self._m_trainings.inc()
        self._m_train_rows.inc(len(records))
        self._h_train.observe(elapsed)
        self._h_engine_train.observe(elapsed)
        self._g_test_mare.set(report.test_mare)
        self._g_skillful.set(1.0 if report.skillful else 0.0)
        return report

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable engine state, *excluding* model weights.

        Weights are large binary arrays and are checkpointed separately
        through :mod:`repro.nn.serialization` (with their own checksums);
        this dict covers everything else a restored engine needs to behave
        identically: normalization bounds, the calibrated adjuster, the
        last training report, and the model's RNG stream.
        """
        return {
            "pipeline": self.pipeline.state_dict(),
            "adjuster": self.adjuster.state_dict(),
            "last_report": (
                asdict(self.last_report)
                if self.last_report is not None else None
            ),
            "last_predicted_mean": self.last_predicted_mean,
            "model_built": self.model.built,
            "model_rng": self.model._rng.bit_generator.state,
            "online": {
                "hwm": self._hwm,
                "updates": self._updates,
                "target_mean": self._target_mean,
                "target_count": self._target_count,
                "replay": (
                    self.replay.state_dict()
                    if self.replay is not None else None
                ),
                "drift": (
                    self.drift_detector.state_dict()
                    if self.drift_detector is not None else None
                ),
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output.

        Builds the model if it was built at capture time (the caller then
        loads the weight file over the freshly initialized parameters) and
        restores the RNG stream *after* building, so the stream position
        matches the original process exactly.
        """
        self.pipeline.load_state_dict(state["pipeline"])
        self.adjuster.load_state_dict(state["adjuster"])
        self.last_report = (
            TrainingReport(**state["last_report"])
            if state["last_report"] is not None else None
        )
        self.last_predicted_mean = state["last_predicted_mean"]
        if state["model_built"] and not self.model.built:
            self.model.build(self.config.z)
        self.model._rng.bit_generator.state = state["model_rng"]
        # Checkpoints from before the online-learning mode carry no
        # "online" section; the zero-state defaults already apply.
        online = state.get("online")
        if online is not None:
            self._hwm = int(online["hwm"])
            self._updates = int(online["updates"])
            self._target_mean = float(online["target_mean"])
            self._target_count = int(online["target_count"])
            if online["replay"] is not None and self.replay is not None:
                self.replay.load_state_dict(online["replay"])
            if online["drift"] is not None and self.drift_detector is not None:
                self.drift_detector.load_state_dict(online["drift"])

    # -- prediction --------------------------------------------------------
    def predict_location_throughputs(
        self, base: AccessRecord, fsids: list[int]
    ) -> dict[int, float]:
        """Predicted throughput (bytes/s) of ``base``'s file per location.

        Applies the MAE-sign adjustment when configured.  Raw (normalized)
        model outputs are inverse-transformed into physical units so
        locations are compared on bytes/s.
        """
        if not self.trained:
            raise ModelError("engine must be trained before predicting")
        probe = self.pipeline.build_location_probe(base, fsids)
        predictions = self.model.predict(probe).ravel()
        throughput = self.pipeline.inverse_transform_target(predictions)
        if self.config.adjust_predictions:
            throughput = self.adjuster.adjust(throughput)
        return dict(zip(fsids, (float(v) for v in throughput)))

    def predict_throughput_matrix(
        self, bases: list[AccessRecord], fsids: list[int]
    ) -> np.ndarray:
        """Predicted throughput for every (base access, location) pair.

        The batched decision-path core: one probe tensor covering all
        ``len(bases) * len(fsids)`` candidate placements, one forward pass,
        one vectorized inverse-transform/adjustment.  Returns an array of
        shape ``(len(bases), len(fsids))`` where entry ``(i, j)`` equals
        ``predict_location_throughputs(bases[i], fsids)[fsids[j]]`` -- the
        per-base path survives as the numeric reference, and the
        equivalence is regression-tested bit-for-bit.
        """
        if not self.trained:
            raise ModelError("engine must be trained before predicting")
        probe = self.pipeline.build_location_probe_batch(bases, fsids)
        return self._predict_probe(probe, len(bases), len(fsids))

    def _predict_probe(
        self, probe: np.ndarray, n_bases: int, n_fsids: int
    ) -> np.ndarray:
        """One forward pass + vectorized post-processing over a probe."""
        with self.obs.span("model_predict", rows=len(probe)):
            predictions = self.model.predict(probe).ravel()
            throughput = self.pipeline.inverse_transform_target(predictions)
            if self.config.adjust_predictions:
                throughput = self.adjuster.adjust(throughput)
        self._m_predictions.inc(len(probe))
        return throughput.reshape(n_bases, n_fsids)

    def _gather_probe_bases(
        self, db: ReplayDB, fids: list[int]
    ) -> tuple[dict[int, tuple[int, int, int]], np.ndarray | None]:
        """Recent telemetry for the probed files as one raw feature matrix.

        One window-function ReplayDB query replaces the per-file loop.
        When every feature derives from the numeric access columns the
        telemetry never materializes AccessRecords at all (columnar fast
        path); extra-telemetry feature sets fall back to record batches.
        Returns ``(per_fid, raw)`` where ``per_fid`` maps each probed fid
        to its ``(start, stop, current_fsid)`` row span into ``raw``.
        """
        limit = self.config.probe_samples
        if self.pipeline.columnar:
            spans, columns = db.recent_access_columns_per_file(
                limit, fids=fids
            )
            if not spans:
                return {}, None
            per_fid = {
                fid: (start, stop, int(columns["fsid"][stop - 1]))
                for fid, start, stop in spans
            }
            return per_fid, self.pipeline.feature_matrix_from_columns(columns)
        recent_by_fid = db.recent_accesses_per_file(limit, fids=fids)
        if not recent_by_fid:
            return {}, None
        bases: list[AccessRecord] = []
        per_fid = {}
        for fid in sorted(recent_by_fid):
            recent = recent_by_fid[fid]
            per_fid[fid] = (
                len(bases), len(bases) + len(recent), recent[-1].fsid
            )
            bases.extend(recent)
        return per_fid, self.pipeline.feature_matrix(bases)

    def ranking_correlation(
        self,
        db: ReplayDB,
        device_by_fsid: dict[int, str],
        *,
        probe_bases: int = 32,
    ) -> float:
        """Agreement between predicted and observed device orderings.

        Spearman rank correlation between (a) the model's mean per-device
        prediction over a sample of recent accesses and (b) each device's
        mean observed target in the ReplayDB.  +1 means the model ranks
        devices exactly as the telemetry does; negative means the model is
        *inverted* and acting on it would move files toward the worst
        devices.  Returns 1.0 when fewer than two devices have telemetry.
        """
        if not self.trained:
            raise ModelError("engine must be trained before predicting")
        observed: dict[int, float] = {}
        for fsid, device in device_by_fsid.items():
            try:
                tp = db.average_throughput(device=device)
            except Exception:
                continue
            # For latency targets lower observed *throughput* still means
            # a worse device, so the observed ordering is the same.
            observed[fsid] = tp
        if len(observed) < 2:
            return 1.0
        fsids = sorted(observed)
        bases = db.recent_accesses(probe_bases)
        if bases:
            # One batched forward pass over every (base, device) probe
            # instead of a model call per base: correlation checks run
            # every training cycle, so they ride the same fast path as
            # propose_layout.
            matrix = self.predict_throughput_matrix(bases, fsids)
            predicted = [float(v) for v in _ordered_column_sum(matrix)]
        else:
            predicted = [0.0 for _ in fsids]
        if not self._maximize:
            # Latency predictions: smaller is better, so invert for the
            # comparison against observed throughput.
            predicted = [-p for p in predicted]
        return _spearman(predicted, [observed[fsid] for fsid in fsids])

    def _choose_placement(
        self, scores: dict[int, float], current_fsid: int
    ) -> tuple[int, float]:
        """The act/skip rule shared by the batched and reference paths."""
        if self._maximize:
            best = max(scores, key=lambda fsid: scores[fsid])
        else:
            best = min(scores, key=lambda fsid: scores[fsid])
        if current_fsid in scores:
            current_score = scores[current_fsid]
            gain = (
                scores[best] - current_score
                if self._maximize
                else current_score - scores[best]
            )
            # Propose a move only when the model predicts a clear win
            # at the new location; flat or marginal predictions keep
            # the file where it is ("it only applies layouts that the
            # NN predicts will increase throughput performance", VI).
            threshold = self.config.min_gain_fraction * abs(current_score)
            if best != current_fsid and gain <= threshold:
                best = current_fsid
                gain = 0.0
        else:
            # The file's current device is not a candidate (it stopped
            # accepting placements): moving to the best available
            # location is always proposed.
            gain = abs(scores[best])
        return best, gain

    def propose_layout(
        self,
        db: ReplayDB,
        fids: list[int],
        device_by_fsid: dict[int, str],
    ) -> tuple[dict[int, str], dict[int, float]]:
        """Highest-predicted-throughput device for every file.

        Returns ``(layout, gains)``: the proposed fid -> device mapping and
        each file's predicted throughput improvement over staying put
        (bytes/s), which the move cap uses to prioritise.  Files with no
        telemetry yet are skipped (nothing to probe from).

        Batched decision path: one window-function ReplayDB query fetches
        every file's recent accesses, one forward pass scores every
        (file, access, location) probe, and the per-file aggregation
        reduces the prediction matrix.  Bit-for-bit equivalent to
        :meth:`propose_layout_reference` (regression-tested), which remains
        as the readable per-file specification.
        """
        if not self.trained:
            raise ModelError("engine must be trained before predicting")
        if not device_by_fsid:
            raise ModelError("no candidate locations supplied")
        with self.obs.span("propose_layout", files=len(fids)):
            fsids = sorted(device_by_fsid)
            per_fid, raw = self._gather_probe_bases(db, fids)
            layout: dict[int, str] = {}
            gains: dict[int, float] = {}
            chosen_scores: list[float] = []
            self.last_chosen_scores = {}
            if self.capture_provenance:
                self.last_candidates = {}
            if raw is None:
                self.last_predicted_mean = None
                return layout, gains
            probe = self.pipeline.build_location_probe_from_matrix(
                raw, fsids
            )
            matrix = self._predict_probe(probe, len(raw), len(fsids))
            for fid in fids:
                span = per_fid.get(fid)
                if span is None:
                    continue
                start, stop, current_fsid = span
                # Average the per-location scores over several recent
                # accesses: a single access's features carry noise (burst
                # position, request size) that would otherwise whipsaw
                # placements.
                totals = _ordered_column_sum(matrix[start:stop])
                scores = {
                    fsid: float(total) / (stop - start)
                    for fsid, total in zip(fsids, totals)
                }
                best, gain = self._choose_placement(scores, current_fsid)
                layout[fid] = device_by_fsid[best]
                gains[fid] = gain
                chosen_scores.append(scores[best])
                self.last_chosen_scores[fid] = scores[best]
                if self.capture_provenance:
                    self.last_candidates[fid] = scores
            self.last_predicted_mean = (
                float(np.mean(chosen_scores)) if chosen_scores else None
            )
            return layout, gains

    def propose_layout_reference(
        self,
        db: ReplayDB,
        fids: list[int],
        device_by_fsid: dict[int, str],
    ) -> tuple[dict[int, str], dict[int, float]]:
        """The legacy per-file decision loop, kept as the numeric reference.

        Issues one ReplayDB query and ``probe_samples`` model calls per
        file -- O(files x probe_samples) forward passes against the batched
        path's one.  :meth:`propose_layout` must match this bit-for-bit;
        the equivalence test and the decision-epoch micro-benchmark both
        run the two side by side.
        """
        if not device_by_fsid:
            raise ModelError("no candidate locations supplied")
        fsids = sorted(device_by_fsid)
        layout: dict[int, str] = {}
        gains: dict[int, float] = {}
        chosen_scores: list[float] = []
        self.last_chosen_scores = {}
        for fid in fids:
            recent = db.recent_accesses(self.config.probe_samples, fid=fid)
            if not recent:
                continue
            totals = {fsid: 0.0 for fsid in fsids}
            for base in recent:
                scores = self.predict_location_throughputs(base, fsids)
                for fsid in fsids:
                    totals[fsid] += scores[fsid]
            scores = {
                fsid: total / len(recent) for fsid, total in totals.items()
            }
            best, gain = self._choose_placement(scores, recent[-1].fsid)
            layout[fid] = device_by_fsid[best]
            gains[fid] = gain
            chosen_scores.append(scores[best])
            self.last_chosen_scores[fid] = scores[best]
        self.last_predicted_mean = (
            float(np.mean(chosen_scores)) if chosen_scores else None
        )
        return layout, gains
