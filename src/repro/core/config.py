"""Geomancy configuration.

Defaults follow the paper's live experiment: Table-I model 1, the six live
features, 12,000 training rows, 200 epochs of plain SGD, a moving-average
smoothing window, 10% random exploration, data movement every 5 workload
runs, and at most 14 files moved at once ("On average, Geomancy moves
between 1-14 files in one movement").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.transport import SHED_POLICIES
from repro.errors import ConfigurationError
from repro.faults.schedule import parse_fault_event
from repro.features.pipeline import DEFAULT_LIVE_FEATURES
from repro.nn.model_zoo import ARCHITECTURES, is_recurrent
from repro.observability.metrics import DEFAULT_BUCKETS


@dataclass
class GeomancyConfig:
    """All Geomancy tunables in one place."""

    model_number: int = 1
    features: tuple[str, ...] = field(default=DEFAULT_LIVE_FEATURES)
    training_rows: int = 12_000
    epochs: int = 200
    batch_size: int = 32
    learning_rate: float = 0.2
    optimizer: str = "sgd"
    smoothing_window: int = 50
    #: window length for the recurrent Table-I models
    timesteps: int = 8
    #: recent accesses per file averaged in the per-location probe
    probe_samples: int = 8
    #: a move is proposed only when the predicted throughput at the best
    #: location exceeds the current location's by this fraction ("it only
    #: applies layouts that the NN predicts will increase throughput")
    min_gain_fraction: float = 0.10
    exploration_rate: float = 0.10
    cooldown_runs: int = 5
    max_files_per_move: int = 14
    #: apply the section V-G MAE-sign adjustment to predictions
    adjust_predictions: bool = True
    #: continue training the existing weights each cycle ("re-trains a
    #: neural network using the most recent values") instead of
    #: reinitializing; warm starts accumulate skill across cycles
    warm_start: bool = True
    #: act only on cycles whose model out-predicts a constant baseline
    #: (skip the layout otherwise; see TrainingReport.skillful)
    require_skill: bool = True
    #: act only when the model's per-device ranking agrees with observed
    #: telemetry (Spearman >= 0); blocks inverted models whose layout
    #: would herd files onto the worst devices
    require_ranking_sanity: bool = True
    #: backstop: never act on a model whose held-out error exceeds this
    #: (percent), regardless of its skill against the constant baseline
    max_actionable_mare: float = 300.0
    #: only move files whose observed inter-access gap accommodates the
    #: estimated transfer (the section X future-work gap model,
    #: implemented by repro.core.scheduler.AccessGapScheduler)
    use_gap_scheduler: bool = False
    #: how many times a failed file move is retried before giving up
    #: (0 disables retries)
    max_move_retries: int = 3
    #: base delay before the first retry; doubles per attempt
    retry_backoff_s: float = 5.0
    #: cap on the exponential retry backoff
    retry_backoff_max_s: float = 300.0
    #: spread retry delays with seeded full jitter (uniform over the
    #: capped backoff window) so overload bursts cannot synchronize
    #: failed moves into a retry storm; off by default so ordinary runs
    #: stay bit-for-bit identical to the deterministic schedule
    retry_jitter: bool = False
    #: -- overload & QoS (repro.agents.qos / BoundedTransport) ------------
    #: telemetry transport queue capacity in messages (0 = unbounded, the
    #: legacy behaviour); bounded queues shed per ``queue_shed_policy``
    telemetry_queue_capacity: int = 0
    #: what a full bounded queue does with new traffic: "drop-oldest"
    #: evicts the oldest lowest-priority message, "drop-newest" refuses
    #: the offer (backpressure), "reject" refuses without displacement
    queue_shed_policy: str = "drop-oldest"
    #: put a per-tenant token-bucket admission controller in front of the
    #: Interface Daemon (control > movement > telemetry priority classes)
    admission_enabled: bool = False
    #: default per-tenant sustained ingest rate (records per simulated s)
    admission_rate_records_s: float = 50_000.0
    #: per-tenant burst allowance (bucket depth, records)
    admission_burst_records: int = 10_000
    #: (tenant, rate) overrides for specific tenants
    admission_tenant_rates: tuple[tuple[str, float], ...] = ()
    #: fraction of the burst reserved for control/movement traffic --
    #: telemetry may not drain the bucket below this floor
    admission_control_reserve_fraction: float = 0.1
    #: dead letters kept in the bounded ring store (0 disables the store;
    #: dead letters are then only counted, the legacy behaviour)
    dead_letter_capacity: int = 0
    #: JSONL path the dead-letter ring persists to (None = memory only)
    dead_letter_path: str | None = None
    #: consecutive failed moves toward one device before the circuit
    #: breaker quarantines it from new placements
    quarantine_threshold: int = 3
    #: how long a quarantined device is off-limits before one probe move
    #: is allowed through again
    quarantine_duration_s: float = 600.0
    #: fault-schedule entries for chaos runs, in the spec-string grammar of
    #: :mod:`repro.faults.schedule` (e.g. "kill:file0@40%"); consumed by
    #: the chaos harness, ignored by ordinary runs
    fault_schedule: tuple[str, ...] = ()
    #: modeling target: "throughput" (the paper's live system) or
    #: "latency" (the sensitivity the paper defers to future work)
    target: str = "throughput"
    #: drive workload runs through the vectorized access pipeline
    #: (Cluster.access_batch / StorageDevice.serve_batch).  Bit-for-bit
    #: identical to the scalar reference loop -- same RNG draw order per
    #: device -- so this only trades per-access Python overhead for
    #: batched numpy kernels; disable to run the scalar oracle instead
    batched_simulation: bool = True
    #: -- durability & safe mode (repro.recovery) -------------------------
    #: checkpoint the full system state every N measured runs (0 disables;
    #: consumed by the recoverable harness, ignored by ordinary runs)
    checkpoint_every: int = 0
    #: rotated checkpoint generations kept on disk
    checkpoint_keep: int = 3
    #: wrap the learning policy in the safe-mode guardrail
    guardrail_enabled: bool = False
    #: realized-vs-predicted throughput pairs per regression check window
    guardrail_window: int = 4
    #: trip when realized throughput over the window falls below this
    #: fraction of what the engine predicted for its own placements
    guardrail_regression_fraction: float = 0.5
    #: trip when held-out training error exceeds this multiple of the
    #: first healthy cycle's error (loss explosion)
    guardrail_explode_factor: float = 10.0
    #: control cycles the policy stays demoted to the fallback after a trip
    guardrail_cooldown_runs: int = 3
    #: policy used while demoted: "static" (hold layout) or "lru"
    fallback_policy: str = "static"
    #: -- online continual learning (DRLEngine.train_incremental) ---------
    #: train incrementally on rows appended since the last decision point
    #: (plus prioritized replay) instead of from scratch on the window;
    #: keeps decision-epoch cost flat as ReplayDB grows
    online_learning: bool = False
    #: SGD epochs per incremental update (vs ``epochs`` from scratch)
    online_epochs: int = 8
    #: most recent new rows consumed per incremental update (burst bound)
    online_max_new_rows: int = 2_048
    #: prioritized replay buffer capacity (row ids tracked)
    replay_capacity: int = 20_000
    #: replayed history rows mixed into each incremental update
    replay_sample_rows: int = 256
    #: prioritization sharpening exponent (0 = uniform)
    replay_alpha: float = 0.6
    #: importance-sampling correction strength (0 = none, 1 = full)
    replay_beta: float = 0.4
    #: rows after which a buffered row's recency weight halves
    replay_recency_half_life: float = 10_000.0
    #: frozen-weight snapshot cadence in incremental updates (0 disables);
    #: the guardrail rolls back to the newest snapshot on loss explosion
    target_snapshot_every: int = 10
    #: rotated weight snapshots kept
    target_snapshot_keep: int = 3
    #: directory for weight snapshots (None = private temp dir)
    weight_snapshot_dir: str | None = None
    #: Page-Hinkley drift tolerance on the per-cycle mean relative error
    drift_delta: float = 0.05
    #: Page-Hinkley detection threshold on the cumulative statistic
    drift_threshold: float = 1.0
    #: incremental cycles before the drift detector may fire
    drift_min_cycles: int = 8
    #: online_epochs multiplier for the re-adaptation burst after drift
    drift_burst_multiplier: int = 4
    #: -- observability (repro.observability) -----------------------------
    #: master switch for the metrics/tracing/event instrumentation; off by
    #: default so ordinary experiment runs pay only no-op handles
    observability_enabled: bool = False
    #: record counters/gauges/histograms (requires observability_enabled)
    metrics_enabled: bool = True
    #: record control-loop spans (requires observability_enabled)
    trace_enabled: bool = True
    #: fraction of control ticks whose spans are recorded; sampling is
    #: deterministic in the tick index, never an RNG draw
    trace_sample_rate: float = 1.0
    #: histogram bucket upper bounds (seconds) for latency metrics
    histogram_buckets: tuple[float, ...] = DEFAULT_BUCKETS
    #: JSONL sink the instrumented harness appends metric snapshots to
    #: (None disables the sink)
    metrics_snapshot_path: str | None = None
    #: Chrome-trace JSON path the instrumented harness exports spans to
    #: (None disables the export)
    trace_path: str | None = None
    #: -- causal tracing / provenance / SLOs (PR 9) ------------------------
    #: stamp trace ids on telemetry batches, layout commands and movement
    #: records and resolve every message's fate through a CausalContext;
    #: off by default -- the legacy plane carries no ids at all
    causal_tracing_enabled: bool = False
    #: record per-decision provenance (training window rowids, feature
    #: digest, per-candidate predictions, chosen layout, movement ids);
    #: requires causal_tracing_enabled for the movement -> decision join
    provenance_enabled: bool = False
    #: JSONL flight-recorder path for the provenance ledger (None keeps
    #: the ledger in memory only)
    provenance_path: str | None = None
    #: in-memory entries the ledger retains per store (oldest evicted)
    provenance_max_entries: int = 4096
    #: bytes after which the provenance JSONL rotates to <path>.1
    provenance_rotate_bytes: int = 4_000_000
    #: evaluate control-plane SLOs (delivery ratio, queue-delay, throughput
    #: floor) with multi-window burn-rate alerting on the event bus
    slo_enabled: bool = False
    #: queue delay (seconds) above which a drained batch burns the
    #: queue-delay SLO's error budget
    slo_queue_delay_threshold_s: float = 0.05
    #: measured-run throughput (GB/s) below which the throughput-floor
    #: SLO's budget burns (0 = any positive throughput is good)
    slo_throughput_floor_gbps: float = 0.0
    #: route sustained SLO burn alerts into the guardrail as external
    #: trips (requires a guardrail-carrying harness and slo_enabled)
    slo_arm_guardrail: bool = False
    #: -- sharded scale-out (repro.sharding / experiments.scale) ----------
    #: decision shards the scale harness partitions devices/files into;
    #: 1 (the default) is the legacy single-agent path, bit-for-bit
    #: identical to runs that predate the sharding layer
    shards: int = 1
    #: worker processes the scale harness may spread shard cells over
    #: (1 = the deterministic serial fallback)
    shard_workers: int = 1
    #: a cross-shard move is accepted only when the destination shard's
    #: observed throughput beats the source's by this fraction
    cross_shard_margin: float = 0.10
    #: cross-shard moves the coordinator may accept per fusion boundary
    #: (0 disables cross-shard migration entirely)
    max_cross_shard_moves: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.model_number not in ARCHITECTURES:
            raise ConfigurationError(
                f"model_number must be one of {sorted(ARCHITECTURES)}, "
                f"got {self.model_number}"
            )
        if not self.features:
            raise ConfigurationError("features must be non-empty")
        if self.training_rows < 10:
            raise ConfigurationError(
                f"training_rows must be >= 10, got {self.training_rows}"
            )
        if self.epochs < 1:
            raise ConfigurationError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.smoothing_window < 1:
            raise ConfigurationError(
                f"smoothing_window must be >= 1, got {self.smoothing_window}"
            )
        if self.timesteps < 1:
            raise ConfigurationError(
                f"timesteps must be >= 1, got {self.timesteps}"
            )
        if self.probe_samples < 1:
            raise ConfigurationError(
                f"probe_samples must be >= 1, got {self.probe_samples}"
            )
        if self.min_gain_fraction < 0:
            raise ConfigurationError(
                f"min_gain_fraction must be >= 0, got {self.min_gain_fraction}"
            )
        if not 0.0 <= self.exploration_rate <= 1.0:
            raise ConfigurationError(
                f"exploration_rate must be in [0, 1], got {self.exploration_rate}"
            )
        if self.cooldown_runs < 1:
            raise ConfigurationError(
                f"cooldown_runs must be >= 1, got {self.cooldown_runs}"
            )
        if self.max_files_per_move < 1:
            raise ConfigurationError(
                f"max_files_per_move must be >= 1, got {self.max_files_per_move}"
            )
        if self.max_actionable_mare <= 0:
            raise ConfigurationError(
                f"max_actionable_mare must be positive, "
                f"got {self.max_actionable_mare}"
            )
        if self.target not in ("throughput", "latency"):
            raise ConfigurationError(
                f"target must be 'throughput' or 'latency', got {self.target!r}"
            )
        if self.max_move_retries < 0:
            raise ConfigurationError(
                f"max_move_retries must be >= 0, got {self.max_move_retries}"
            )
        if self.retry_backoff_s <= 0:
            raise ConfigurationError(
                f"retry_backoff_s must be positive, got {self.retry_backoff_s}"
            )
        if self.retry_backoff_max_s < self.retry_backoff_s:
            raise ConfigurationError(
                f"retry_backoff_max_s must be >= retry_backoff_s, "
                f"got {self.retry_backoff_max_s} < {self.retry_backoff_s}"
            )
        if self.telemetry_queue_capacity < 0:
            raise ConfigurationError(
                f"telemetry_queue_capacity must be >= 0, "
                f"got {self.telemetry_queue_capacity}"
            )
        if self.queue_shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"queue_shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.queue_shed_policy!r}"
            )
        if self.admission_rate_records_s <= 0:
            raise ConfigurationError(
                f"admission_rate_records_s must be positive, "
                f"got {self.admission_rate_records_s}"
            )
        if self.admission_burst_records < 1:
            raise ConfigurationError(
                f"admission_burst_records must be >= 1, "
                f"got {self.admission_burst_records}"
            )
        # Checkpoint round trips deserialize tuples as lists; normalize
        # before validating the tenant overrides.
        self.admission_tenant_rates = tuple(
            (str(tenant), float(rate))
            for tenant, rate in self.admission_tenant_rates
        )
        if any(rate <= 0 for _, rate in self.admission_tenant_rates):
            raise ConfigurationError(
                f"admission_tenant_rates must all be positive, "
                f"got {self.admission_tenant_rates}"
            )
        if not 0.0 <= self.admission_control_reserve_fraction < 1.0:
            raise ConfigurationError(
                f"admission_control_reserve_fraction must be in [0, 1), "
                f"got {self.admission_control_reserve_fraction}"
            )
        if self.dead_letter_capacity < 0:
            raise ConfigurationError(
                f"dead_letter_capacity must be >= 0, "
                f"got {self.dead_letter_capacity}"
            )
        if self.quarantine_threshold < 1:
            raise ConfigurationError(
                f"quarantine_threshold must be >= 1, "
                f"got {self.quarantine_threshold}"
            )
        if self.quarantine_duration_s <= 0:
            raise ConfigurationError(
                f"quarantine_duration_s must be positive, "
                f"got {self.quarantine_duration_s}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_keep < 1:
            raise ConfigurationError(
                f"checkpoint_keep must be >= 1, got {self.checkpoint_keep}"
            )
        if self.guardrail_window < 1:
            raise ConfigurationError(
                f"guardrail_window must be >= 1, got {self.guardrail_window}"
            )
        if not 0.0 < self.guardrail_regression_fraction < 1.0:
            raise ConfigurationError(
                f"guardrail_regression_fraction must be in (0, 1), "
                f"got {self.guardrail_regression_fraction}"
            )
        if self.guardrail_explode_factor <= 1.0:
            raise ConfigurationError(
                f"guardrail_explode_factor must be > 1, "
                f"got {self.guardrail_explode_factor}"
            )
        if self.guardrail_cooldown_runs < 1:
            raise ConfigurationError(
                f"guardrail_cooldown_runs must be >= 1, "
                f"got {self.guardrail_cooldown_runs}"
            )
        if self.fallback_policy not in ("static", "lru"):
            raise ConfigurationError(
                f"fallback_policy must be 'static' or 'lru', "
                f"got {self.fallback_policy!r}"
            )
        if self.online_learning and is_recurrent(self.model_number):
            raise ConfigurationError(
                "online_learning supports the feed-forward Table-I models "
                "only; recurrent windows need contiguous chronology that "
                f"replay mixing breaks (model {self.model_number} is "
                "recurrent)"
            )
        if self.online_epochs < 1:
            raise ConfigurationError(
                f"online_epochs must be >= 1, got {self.online_epochs}"
            )
        if self.online_max_new_rows < 1:
            raise ConfigurationError(
                f"online_max_new_rows must be >= 1, "
                f"got {self.online_max_new_rows}"
            )
        if self.replay_capacity < 1:
            raise ConfigurationError(
                f"replay_capacity must be >= 1, got {self.replay_capacity}"
            )
        if self.replay_sample_rows < 0:
            raise ConfigurationError(
                f"replay_sample_rows must be >= 0, "
                f"got {self.replay_sample_rows}"
            )
        if self.replay_alpha < 0:
            raise ConfigurationError(
                f"replay_alpha must be >= 0, got {self.replay_alpha}"
            )
        if not 0.0 <= self.replay_beta <= 1.0:
            raise ConfigurationError(
                f"replay_beta must be in [0, 1], got {self.replay_beta}"
            )
        if self.replay_recency_half_life <= 0:
            raise ConfigurationError(
                f"replay_recency_half_life must be positive, "
                f"got {self.replay_recency_half_life}"
            )
        if self.target_snapshot_every < 0:
            raise ConfigurationError(
                f"target_snapshot_every must be >= 0, "
                f"got {self.target_snapshot_every}"
            )
        if self.target_snapshot_keep < 1:
            raise ConfigurationError(
                f"target_snapshot_keep must be >= 1, "
                f"got {self.target_snapshot_keep}"
            )
        if self.drift_delta < 0:
            raise ConfigurationError(
                f"drift_delta must be >= 0, got {self.drift_delta}"
            )
        if self.drift_threshold <= 0:
            raise ConfigurationError(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        if self.drift_min_cycles < 1:
            raise ConfigurationError(
                f"drift_min_cycles must be >= 1, got {self.drift_min_cycles}"
            )
        if self.drift_burst_multiplier < 1:
            raise ConfigurationError(
                f"drift_burst_multiplier must be >= 1, "
                f"got {self.drift_burst_multiplier}"
            )
        if not 0.0 < self.trace_sample_rate <= 1.0:
            raise ConfigurationError(
                f"trace_sample_rate must be in (0, 1], "
                f"got {self.trace_sample_rate}"
            )
        # Checkpoint round trips deserialize tuples as lists; normalize.
        self.histogram_buckets = tuple(
            float(b) for b in self.histogram_buckets
        )
        if not self.histogram_buckets:
            raise ConfigurationError("histogram_buckets must be non-empty")
        if any(
            b2 <= b1
            for b1, b2 in zip(self.histogram_buckets, self.histogram_buckets[1:])
        ):
            raise ConfigurationError(
                f"histogram_buckets must be strictly increasing, "
                f"got {self.histogram_buckets}"
            )
        if self.provenance_max_entries < 1:
            raise ConfigurationError(
                f"provenance_max_entries must be >= 1, "
                f"got {self.provenance_max_entries}"
            )
        if self.provenance_rotate_bytes < 4096:
            raise ConfigurationError(
                f"provenance_rotate_bytes must be >= 4096, "
                f"got {self.provenance_rotate_bytes}"
            )
        if self.provenance_enabled and not self.causal_tracing_enabled:
            raise ConfigurationError(
                "provenance_enabled requires causal_tracing_enabled "
                "(decisions join to telemetry through trace ids)"
            )
        if self.slo_queue_delay_threshold_s <= 0:
            raise ConfigurationError(
                f"slo_queue_delay_threshold_s must be positive, "
                f"got {self.slo_queue_delay_threshold_s}"
            )
        if self.slo_throughput_floor_gbps < 0:
            raise ConfigurationError(
                f"slo_throughput_floor_gbps must be >= 0, "
                f"got {self.slo_throughput_floor_gbps}"
            )
        if self.slo_arm_guardrail and not self.slo_enabled:
            raise ConfigurationError(
                "slo_arm_guardrail requires slo_enabled"
            )
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.shard_workers < 1:
            raise ConfigurationError(
                f"shard_workers must be >= 1, got {self.shard_workers}"
            )
        if self.cross_shard_margin < 0:
            raise ConfigurationError(
                f"cross_shard_margin must be >= 0, "
                f"got {self.cross_shard_margin}"
            )
        if self.max_cross_shard_moves < 0:
            raise ConfigurationError(
                f"max_cross_shard_moves must be >= 0, "
                f"got {self.max_cross_shard_moves}"
            )
        for spec in self.fault_schedule:
            # Raises ConfigurationError on a malformed entry.
            parse_fault_event(spec)

    @property
    def z(self) -> int:
        """Number of input features (the paper's Z)."""
        return len(self.features)
