"""The Action Checker (paper section V-H).

"The Action Checker is a separate module that acts as the last sanity check
for file movements in case permissions or availability changes in the
system. ... The Action Checker removes any invalid storage devices. ...  In
case all storage devices are invalid, a random movement is performed. ...
Overall, random decision are used by Geomancy 10% of the runs to keep an
updated list of storage availability on the system."
"""

from __future__ import annotations

import numpy as np

from repro.errors import PolicyError


class ActionChecker:
    """Filters proposed moves against device validity; explores randomly."""

    def __init__(self, exploration_rate: float = 0.10, *, seed: int = 0) -> None:
        if not 0.0 <= exploration_rate <= 1.0:
            raise PolicyError(
                f"exploration_rate must be in [0, 1], got {exploration_rate}"
            )
        self.exploration_rate = float(exploration_rate)
        self._rng = np.random.default_rng(seed)
        #: count of decisions taken randomly (for overhead reporting)
        self.random_decisions = 0
        self.total_decisions = 0

    def check(
        self,
        proposal: dict[int, str],
        valid_devices: set[str],
        current_layout: dict[int, str],
    ) -> dict[int, str]:
        """Produce the layout update that will actually be applied.

        * With probability ``exploration_rate`` the whole decision is
          replaced by a random movement of one file to a random valid
          device.
        * Otherwise proposed targets on invalid devices are dropped (the
          file keeps its current placement).
        * If *every* proposed target is invalid, a random movement is
          performed instead of doing nothing, so Geomancy keeps learning
          ("If we were to not move the files, Geomancy would not know
          whether or not moving it would help").
        """
        if not valid_devices:
            raise PolicyError("no valid devices")
        # Note: the *current* layout may legitimately reference devices
        # outside ``valid_devices`` -- a file can sit on a mount that has
        # since stopped accepting new placements.
        self.total_decisions += 1
        if self._rng.random() < self.exploration_rate:
            self.random_decisions += 1
            return self._random_move(current_layout, valid_devices)
        filtered = {
            fid: device
            for fid, device in proposal.items()
            if device in valid_devices
        }
        if proposal and not filtered:
            self.random_decisions += 1
            return self._random_move(current_layout, valid_devices)
        return filtered

    def _random_move(
        self, current_layout: dict[int, str], valid_devices: set[str]
    ) -> dict[int, str]:
        """Move one random file to a random device other than its own."""
        if not current_layout:
            return {}
        fids = sorted(current_layout)
        fid = int(fids[self._rng.integers(0, len(fids))])
        choices = sorted(valid_devices - {current_layout[fid]})
        if not choices:
            return {}
        device = choices[int(self._rng.integers(0, len(choices)))]
        return {fid: device}

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable exploration state (RNG stream + counters)."""
        return {
            "rng": self._rng.bit_generator.state,
            "random_decisions": self.random_decisions,
            "total_decisions": self.total_decisions,
        }

    def load_state_dict(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        self.random_decisions = int(state["random_decisions"])
        self.total_decisions = int(state["total_decisions"])

    @property
    def random_fraction(self) -> float:
        """Observed fraction of random decisions (~exploration_rate)."""
        if self.total_decisions == 0:
            return 0.0
        return self.random_decisions / self.total_decisions
