"""Workload phase-change detection for the online learning engine.

The fig6 scenario -- a competing workload appears and the throughput
landscape shifts under the tuned layout -- generalizes to any *concept
drift* in the telemetry stream: the mapping from access features to
throughput changes, so the model's residuals grow.  The engine feeds each
incremental cycle's mean prediction residual into a Page-Hinkley test;
when the cumulative deviation exceeds the threshold the engine declares
drift, emits a ``drift-detected`` event, and runs a fast re-adaptation
burst instead of waiting for slow gradient drift to catch up.

Page-Hinkley is the standard sequential change-point statistic for data
streams: it tracks the cumulative difference between each observation and
the running mean (minus a tolerance ``delta``) and signals when that sum
rises ``threshold`` above its historical minimum.  It needs O(1) state,
which keeps the detector's cost flat like everything else on the online
path.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class PageHinkley:
    """One-sided Page-Hinkley test for an upward shift in a stream.

    Detects when recent values run persistently *above* the stream's
    running mean -- for prediction residuals, exactly the signature of a
    workload phase change degrading the model.  ``delta`` is the drift
    tolerance (small persistent deviations below it never accumulate),
    ``threshold`` the detection level on the cumulative statistic, and
    ``min_samples`` suppresses detections before the running mean has
    settled.
    """

    def __init__(
        self,
        *,
        delta: float = 0.05,
        threshold: float = 1.0,
        min_samples: int = 8,
    ) -> None:
        if delta < 0:
            raise ConfigurationError(f"delta must be non-negative, got {delta}")
        if threshold <= 0:
            raise ConfigurationError(
                f"threshold must be positive, got {threshold}"
            )
        if min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        """Forget all history (called after a detection is handled)."""
        self._n = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._cumulative_min = 0.0

    @property
    def samples(self) -> int:
        return self._n

    @property
    def statistic(self) -> float:
        """Current test statistic (cumulative sum above its minimum)."""
        return self._cumulative - self._cumulative_min

    def update(self, value: float) -> bool:
        """Absorb one observation; True when drift is detected.

        The caller owns the response (and typically calls :meth:`reset`
        afterwards so re-adaptation starts from a clean slate).
        """
        value = float(value)
        self._n += 1
        # Running mean includes the current value (standard formulation).
        self._mean += (value - self._mean) / self._n
        self._cumulative += value - self._mean - self.delta
        if self._cumulative < self._cumulative_min:
            self._cumulative_min = self._cumulative
        return (
            self._n >= self.min_samples
            and self.statistic > self.threshold
        )

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "n": self._n,
            "mean": self._mean,
            "cumulative": self._cumulative,
            "cumulative_min": self._cumulative_min,
        }

    def load_state_dict(self, state: dict) -> None:
        self._n = int(state["n"])
        self._mean = float(state["mean"])
        self._cumulative = float(state["cumulative"])
        self._cumulative_min = float(state["cumulative_min"])
