"""Crash-restart-resume matrix: recovery time and determinism.

For every (checkpoint cadence x kill point) cell the benchmark runs the
recoverable control loop to completion, runs an identical twin that is
killed mid-flight, resumes the twin from its checkpoint directory, and
checks the resumed result is bit-for-bit identical to the uninterrupted
one.  Per-cell wall-clock recovery time (restore + replay to the end)
lands in ``benchmarks/out/BENCH_recovery.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

import pytest

from _timing import summarize
from repro.errors import SimulatedCrash
from repro.experiments.recoverable import run_recoverable, resume_recoverable
from repro.experiments.spec import TEST_SCALE

OUT_DIR = Path(__file__).parent / "out"
SEED = 0
KILL_AT_RUN = 10
CADENCES = (1, 5)
KILL_POINTS = ("pre-commit", "mid-checkpoint", "post-commit")


def _run_matrix() -> dict:
    summary: dict = {"scale": TEST_SCALE.name, "seed": SEED, "cells": []}
    workdir = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        for cadence in CADENCES:
            t0 = time.perf_counter()
            base_dir = workdir / f"base-{cadence}"
            baseline = run_recoverable(
                checkpoint_dir=base_dir,
                scale=TEST_SCALE,
                seed=SEED,
                checkpoint_every=cadence,
            )
            uninterrupted_s = time.perf_counter() - t0
            for kill_point in KILL_POINTS:
                cell_dir = workdir / f"cell-{cadence}-{kill_point}"
                try:
                    run_recoverable(
                        checkpoint_dir=cell_dir,
                        scale=TEST_SCALE,
                        seed=SEED,
                        checkpoint_every=cadence,
                        kill_at_run=KILL_AT_RUN,
                        kill_point=kill_point,
                    )
                    raise AssertionError("injected kill did not fire")
                except SimulatedCrash:
                    pass
                t1 = time.perf_counter()
                resumed = resume_recoverable(cell_dir)
                recovery_s = time.perf_counter() - t1
                identical = (
                    resumed.final_layout == baseline.final_layout
                    and resumed.movement_fingerprint()
                    == baseline.movement_fingerprint()
                    and resumed.mean_gbps == baseline.mean_gbps
                    and resumed.accesses == baseline.accesses
                )
                summary["cells"].append(
                    {
                        "checkpoint_every": cadence,
                        "kill_point": kill_point,
                        "kill_at_run": KILL_AT_RUN,
                        "resumed_from_step": resumed.resumed_from_step,
                        "runs_replayed": (
                            KILL_AT_RUN - resumed.resumed_from_step
                        ),
                        "uninterrupted_s": round(uninterrupted_s, 3),
                        "recovery_s": round(recovery_s, 3),
                        "identical": identical,
                    }
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    summary["recovery_time"] = summarize(
        [cell["recovery_s"] for cell in summary["cells"]]
    )
    return summary


@pytest.mark.benchmark(group="recovery")
def test_crash_restart_resume_matrix(benchmark, save_result):
    summary = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "BENCH_recovery.json"
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    save_result(
        "recovery",
        "\n".join(
            f"checkpoint-every={cell['checkpoint_every']} "
            f"kill={cell['kill_point']}: resumed from step "
            f"{cell['resumed_from_step']}, recovery {cell['recovery_s']}s, "
            f"identical={cell['identical']}"
            for cell in summary["cells"]
        ),
    )
    assert all(cell["identical"] for cell in summary["cells"])
    # Resuming replays at most checkpoint_every runs, so recovery is
    # bounded well below re-running the whole experiment.
    for cell in summary["cells"]:
        assert cell["runs_replayed"] <= cell["checkpoint_every"]
