"""Section V-G model selection: shortlist on people, check every mount.

Shape target: the procedure reproduces the paper's reasoning -- the
selected model converges on every mount, even if some lower-people-error
candidates diverge elsewhere ("We chose model 1 since many other models
diverged on one or more other storage points").
"""

from repro.experiments.model_selection import run_model_selection
from repro.experiments.spec import BENCH_SCALE


def test_model_selection(benchmark, save_result):
    result = benchmark.pedantic(
        run_model_selection,
        kwargs={
            "rows": BENCH_SCALE.training_rows,
            "epochs": BENCH_SCALE.epochs,
            "seed": 0,
            "shortlist_size": 4,
        },
        rounds=1,
        iterations=1,
    )
    save_result("model_selection", result.to_text())

    chosen = next(
        c for c in result.candidates if c.model_number == result.selected
    )
    assert chosen.converges_everywhere
    # The selected model's worst mount stays in a usable error band.
    assert chosen.worst_mount_mare < 60.0
