"""Section VIII overhead study: training/prediction/transfer costs.

Shape targets: the 13-feature EOS configuration is not dramatically more
expensive than the 6-feature live one (the paper measured 23.1 s vs 25.3 s
training, i.e. comparable), prediction is orders of magnitude cheaper than
training, and the telemetry transfer matches the modeled ~3 ms per batch.
"""

from repro.experiments.overhead import run_overhead_study
from repro.experiments.spec import BENCH_SCALE


def test_overhead_study(benchmark, save_result):
    result = benchmark.pedantic(
        run_overhead_study,
        kwargs={
            "rows": BENCH_SCALE.training_rows,
            "epochs": BENCH_SCALE.epochs,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    save_result("overhead_study", result.to_text())

    live, eos = result.rows
    assert live.z == 6 and eos.z == 13
    # Comparable training cost across feature widths (within ~3x).
    assert eos.train_seconds < 3.0 * live.train_seconds
    # Prediction is far cheaper than training.
    for row in result.rows:
        assert row.predict_ms / 1000.0 < row.train_seconds / 100.0
    # The transfer cost matches the paper's measured ~3 ms.
    assert 2.0 <= result.transfer_ms_per_batch <= 4.0
