"""Table I benchmark: building all 23 architectures (construction cost)."""

import numpy as np

from repro.experiments.table1_zoo import table1_text
from repro.nn.model_zoo import MODEL_NUMBERS, build_model


def build_all_models():
    models = [build_model(number, z=6, seed=0) for number in MODEL_NUMBERS]
    x = np.zeros((1, 6))
    for model in models:
        model.predict(x)  # forces build of every layer
    return models


def test_table1_zoo(benchmark, save_result):
    models = benchmark.pedantic(build_all_models, rounds=1, iterations=1)
    save_result("table1_zoo", table1_text(z=6))
    assert len(models) == 23
    # Every architecture ends in a single-output head.
    assert all(model.output_dim == 1 for model in models)
