"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at
``BENCH_SCALE`` and writes the rendered result to ``benchmarks/out/`` so
the reproduced numbers are inspectable after a ``--benchmark-only`` run
(pytest captures stdout).  Shape assertions -- who wins, what diverges,
which correlations carry which sign -- run inside the benchmarks.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def save_result():
    """Write a rendered table/figure to benchmarks/out/<name>.txt."""
    OUT_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _save
