"""Fig. 4 benchmark: feature/throughput correlations on the EOS trace."""

from repro.experiments.fig4_correlation import run_fig4
from repro.experiments.spec import BENCH_SCALE


def test_fig4_correlation(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig4,
        kwargs={"rows": BENCH_SCALE.trace_rows, "seed": 4},
        rounds=1,
        iterations=1,
    )
    save_result("fig4_correlation", result.to_text())

    report = result.report
    # Shape: byte counters positive, call timers strongly negative,
    # identifiers flat -- the paper's reading of Fig. 4.
    assert report.sign_of("rb") == 1
    assert report.sign_of("wb") == 1
    assert report.correlations["rt"] < -0.5
    assert report.correlations["wt"] < -0.2
    assert report.sign_of("fid") == 0
    assert report.sign_of("ots") >= 0
    # rt is the most negative bar, as drawn in the paper.
    assert report.correlations["rt"] == min(report.correlations.values())
