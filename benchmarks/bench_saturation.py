"""Saturation benchmark: graceful degradation through and past capacity.

Sweeps offered multi-tenant load at 0.5x/1x/2x/4x of the Interface
Daemon's service capacity over the bounded QoS plane and its unbounded
legacy twin, fed the byte-identical flood.  Gate targets, checked at the
highest >= 2x overload point against the unsaturated baseline:

* bounded queue depth never exceeds the configured capacity (no memory
  blowup);
* control-message delivery stays >= 99% on the bounded plane;
* bounded control p99 latency stays within 2x of its unsaturated value;
* the unbounded twin demonstrably degrades (queue depth grows past
  capacity, control latency explodes or delivery collapses);
* under chaos faults (drops + corruption in flight) the bounded gates
  still hold.

Writes ``BENCH_saturation.json`` next to the other perf-trajectory
records.
"""

import json
import pathlib

from repro.experiments.saturation import run_saturation
from repro.experiments.spec import BENCH_SCALE

JSON_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_saturation.json"
CHAOS_JSON_PATH = (
    pathlib.Path(__file__).parent / "out" / "BENCH_saturation_chaos.json"
)


def _assert_graceful(result) -> None:
    gates = result.acceptance()
    assert gates["bounded_depth_within_capacity"]
    assert gates["bounded_control_delivery_ok"]
    assert gates["bounded_control_p99_ok"], gates["bounded_control_p99_ratio"]
    assert gates["unbounded_depth_exceeds_capacity"]
    assert gates["unbounded_degrades"]


def test_saturation_graceful_degradation(benchmark, save_result):
    result = benchmark.pedantic(
        run_saturation,
        kwargs=dict(scale=BENCH_SCALE, seed=0),
        rounds=1,
        iterations=1,
    )
    save_result("saturation", result.to_text())
    data = json.loads(result.write_json(JSON_PATH).read_text())
    assert data["acceptance"]["bounded_depth_within_capacity"]

    _assert_graceful(result)
    # Shedding is load-proportional on the bounded plane: more overload,
    # more telemetry shed, never control traffic.
    overload = result.cell("bounded", 4.0)
    onload = result.cell("bounded", 0.5)
    assert overload.shed_fraction > onload.shed_fraction
    assert onload.shed_fraction == 0.0
    # The unbounded twin's backlog grows with the overload -- the memory
    # blowup the bounded plane exists to prevent.
    assert (
        result.cell("unbounded", 4.0).peak_queue_depth
        > result.cell("unbounded", 2.0).peak_queue_depth
        > result.capacity
    )


def test_saturation_survives_chaos(save_result):
    result = run_saturation(scale=BENCH_SCALE, seed=0, chaos=True)
    save_result("saturation_chaos", result.to_text())
    result.write_json(CHAOS_JSON_PATH)
    _assert_graceful(result)
    # Corrupted in-flight batches land as dead letters, not crashes.
    assert any(cell.dead_letters > 0 for cell in result.cells)
