"""Table III benchmark: model 1's error on each Bluesky mount.

Shape targets (paper Table III): model 1 converges on every mount with
errors in a 14-45% band -- "the model can correctly capture the normal
rise and fall in I/O throughput on individual devices".
"""

from repro.experiments.spec import BENCH_SCALE
from repro.experiments.table3_permount import (
    average_accuracy,
    run_table3,
    table3_text,
)
from repro.simulation.bluesky import BLUESKY_DEVICE_NAMES


def test_table3_per_mount(benchmark, save_result):
    rows = benchmark.pedantic(
        run_table3,
        kwargs={
            "rows": BENCH_SCALE.training_rows,
            "epochs": BENCH_SCALE.epochs + 40,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    save_result("table3_permount", table3_text(rows))

    assert [row.mount for row in rows] == list(BLUESKY_DEVICE_NAMES)
    # No mount diverges, and every error stays inside a usable band.
    for row in rows:
        assert not row.diverged, row.mount
        assert row.mare < 60.0, (row.mount, row.mare)
    # Overall accuracy is in the paper's "reasonably high" regime.
    assert average_accuracy(rows) > 55.0
