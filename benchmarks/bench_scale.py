"""Sharded scale-out acceptance benchmark.

Three gates from the scale-out work: (1) ``shards=1`` is bit-for-bit
identical to the legacy unsharded engine loop (fingerprint-checked
against the raw-workload oracle), (2) 8 shards beat the unsharded agent
by >= 4x on both the decision-epoch time and the combined
decision+simulation epoch for the *same* workload, and (3) a sweep
point at >= 10^3 devices x >= 10^5 files completes within the CI
budget.  Writes ``BENCH_scale.json`` (including peak-RSS capture) to
``benchmarks/out/`` so the scale trajectory is inspectable per PR.
"""

import pathlib

from repro.experiments.scale import run_scale_benchmark

OUT_DIR = pathlib.Path(__file__).parent / "out"


def test_scale_out(benchmark, save_result):
    result = benchmark.pedantic(
        run_scale_benchmark,
        kwargs={"seed": 0},
        rounds=1,
        iterations=1,
    )
    save_result("scale", result.to_text())
    result.write_json(OUT_DIR / "BENCH_scale.json")
    assert result.identical_at_1_shard
    assert result.decision_epoch_speedup >= 4.0
    assert result.overall_speedup >= 4.0
    big = [
        point for point in result.sweep.results
        if point.point.devices >= 1_000 and point.point.files >= 100_000
    ]
    assert big, "the >=10^3 devices x >=10^5 files sweep point is missing"
    assert all(point.accesses > 0 for point in result.sweep.results)
