"""Table IV benchmark: single-mount placements vs Geomancy.

Shape targets (paper Table IV): file0 has the highest single-mount mean
and the heaviest tail; USBtmp is slowest; Geomancy's throughput exceeds
every mount except raw file0 while spreading its accesses across devices.
"""

from repro.experiments.spec import BENCH_SCALE
from repro.experiments.table4_overhead import run_table4


def test_table4_overhead(benchmark, save_result):
    result = benchmark.pedantic(
        run_table4,
        kwargs={"scale": BENCH_SCALE, "seed": 2},
        rounds=1,
        iterations=1,
    )
    save_result("table4_overhead", result.to_text())

    # file0 fastest single mount, USBtmp slowest.
    assert result.fastest_mount() == "file0"
    means = {name: r.mean_throughput for name, r in result.mounts.items()}
    assert min(means, key=means.get) == "USBtmp"
    # file0's std exceeds its mean (the paper's 7.61 +/- 13.73 pattern).
    file0 = result.mounts["file0"]
    assert file0.std_throughput > file0.mean_throughput
    # Geomancy beats every single-mount placement except raw file0.
    geomancy = result.geomancy.mean_throughput
    for name, mean in means.items():
        if name != "file0":
            assert geomancy > mean, name
    # Geomancy's accesses spread across devices (it has usage everywhere
    # in the paper's table).
    usage = result.geomancy_usage()
    assert sum(1 for share in usage.values() if share > 1.0) >= 3
