"""Table II benchmark: all 23 architectures on people-mount telemetry.

Shape targets (paper Table II): the all-linear stack with a ReLU head
(model 5) diverges; recurrent models are slower to train than comparably
sized dense ones; the selected model 1 lands in the low-error group.
"""

import numpy as np
import pytest

from repro.experiments.spec import BENCH_SCALE
from repro.experiments.table2_comparison import (
    collect_mount_telemetry,
    run_table2,
    table2_text,
)
from repro.nn.model_zoo import MODEL_NUMBERS, is_recurrent

ROWS = BENCH_SCALE.training_rows
EPOCHS = BENCH_SCALE.epochs


@pytest.fixture(scope="module")
def telemetry():
    return collect_mount_telemetry("people", ROWS, seed=0)


def test_table2_all_models(benchmark, save_result, telemetry):
    rows = benchmark.pedantic(
        run_table2,
        kwargs={"epochs": EPOCHS, "seed": 0, "records": telemetry},
        rounds=1,
        iterations=1,
    )
    save_result("table2_models", table2_text(rows))

    by_number = {row.model_number: row for row in rows}
    assert set(by_number) == set(MODEL_NUMBERS)

    # Some architectures diverge and are reported as "Diverged", as in the
    # published table (which models diverge depends on initialization; the
    # paper saw models 2 and 5 fail, our seed catches a different subset).
    assert any(row.diverged for row in rows)

    converged = [row for row in rows if not row.diverged]
    assert len(converged) >= 15  # most of the zoo trains

    # The selected model 1 sits in the better half by error.
    errors = sorted(row.mare for row in converged)
    assert by_number[1].mare <= errors[len(errors) // 2 + 1]

    # Recurrent layers cost more training time than the small dense nets
    # (models 8-11 in the paper's table are the cheap dense group).
    dense_small = [
        by_number[n].train_seconds for n in (8, 9, 10, 11)
        if not by_number[n].diverged
    ]
    recurrent = [
        row.train_seconds for row in converged if is_recurrent(row.model_number)
    ]
    assert np.mean(recurrent) > np.mean(dense_small)

    # LSTM models predict slower than the single tiny dense model 11.
    lstm_predict = [
        by_number[n].predict_ms for n in (12, 21, 22, 23)
        if not by_number[n].diverged
    ]
    if lstm_predict and not by_number[11].diverged:
        assert np.mean(lstm_predict) > by_number[11].predict_ms
