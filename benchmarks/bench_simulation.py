"""Simulation fast-path latency: batched access pipeline vs. scalar oracle.

Bigger sibling of ``tests/perf/test_simulation_perf.py``: a longer
workload-runner span and more repeats, run under pytest-benchmark like
the rest of the harness.  Writes both the rendered table and
``BENCH_simulation.json`` to ``benchmarks/out/`` so the simulation perf
trajectory is inspectable per PR.
"""

import pathlib

from repro.experiments.simulation_bench import run_simulation_benchmark

OUT_DIR = pathlib.Path(__file__).parent / "out"


def test_simulation_pipeline(benchmark, save_result):
    result = benchmark.pedantic(
        run_simulation_benchmark,
        kwargs={"runner_runs": 200, "repeats": 5},
        rounds=1,
        iterations=1,
    )
    save_result("simulation", result.to_text())
    result.write_json(OUT_DIR / "BENCH_simulation.json")
    assert result.all_identical
    assert result.overall_speedup >= 5.0
