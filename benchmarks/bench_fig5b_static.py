"""Fig. 5b benchmark: Geomancy dynamic vs the static baselines.

Shape target (paper Fig. 5b / section VII): Geomancy dynamic beats random
static (+24% in the paper) and the one-shot Geomancy-static layout (+30%):
"an ideal placement of data at a certain period of time will not be ideal
later during a workload's execution".
"""

from repro.experiments.fig5_comparison import run_fig5b
from repro.experiments.spec import BENCH_SCALE


def test_fig5b_static_policies(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig5b,
        kwargs={"scale": BENCH_SCALE, "seed": 2},
        rounds=1,
        iterations=1,
    )
    gains = "\n".join(
        f"Geomancy gain over {name}: {result.gain_percent(name):+.1f}%"
        for name in sorted(result.results)
        if name != "Geomancy dynamic"
    )
    save_result(
        "fig5b_static",
        result.to_text(title="Fig. 5b -- static policies") + "\n" + gains,
    )

    geomancy = result.mean("Geomancy dynamic")
    # Beats every static baseline.
    for name in ("random static", "even spread", "Geomancy static"):
        assert geomancy > result.mean(name), f"Geomancy lost to {name}"
    # The headline gains are in the paper's double-digit regime.
    assert result.gain_percent("random static") >= 10.0
    assert result.gain_percent("Geomancy static") >= 10.0
