"""Fig. 5a benchmark: Geomancy dynamic vs the dynamic baselines.

Shape target (paper Fig. 5a / section VII): Geomancy dynamic delivers the
highest mean throughput of the dynamic policies, beating the best baseline
by a clear margin (the paper reports +11.7% over LFU, its closest
competitor).
"""

from repro.experiments.fig5_comparison import run_fig5a
from repro.experiments.spec import BENCH_SCALE


def test_fig5a_dynamic_policies(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig5a,
        kwargs={"scale": BENCH_SCALE, "seed": 2},
        rounds=1,
        iterations=1,
    )
    gains = "\n".join(
        f"Geomancy gain over {name}: {result.gain_percent(name):+.1f}%"
        for name in sorted(result.results)
        if name != "Geomancy dynamic"
    )
    save_result(
        "fig5a_dynamic",
        result.to_text(title="Fig. 5a -- dynamic policies") + "\n" + gains,
    )

    # Geomancy wins overall ...
    best = result.best_baseline()
    assert result.mean("Geomancy dynamic") > result.mean(best), (
        f"Geomancy lost to {best}"
    )
    # ... by a margin in the paper's regime (>= ~5% over the best baseline,
    # the paper's 11% being against LFU specifically).
    assert result.gain_percent(best) >= 5.0
    # Geomancy moves files sparingly compared to the wholesale regroupers.
    geomancy_moves = result.results["Geomancy dynamic"].total_files_moved
    lru_moves = result.results["LRU"].total_files_moved
    assert geomancy_moves < lru_moves
