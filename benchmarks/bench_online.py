"""Online-learning benchmark: flat decision-epoch cost as the DB grows.

Gate targets: the online engine's decision epoch (``train_incremental``
+ ``propose_layout``) stays within 1.5x flat from the smallest to the
largest history checkpoint while the from-scratch epoch grows with the
table; layout quality on the ground-truth synthetic signal matches the
from-scratch path; and the first incremental epoch is bit-for-bit the
from-scratch oracle at a pinned seed.  Writes ``BENCH_online.json``
next to the other perf-trajectory records.
"""

import json
import pathlib

from repro.experiments.online_bench import run_online_benchmark

JSON_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_online.json"


def test_online_epoch_flat(benchmark, save_result):
    result = benchmark.pedantic(
        run_online_benchmark, rounds=1, iterations=1
    )
    save_result("online_epoch", result.to_text())
    data = json.loads(result.write_json(JSON_PATH).read_text())
    assert data["benchmark"] == "online-epoch"

    # The tentpole claim: online decision-epoch latency is flat in the
    # history size while from-scratch retraining grows with it.
    assert result.online_growth <= 1.5
    assert result.scratch_growth > 2.0
    # Flat cost must not trade away layout quality: both paths recover
    # the planted location signal to within noise.
    for cell in result.cells:
        assert cell.online_quality >= cell.scratch_quality - 0.15
        assert cell.online_quality >= 0.7
    # And the first incremental epoch IS the from-scratch epoch.
    assert result.oracle.equivalent
