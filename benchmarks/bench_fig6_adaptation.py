"""Fig. 6 benchmark: adaptation to a competing workload.

Shape target (paper Fig. 6): tuned throughput dips when the duplicate
untuned workload starts, and Geomancy then "is able to respond to the
changes and attempt to push performance back to what it once was".

Runs the experiment twice -- from-scratch retraining and the online
continual-learning engine -- and records both adaptation curves plus
their recovery times side by side, so the flat-cost path's behavioral
parity with the retrain-everything baseline is inspectable.
"""

import numpy as np

from repro.experiments.fig6_adaptation import run_fig6
from repro.experiments.spec import BENCH_SCALE

FIG6_KWARGS = {
    "scale": BENCH_SCALE,
    "seed": 0,
    "runs_before": 40,
    "runs_after": 80,
}


def _recovery_line(result) -> str:
    recovery = result.recovery_accesses()
    return (
        f"{recovery} accesses" if recovery is not None
        else "(not within the measured window)"
    )


def test_fig6_adaptation(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig6, kwargs=FIG6_KWARGS, rounds=1, iterations=1,
    )
    online = run_fig6(**FIG6_KWARGS, online=True)
    save_result(
        "fig6_adaptation",
        result.to_text()
        + "\n\n[online continual learning]\n"
        + online.to_text()
        + "\n\nrecovery-time comparison (rolling mean back to 90% of "
        "pre-disturbance):\n"
        f"  from-scratch retraining: {_recovery_line(result)}\n"
        f"  online (incremental + replay + drift): {_recovery_line(online)}",
    )

    for mode in (result, online):
        # The competitor's arrival costs throughput immediately...
        assert mode.dip_ratio() < 0.97
        # ...and the late post-disturbance level recovers from the dip.
        assert mode.recovery_ratio() > mode.dip_ratio() - 0.05
        # The untuned duplicate underperforms the tuned workload overall.
        tuned_after = mode.tuned_after().mean()
        competing = np.mean(mode.competing_gbps)
        assert competing < tuned_after * 1.25
    # The flat-cost engine adapts about as well as retrain-everything.
    assert online.recovery_ratio() > result.recovery_ratio() - 0.15
