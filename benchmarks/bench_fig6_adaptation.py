"""Fig. 6 benchmark: adaptation to a competing workload.

Shape target (paper Fig. 6): tuned throughput dips when the duplicate
untuned workload starts, and Geomancy then "is able to respond to the
changes and attempt to push performance back to what it once was".
"""

from repro.experiments.fig6_adaptation import run_fig6
from repro.experiments.spec import BENCH_SCALE


def test_fig6_adaptation(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig6,
        kwargs={
            "scale": BENCH_SCALE,
            "seed": 0,
            "runs_before": 40,
            "runs_after": 80,
        },
        rounds=1,
        iterations=1,
    )
    save_result("fig6_adaptation", result.to_text())

    # The competitor's arrival costs throughput immediately...
    assert result.dip_ratio() < 0.97
    # ...and the late post-disturbance level recovers from the dip.
    assert result.recovery_ratio() > result.dip_ratio() - 0.05
    # The untuned duplicate underperforms the tuned workload overall.
    import numpy as np
    tuned_after = result.tuned_after().mean()
    competing = np.mean(result.competing_gbps)
    assert competing < tuned_after * 1.25
