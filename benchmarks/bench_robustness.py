"""Cross-seed robustness of the headline Fig. 5a result.

Runs the full Fig. 5a comparison across four environment seeds and reports
per-seed gains -- the error bars behind EXPERIMENTS.md's honesty note.
"""

import dataclasses

from repro.experiments.robustness import run_robustness
from repro.experiments.spec import BENCH_SCALE

# Robustness costs 4x a single Fig. 5a; trim the measured phase.
SCALE = dataclasses.replace(BENCH_SCALE, runs=60)


def test_fig5a_robustness(benchmark, save_result):
    # workers=4: one process per seedx policy chunk; bit-for-bit identical
    # to the serial sweep (tested in tests/experiments/test_parallel.py).
    result = benchmark.pedantic(
        run_robustness,
        kwargs={"seeds": (0, 1, 2, 3), "scale": SCALE, "workers": 4},
        rounds=1,
        iterations=1,
    )
    save_result("robustness", result.to_text())
    # Geomancy wins on most environments and its median gain is positive.
    assert result.win_rate >= 0.5
    assert result.median_gain_percent > 0.0
