"""Shared timing helpers for the benchmark harness.

Every benchmark that reports latency numbers goes through
:func:`summarize`, which feeds the samples into the runtime's own
:class:`~repro.observability.metrics.Histogram` so the p50/p95/p99
fields in each ``BENCH_*.json`` mean the same thing everywhere (and the
same thing the in-process metrics report).

:func:`paired_overhead` is the estimator for A/B overhead questions
("how much slower is the instrumented loop?") on hosts whose wall clock
drifts -- CI runners, shared machines.  It interleaves the two variants
in alternating order and combines two standard drift-robust statistics:

* the **median per-pair ratio** -- each pair runs back-to-back, so
  machine-speed drift hits both sides of a ratio roughly equally;
* the **ratio of minima** -- the minimum over samples approaches the
  host's best-case speed for each variant, which drift can only inflate.

Noise pushes each statistic up as often as down, so the smaller of the
two is the better point estimate of a small true overhead.
"""

from __future__ import annotations

import resource
import statistics
import sys
import time

from repro.observability.metrics import Histogram


def peak_rss_bytes() -> int:
    """The process's peak resident set size so far, in bytes.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalize so
    the ``BENCH_*.json`` memory fields compare across hosts.  The
    counter is a high-water mark -- sample it after the workload under
    measurement, and remember it never goes back down within a process.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def time_call(fn, *args, repeats: int = 5, **kwargs):
    """Call ``fn`` ``repeats`` times; return (last result, wall samples)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    samples: list[float] = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        samples.append(time.perf_counter() - t0)
    return result, samples


def _bucket_ladder(samples: list[float], steps: int = 32) -> tuple[float, ...]:
    """A geometric bucket ladder covering the sample range."""
    hi = max(samples)
    if hi <= 0.0:
        return (1e-9,)
    lo = max(min(s for s in samples if s > 0.0), hi / 1024.0)
    if lo >= hi:
        return (hi,)
    ratio = (hi / lo) ** (1.0 / (steps - 1))
    edges = [lo * ratio**i for i in range(steps - 1)]
    # Guarantee the top edge covers the maximum despite float rounding.
    edges.append(hi * (1.0 + 1e-9))
    return tuple(edges)


def summarize(samples, *, buckets: tuple[float, ...] | None = None) -> dict:
    """min/mean/max plus histogram-estimated p50/p95/p99, in seconds."""
    samples = [float(s) for s in samples]
    if not samples:
        raise ValueError("summarize needs at least one sample")
    hist = Histogram(
        "bench_timing_seconds",
        buckets=buckets if buckets is not None else _bucket_ladder(samples),
    )
    for sample in samples:
        hist.observe(sample)
    return {
        "repeats": len(samples),
        "min_s": min(samples),
        "max_s": max(samples),
        "mean_s": hist.mean,
        "p50_s": hist.p50,
        "p95_s": hist.p95,
        "p99_s": hist.p99,
    }


def paired_overhead(
    baseline_fn,
    candidate_fn,
    *,
    pairs: int = 8,
    batch: int = 1,
) -> dict:
    """Drift-robust overhead of ``candidate_fn`` over ``baseline_fn``.

    Runs ``pairs`` interleaved (baseline, candidate) pairs -- order
    alternating pair to pair, each sample timing ``batch`` back-to-back
    calls -- and reports ``overhead_percent`` as the smaller of the
    median-pair-ratio and ratio-of-minima estimates (see module
    docstring).  Both raw sample lists ride along for the JSON record.
    """
    if pairs < 2:
        raise ValueError(f"pairs must be >= 2, got {pairs}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")

    def run(fn) -> float:
        t0 = time.perf_counter()
        for _ in range(batch):
            fn()
        return time.perf_counter() - t0

    baseline_s: list[float] = []
    candidate_s: list[float] = []
    for i in range(pairs):
        if i % 2 == 0:
            baseline_s.append(run(baseline_fn))
            candidate_s.append(run(candidate_fn))
        else:
            candidate_s.append(run(candidate_fn))
            baseline_s.append(run(baseline_fn))
    ratios = [c / b for b, c in zip(baseline_s, candidate_s)]
    median_overhead = (statistics.median(ratios) - 1.0) * 100.0
    min_overhead = (min(candidate_s) / min(baseline_s) - 1.0) * 100.0
    return {
        "pairs": pairs,
        "batch": batch,
        "baseline": summarize(baseline_s),
        "candidate": summarize(candidate_s),
        "pair_ratios": ratios,
        "median_pair_overhead_percent": median_overhead,
        "min_ratio_overhead_percent": min_overhead,
        "overhead_percent": min(median_overhead, min_overhead),
    }
