"""Decision-epoch latency: batched vs. reference, plus the parallel sweep.

Bigger sibling of ``tests/perf/test_decision_perf.py``: a denser file
population and more repeats, run under pytest-benchmark like the rest of
the harness.  Writes both the rendered table and ``BENCH_decision.json``
to ``benchmarks/out/`` so the perf trajectory is inspectable per PR.
"""

import pathlib

from repro.experiments.decision_bench import (
    run_decision_benchmark,
    run_harness_benchmark,
)
from repro.experiments.spec import TEST_SCALE

OUT_DIR = pathlib.Path(__file__).parent / "out"


def test_decision_epoch(benchmark, save_result):
    result = benchmark.pedantic(
        run_decision_benchmark,
        kwargs={"files": 128, "db_rows": 2000, "repeats": 5},
        rounds=1,
        iterations=1,
    )
    result.harness = run_harness_benchmark(
        seeds=(0, 1), scale=TEST_SCALE, workers=4
    )
    save_result("decision", result.to_text())
    result.write_json(OUT_DIR / "BENCH_decision.json")
    assert result.all_equivalent
    assert result.overall_speedup >= 5.0
    assert result.harness.results_match
