"""Observability overhead: the instrumented loop vs. the disabled twin.

Runs the same warm-up + measured control loop through
``run_instrumented`` twice per sample -- once with a fully enabled
:class:`~repro.observability.Observability` (every metric handle live,
every span recorded, the event bus on) and once with a disabled
instance, which swaps every handle for a shared null object on the
identical code path.  Asserts the paper-level guarantees:

* outputs are bit-for-bit identical with observability on or off;
* the Prometheus dump covers the whole stack (>= 6 subsystems);
* wall-clock overhead stays within the 2% budget (DESIGN.md).

The enabled arm now carries the whole PR 9 layer too -- causal tracing,
the decision-provenance ledger (in memory, no JSONL path) and SLO
burn-rate monitoring -- so the 2% budget gates the full observability
stack, not just metrics/spans/events.

The overhead estimate uses :func:`_timing.paired_overhead`; if a first
cheap round lands over budget -- wall-clock noise on shared runners
dwarfs the true sub-1% cost -- one escalation round re-measures with
more pairs and bigger batches before judging.  Everything lands in
``benchmarks/out/BENCH_observability.json`` for the CI artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from _timing import paired_overhead
from repro.experiments.instrumented import run_instrumented
from repro.observability import Observability
from repro.experiments.spec import TEST_SCALE

OUT_DIR = Path(__file__).parent / "out"
SEED = 0
OVERHEAD_BUDGET_PERCENT = 2.0
REQUIRED_SUBSYSTEMS = {
    "engine", "replaydb", "features", "nn", "simulation", "faults",
}


def _enabled():
    return run_instrumented(
        scale=TEST_SCALE,
        seed=SEED,
        causal_tracing_enabled=True,
        provenance_enabled=True,
        slo_enabled=True,
    )


def _disabled():
    return run_instrumented(
        scale=TEST_SCALE, seed=SEED, obs=Observability(enabled=False)
    )


def _measure() -> dict:
    enabled = _enabled()
    disabled = _disabled()
    subsystems = sorted(
        {
            name.split("_")[1]
            for group in enabled.metrics.values()
            for name in group
        }
    )
    rounds = [paired_overhead(_disabled, _enabled, pairs=6, batch=2)]
    if rounds[-1]["overhead_percent"] > OVERHEAD_BUDGET_PERCENT:
        # One escalation round: longer samples + more pairs squeeze the
        # runner's wall-clock noise below the sub-1% true overhead.
        rounds.append(paired_overhead(_disabled, _enabled, pairs=8, batch=3))
    overhead = rounds[-1]
    return {
        "scale": TEST_SCALE.name,
        "seed": SEED,
        "budget_percent": OVERHEAD_BUDGET_PERCENT,
        "overhead_percent": overhead["overhead_percent"],
        "rounds": rounds,
        "outputs_identical": (
            enabled.movement_fingerprint() == disabled.movement_fingerprint()
            and enabled.final_layout == disabled.final_layout
            and enabled.mean_gbps == disabled.mean_gbps
            and enabled.accesses == disabled.accesses
        ),
        "subsystems": subsystems,
        "spans_recorded": enabled.spans_recorded,
        "metrics_registered": sum(
            len(group) for group in enabled.metrics.values()
        ),
        "bus_events": len(enabled.events),
        "disabled_spans": disabled.spans_recorded,
        "disabled_bus_events": len(disabled.events),
        "slo_objectives": len(enabled.slo or []),
        "disabled_slo": disabled.slo,
    }


@pytest.mark.benchmark(group="observability")
def test_observability_overhead(benchmark, save_result):
    summary = benchmark.pedantic(_measure, rounds=1, iterations=1)
    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "BENCH_observability.json"
    out_path.write_text(json.dumps(summary, indent=2) + "\n")
    save_result(
        "observability",
        "\n".join(
            [
                f"overhead: {summary['overhead_percent']:+.2f}% "
                f"(budget {summary['budget_percent']:.1f}%)",
                f"outputs identical: {summary['outputs_identical']}",
                f"subsystems: {', '.join(summary['subsystems'])}",
                f"spans: {summary['spans_recorded']}, "
                f"metrics: {summary['metrics_registered']}, "
                f"events: {summary['bus_events']}",
            ]
        ),
    )
    assert summary["outputs_identical"]
    assert REQUIRED_SUBSYSTEMS <= set(summary["subsystems"])
    assert summary["disabled_spans"] == 0
    assert summary["slo_objectives"] == 3
    assert summary["disabled_slo"] is None
    assert summary["overhead_percent"] <= OVERHEAD_BUDGET_PERCENT
