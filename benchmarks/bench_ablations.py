"""Ablations over DESIGN.md's called-out design choices.

Each ablation sweeps one Geomancy knob on the Fig. 5 setup at a reduced
scale, writing a comparison table: exploration rate (paper fixes 10%),
movement cooldown (paper fixes 5 runs), target smoothing (moving average
vs none), and the section V-G prediction adjustment (on vs off).
"""

import pytest

from repro.experiments.harness import (
    make_experiment_config,
    run_policy_experiment,
)
from repro.experiments.reporting import ascii_table
from repro.experiments.spec import ExperimentScale
from repro.policies.geomancy_policy import GeomancyDynamicPolicy
from repro.simulation.bluesky import make_bluesky_cluster

ABLATION_SCALE = ExperimentScale(
    name="ablation",
    warmup_accesses=2_000,
    runs=60,
    update_every=5,
    training_rows=3_000,
    epochs=50,
    trace_rows=4_000,
)


def device_map(seed=0):
    cluster = make_bluesky_cluster(seed=seed)
    return {cluster.device(n).fsid: n for n in cluster.device_names}


def run_geomancy_with(**config_overrides):
    config = make_experiment_config(ABLATION_SCALE, seed=0, **config_overrides)
    policy = GeomancyDynamicPolicy(device_map(), config)
    return run_policy_experiment(policy, scale=ABLATION_SCALE, seed=0)


def sweep(name, values, key, save_result):
    rows = []
    results = {}
    for value in values:
        result = run_geomancy_with(**{key: value})
        results[value] = result
        rows.append(
            (value, f"{result.mean_throughput:.2f}",
             result.total_files_moved)
        )
    save_result(
        f"ablation_{name}",
        ascii_table(
            [key, "mean GB/s", "files moved"], rows,
            title=f"Ablation -- {name}",
        ),
    )
    return results


def test_ablation_exploration_rate(benchmark, save_result):
    results = benchmark.pedantic(
        sweep,
        args=("exploration", (0.0, 0.10, 0.5), "exploration_rate", save_result),
        rounds=1,
        iterations=1,
    )
    # Heavy exploration burns throughput on random moves relative to the
    # paper's 10% setting.
    assert results[0.5].mean_throughput < max(
        results[0.0].mean_throughput, results[0.10].mean_throughput
    ) * 1.10


def cooldown_sweep(save_result):
    """Vary how often Geomancy is consulted (the paper's 5-run cooldown)."""
    import dataclasses

    results = {}
    rows = []
    for update_every in (1, 5, 15):
        scale = dataclasses.replace(ABLATION_SCALE, update_every=update_every)
        config = make_experiment_config(scale, seed=0)
        policy = GeomancyDynamicPolicy(device_map(), config)
        result = run_policy_experiment(policy, scale=scale, seed=0)
        results[update_every] = result
        rows.append(
            (update_every, f"{result.mean_throughput:.2f}",
             result.total_files_moved)
        )
    save_result(
        "ablation_cooldown",
        ascii_table(
            ["cooldown (runs)", "mean GB/s", "files moved"], rows,
            title="Ablation -- movement cooldown",
        ),
    )
    return results


def test_ablation_cooldown(benchmark, save_result):
    results = benchmark.pedantic(
        cooldown_sweep, args=(save_result,), rounds=1, iterations=1
    )
    # The paper's tradeoff: "if Geomancy moves files too often ... the
    # overhead diminishes the performance increase"; "moving files less
    # frequently caused new placements to be less relevant".  The 5-run
    # cooldown should therefore be the best of the three settings.
    best = max(results, key=lambda k: results[k].mean_throughput)
    assert best == 5, {k: results[k].mean_throughput for k in results}


def test_ablation_smoothing(benchmark, save_result):
    results = benchmark.pedantic(
        sweep,
        args=("smoothing", (1, 50), "smoothing_window", save_result),
        rounds=1,
        iterations=1,
    )
    # Both configurations complete; the smoothed target is the default the
    # comparison benches use.  Record both means for the report.
    assert all(r.mean_throughput > 0 for r in results.values())


def test_ablation_prediction_adjustment(benchmark, save_result):
    results = benchmark.pedantic(
        sweep,
        args=("adjustment", (True, False), "adjust_predictions", save_result),
        rounds=1,
        iterations=1,
    )
    assert all(r.mean_throughput > 0 for r in results.values())


def test_ablation_optimizer(benchmark, save_result):
    """The paper kept SGD after finding Adam gave higher error."""
    results = benchmark.pedantic(
        sweep,
        args=("optimizer", ("sgd", "adam"), "optimizer", save_result),
        rounds=1,
        iterations=1,
    )
    assert all(r.mean_throughput > 0 for r in results.values())


def test_ablation_target_metric(benchmark, save_result):
    """Throughput vs latency modeling target (the section V-C extension)."""
    results = benchmark.pedantic(
        sweep,
        args=("target", ("throughput", "latency"), "target", save_result),
        rounds=1,
        iterations=1,
    )
    assert all(r.mean_throughput > 0 for r in results.values())


def test_ablation_gap_scheduler(benchmark, save_result):
    """Access-gap movement gating (the section X extension)."""
    results = benchmark.pedantic(
        sweep,
        args=("gap_scheduler", (False, True), "use_gap_scheduler",
              save_result),
        rounds=1,
        iterations=1,
    )
    assert all(r.mean_throughput > 0 for r in results.values())
