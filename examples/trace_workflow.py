#!/usr/bin/env python
"""Trace-driven workflow: capture telemetry, persist it, train offline.

Mirrors the paper's EOS methodology ("Traces are used as a proof of
concept"): run a workload, export the ReplayDB to a JSONL trace, reload it
elsewhere, and train a model offline from the file -- the workflow a
downstream user needs to analyze their own system's logs with this library.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    Belle2Workload,
    GeomancyConfig,
    DRLEngine,
    ReplayDB,
    WorkloadRunner,
    belle2_file_population,
    make_bluesky_cluster,
)
from repro.policies import EvenSpreadPolicy
from repro.replaydb.traceio import export_db, import_db, save_trace_csv


def main() -> None:
    # 1. Capture: run the workload and fill a ReplayDB.
    cluster = make_bluesky_cluster(seed=1)
    files = belle2_file_population(seed=1)
    runner = WorkloadRunner(cluster, Belle2Workload(files, seed=2))
    runner.ensure_files_placed(
        EvenSpreadPolicy().initial_layout(files, cluster.device_names)
    )
    runner.warm_up(2000)
    print(f"captured {runner.db.access_count()} accesses")

    with tempfile.TemporaryDirectory() as tmp:
        jsonl = Path(tmp) / "bluesky_trace.jsonl"
        csv_path = Path(tmp) / "bluesky_trace.csv"

        # 2. Persist: JSONL for round-trips, CSV for plotting tools.
        exported = export_db(runner.db, jsonl)
        save_trace_csv(runner.db.recent_accesses(exported), csv_path)
        print(f"exported {exported} records "
              f"({jsonl.stat().st_size // 1024} KiB jsonl, "
              f"{csv_path.stat().st_size // 1024} KiB csv)")

        # 3. Reload into a fresh DB (a different process, in practice).
        offline_db = ReplayDB()
        import_db(offline_db, jsonl)
        print(f"reloaded {offline_db.access_count()} records")

        # 4. Train offline from the trace.
        engine = DRLEngine(
            GeomancyConfig(epochs=60, training_rows=2000)
        )
        report = engine.train(offline_db)
        print(
            f"offline model: error {report.test_mare:.1f}% "
            f"(constant-baseline error {report.constant_mare:.1f}%), "
            f"skillful={report.skillful}"
        )


if __name__ == "__main__":
    main()
