#!/usr/bin/env python
"""Experiment-1-style policy comparison (paper Fig. 5, condensed).

Runs LRU, LFU, MRU, random-dynamic and Geomancy-dynamic on identical
seeded copies of the Bluesky testbed and prints the Fig. 5a comparison
table, movement counts, and Geomancy's gains.

Run:  python examples/policy_shootout.py          (~30 s)
"""

from repro.experiments import BENCH_SCALE, run_fig5a


def main() -> None:
    print("running five policies on the simulated Bluesky testbed ...")
    result = run_fig5a(scale=BENCH_SCALE, seed=2)
    print()
    print(result.to_text(bucket=500, title="Fig. 5a -- dynamic policies"))
    print()
    best = result.best_baseline()
    print(f"best baseline: {best}")
    for name in sorted(result.results):
        if name != "Geomancy dynamic":
            print(
                f"Geomancy dynamic gain over {name}: "
                f"{result.gain_percent(name):+.1f}%"
            )
    print(
        "\npaper's headline: Geomancy beats dynamic and static placement "
        "by 11-30% (Fig. 5)."
    )


if __name__ == "__main__":
    main()
